"""The hybrid DRAM + NVM memory system.

The physical address space is split: frames below ``fast_bytes`` live
in DRAM (fast, symmetric), frames above in NVM (slower reads, much
slower writes).  *Where a data structure's pages land* is the whole
game -- which is exactly what the Table 1 row-8 use case steers with
atom semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.dram.mapping import DramGeometry
from repro.dram.system import DramSystem
from repro.dram.timing import DramTiming, ddr3_1066
from repro.hybrid.nvm import NvmDevice, NvmTiming, pcm_like


@dataclass
class HybridStats:
    """Traffic split between the two tiers."""

    fast_accesses: int = 0
    slow_accesses: int = 0

    @property
    def slow_share(self) -> float:
        """Fraction of traffic served by the NVM tier."""
        total = self.fast_accesses + self.slow_accesses
        return self.slow_accesses / total if total else 0.0


class HybridMemorySystem:
    """Route accesses by physical address to DRAM or NVM."""

    def __init__(
        self,
        fast_bytes: int,
        slow_bytes: int,
        dram_timing: Optional[DramTiming] = None,
        nvm_timing: Optional[NvmTiming] = None,
        mapping: str = "scheme2",
    ) -> None:
        if fast_bytes <= 0 or slow_bytes <= 0:
            raise ConfigurationError("both tiers need capacity")
        self.fast_bytes = fast_bytes
        self.slow_bytes = slow_bytes
        self.dram = DramSystem(
            geometry=DramGeometry(capacity_bytes=fast_bytes),
            timing=dram_timing or ddr3_1066(),
            mapping=mapping,
        )
        self.nvm = NvmDevice(nvm_timing or pcm_like())
        self.stats = HybridStats()

    @property
    def total_bytes(self) -> int:
        """Combined capacity of both tiers."""
        return self.fast_bytes + self.slow_bytes

    def is_fast(self, paddr: int) -> bool:
        """Whether an address lives in the DRAM tier."""
        return paddr < self.fast_bytes

    def access(self, paddr: int, now: float,
               is_write: bool = False) -> float:
        """Service a request at whichever tier owns the address."""
        if not 0 <= paddr < self.total_bytes:
            raise ConfigurationError(
                f"address {paddr:#x} outside hybrid space"
            )
        if self.is_fast(paddr):
            self.stats.fast_accesses += 1
            return self.dram.access(paddr, now, is_write).completes_at
        self.stats.slow_accesses += 1
        return self.nvm.access(paddr - self.fast_bytes, now, is_write)

    @property
    def avg_read_latency(self) -> float:
        """Capacity-weighted mean read latency across tiers."""
        d, n = self.dram.stats, self.nvm.stats
        reads = d.reads + n.reads
        if not reads:
            return 0.0
        return (d.read_latency_sum + n.read_latency_sum) / reads

    @property
    def avg_write_latency(self) -> float:
        """Mean write latency across tiers."""
        d, n = self.dram.stats, self.nvm.stats
        writes = d.writes + n.writes
        if not writes:
            return 0.0
        return (d.write_latency_sum + n.write_latency_sum) / writes
