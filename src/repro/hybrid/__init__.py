"""Hybrid DRAM + NVM memory substrate and atom-guided placement.

Implements Table 1 row 8 ("Data placement: hybrid memories") as a
complete subsystem: an NVM device model with asymmetric read/write
timing, a two-tier memory system routed by physical address, and the
benefit-density placement policy that consumes atom semantics.
"""

from repro.hybrid.nvm import NvmDevice, NvmStats, NvmTiming, pcm_like
from repro.hybrid.placement import (
    HybridCandidate,
    HybridPlacement,
    WRITE_PENALTY_WEIGHT,
    first_touch_placement,
    layout_addresses,
    plan_hybrid_placement,
)
from repro.hybrid.system import HybridMemorySystem, HybridStats

__all__ = [
    "HybridCandidate",
    "HybridMemorySystem",
    "HybridPlacement",
    "HybridStats",
    "NvmDevice",
    "NvmStats",
    "NvmTiming",
    "WRITE_PENALTY_WEIGHT",
    "first_touch_placement",
    "layout_addresses",
    "pcm_like",
    "plan_hybrid_placement",
]
