"""Non-volatile memory device model.

NVM (e.g., PCM) differs from DRAM in two first-order ways the hybrid-
placement use case depends on (Table 1, row 8): reads are a few times
slower than DRAM, and writes are *much* slower and consume the device
for longer (asymmetric read/write).  The model is bank-less: a row-
buffer-less array with per-device concurrency limited by a small
number of parallel units, plus a shared data bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class NvmTiming:
    """NVM service times in CPU cycles."""

    read_latency: float
    write_latency: float
    #: Bus occupancy per 64 B transfer.
    t_burst: float

    def __post_init__(self) -> None:
        for name in ("read_latency", "write_latency", "t_burst"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


def pcm_like(cpu_ghz: float = 3.6) -> NvmTiming:
    """PCM-class timing: ~2.5x DRAM reads, ~10x writes.

    DRAM row-closed read is ~28 ns; PCM array reads are ~60-120 ns and
    writes ~150-500 ns in the literature; we use 75/300 ns.
    """
    ns = cpu_ghz
    return NvmTiming(read_latency=75.0 * ns, write_latency=300.0 * ns,
                     t_burst=15.0 * ns)


@dataclass
class NvmStats:
    """Latency accounting, reads and writes separated."""

    reads: int = 0
    writes: int = 0
    read_latency_sum: float = 0.0
    write_latency_sum: float = 0.0

    @property
    def avg_read_latency(self) -> float:
        """Mean read latency (CPU cycles)."""
        return self.read_latency_sum / self.reads if self.reads else 0.0

    @property
    def avg_write_latency(self) -> float:
        """Mean write latency (CPU cycles)."""
        return self.write_latency_sum / self.writes if self.writes \
            else 0.0


class NvmDevice:
    """A bank-less NVM array with ``units`` parallel access units."""

    def __init__(self, timing: NvmTiming, units: int = 4) -> None:
        if units <= 0:
            raise ConfigurationError(f"units must be positive: {units}")
        self.timing = timing
        self._unit_free: List[float] = [0.0] * units
        self._bus_free = 0.0
        self.stats = NvmStats()

    def access(self, paddr: int, now: float,
               is_write: bool = False) -> float:
        """Service one request; returns its completion time."""
        # Pick the earliest-free unit (the device's internal
        # parallelism).
        unit = min(range(len(self._unit_free)),
                   key=lambda u: self._unit_free[u])
        start = max(now, self._unit_free[unit])
        work = (self.timing.write_latency if is_write
                else self.timing.read_latency)
        ready = start + work
        burst_start = max(ready, self._bus_free)
        done = burst_start + self.timing.t_burst
        self._bus_free = done
        self._unit_free[unit] = done
        latency = done - now
        if is_write:
            self.stats.writes += 1
            self.stats.write_latency_sum += latency
        else:
            self.stats.reads += 1
            self.stats.read_latency_sum += latency
        return done
