"""Atom-guided placement across DRAM and NVM (Table 1, row 8).

The paper's hybrid-memory row says XMem "avoids the need for
profiling/migration of data in hybrid memories to (i) effectively
manage the asymmetric read-write properties in NVM (e.g., placing
Read-Only data in the NVM), (ii) make tradeoffs between data structure
'hotness' and size to allocate fast/high bandwidth memory".

The algorithm ranks data structures by a benefit density --
access intensity (write accesses weighted by the NVM write penalty)
per byte -- and fills the fast tier greedily; read-only and cold data
overflow to NVM first.

The baseline it is compared against (no semantics) fills the fast tier
in allocation order, which is what a first-touch policy does without
profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.attributes import AtomAttributes, RWChar
from repro.core.errors import ConfigurationError

#: How much more an NVM write hurts than an NVM read, for ranking.
WRITE_PENALTY_WEIGHT = 4.0


@dataclass(frozen=True)
class HybridCandidate:
    """One data structure competing for the fast tier."""

    atom_id: int
    attributes: AtomAttributes
    size_bytes: int

    @property
    def benefit_density(self) -> float:
        """Fast-tier benefit per byte.

        Hot data benefits in proportion to its access intensity; data
        that is written benefits more (NVM writes are the expensive
        operation); read-only data benefits least -- the paper's
        "place Read-Only data in the NVM".
        """
        intensity = self.attributes.access_intensity
        rw = self.attributes.access.rw
        if rw is RWChar.READ_ONLY:
            write_boost = 0.0
        elif rw in (RWChar.WRITE_HEAVY, RWChar.WRITE_ONLY):
            write_boost = WRITE_PENALTY_WEIGHT
        else:
            write_boost = WRITE_PENALTY_WEIGHT / 2
        score = intensity * (1.0 + write_boost)
        return score / max(self.size_bytes, 1)


@dataclass
class HybridPlacement:
    """atom id -> tier assignment."""

    fast: List[int] = field(default_factory=list)
    slow: List[int] = field(default_factory=list)
    fast_bytes_used: int = 0

    def tier_of(self, atom_id: int) -> str:
        """"fast", "slow", or "slow" by default for unknown atoms."""
        if atom_id in self.fast:
            return "fast"
        return "slow"


def plan_hybrid_placement(candidates: List[HybridCandidate],
                          fast_bytes: int) -> HybridPlacement:
    """Greedy benefit-density knapsack over the fast tier."""
    if fast_bytes <= 0:
        raise ConfigurationError("fast tier needs capacity")
    ranked = sorted(candidates, key=lambda c: c.benefit_density,
                    reverse=True)
    placement = HybridPlacement()
    used = 0
    for cand in ranked:
        if used + cand.size_bytes <= fast_bytes:
            placement.fast.append(cand.atom_id)
            used += cand.size_bytes
        else:
            placement.slow.append(cand.atom_id)
    placement.fast_bytes_used = used
    return placement


def first_touch_placement(candidates: List[HybridCandidate],
                          fast_bytes: int) -> HybridPlacement:
    """The no-semantics baseline: allocation order fills DRAM first."""
    placement = HybridPlacement()
    used = 0
    for cand in candidates:
        if used + cand.size_bytes <= fast_bytes:
            placement.fast.append(cand.atom_id)
            used += cand.size_bytes
        else:
            placement.slow.append(cand.atom_id)
    placement.fast_bytes_used = used
    return placement


def layout_addresses(candidates: List[HybridCandidate],
                     placement: HybridPlacement,
                     fast_bytes: int) -> Dict[int, int]:
    """Assign each atom a base physical address in its tier.

    Fast-tier structures pack from 0; slow-tier structures pack from
    ``fast_bytes`` upward (the convention
    :class:`repro.hybrid.system.HybridMemorySystem` routes by).
    """
    by_id = {c.atom_id: c for c in candidates}
    bases: Dict[int, int] = {}
    fast_cursor = 0
    slow_cursor = fast_bytes
    for atom_id in placement.fast:
        bases[atom_id] = fast_cursor
        fast_cursor += by_id[atom_id].size_bytes
    for atom_id in placement.slow:
        bases[atom_id] = slow_cursor
        slow_cursor += by_id[atom_id].size_bytes
    return bases
