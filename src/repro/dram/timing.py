"""DDR3 timing parameters.

The paper simulates DDR3-1066 (Table 3).  We carry the first-order
timing constraints that determine row-buffer-locality and bandwidth
behaviour -- tCL, tRCD, tRP, tBURST -- converted into CPU cycles so the
whole simulator runs on one clock.

A row-buffer access costs:

* **row hit**      tCL + tBURST
* **row closed**   tRCD + tCL + tBURST
* **row conflict** tRP + tRCD + tCL + tBURST

plus any queueing behind the bank and the channel data bus.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class DramTiming:
    """Timing of one DRAM configuration, in CPU cycles (floats)."""

    #: Column access strobe latency (ACT->data for an open row).
    t_cl: float
    #: RAS-to-CAS delay (row activation).
    t_rcd: float
    #: Row precharge.
    t_rp: float
    #: Data-burst occupancy of the channel bus per 64 B line.
    t_burst: float

    def __post_init__(self) -> None:
        for name in ("t_cl", "t_rcd", "t_rp", "t_burst"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def row_hit_latency(self) -> float:
        """Access latency when the requested row is already open."""
        return self.t_cl + self.t_burst

    @property
    def row_closed_latency(self) -> float:
        """Access latency when the bank has no row open."""
        return self.t_rcd + self.t_cl + self.t_burst

    @property
    def row_conflict_latency(self) -> float:
        """Access latency when a different row must be closed first."""
        return self.t_rp + self.t_rcd + self.t_cl + self.t_burst

    def scaled_bandwidth(self, factor: float) -> "DramTiming":
        """A copy with the channel bandwidth scaled by ``factor``.

        Halving the available bandwidth doubles the bus occupancy of
        each burst; latency components are unchanged.  Used for the
        Figure 6 bandwidth sweep (2 / 1 / 0.5 GB/s per core).
        """
        if factor <= 0:
            raise ConfigurationError(f"bandwidth factor must be > 0: {factor}")
        return replace(self, t_burst=self.t_burst / factor)


def ddr3_1066(cpu_ghz: float = 3.6) -> DramTiming:
    """DDR3-1066 CL7 timing, converted to cycles of a ``cpu_ghz`` core.

    tCK = 1.875 ns; tCL = tRCD = tRP = 7 x tCK = 13.125 ns;
    tBURST = 4 x tCK (BL8, double data rate) = 7.5 ns.
    """
    ns = cpu_ghz  # 1 ns = cpu_ghz cycles
    return DramTiming(
        t_cl=13.125 * ns,
        t_rcd=13.125 * ns,
        t_rp=13.125 * ns,
        t_burst=7.5 * ns,
    )
