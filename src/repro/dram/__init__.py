"""DRAM substrate: banks, row buffers, FR-FCFS, address mapping."""

from repro.dram.bank import Bank, BankStats, RowOutcome
from repro.dram.mapping import (
    ALL_SCHEMES,
    AddressMapping,
    DramAddress,
    DramGeometry,
    FieldOrderMapping,
    PermutationMapping,
    make_mapping,
)
from repro.dram.scheduler import Completion, FRFCFSScheduler, Request
from repro.dram.system import DramResult, DramStats, DramSystem
from repro.dram.timing import DramTiming, ddr3_1066

__all__ = [
    "ALL_SCHEMES",
    "AddressMapping",
    "Bank",
    "BankStats",
    "Completion",
    "DramAddress",
    "DramGeometry",
    "DramResult",
    "DramStats",
    "DramSystem",
    "DramTiming",
    "FRFCFSScheduler",
    "FieldOrderMapping",
    "PermutationMapping",
    "Request",
    "RowOutcome",
    "ddr3_1066",
    "make_mapping",
]
