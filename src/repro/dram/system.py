"""The DRAM system: banks + channels + timing + address mapping.

A trace-driven, cycle-approximate model.  Each access:

1. decomposes the physical address through the configured mapping
   scheme (:mod:`repro.dram.mapping`);
2. waits for its bank (serialization within a bank = limited MLP);
3. pays the row-buffer outcome latency (hit / closed / conflict);
4. waits for, then occupies, the channel data bus for one burst
   (serialization on the bus = finite bandwidth).

The same model serves reads and writes; read latency is what sits on
the critical path (Section 6.4), so reads and writes are accounted
separately for the Figure 8 experiment.

``perfect_rbl=True`` builds the paper's *Ideal* comparison point: every
access behaves as a row hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.stats import Histogram
from repro.dram.bank import Bank, BankStats, RowOutcome
from repro.dram.mapping import (
    AddressMapping,
    DramAddress,
    DramGeometry,
    make_mapping,
)
from repro.dram.timing import DramTiming, ddr3_1066


@dataclass
class DramStats:
    """System-wide counters and latency accumulators."""

    reads: int = 0
    writes: int = 0
    read_latency_sum: float = 0.0
    write_latency_sum: float = 0.0
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0
    #: Latency distributions (power-of-two buckets, CPU cycles).  The
    #: averages above give Figure 8; the histograms expose the tail.
    read_latency_hist: Histogram = field(default_factory=Histogram)
    write_latency_hist: Histogram = field(default_factory=Histogram)

    @property
    def accesses(self) -> int:
        """Total requests serviced."""
        return self.reads + self.writes

    @property
    def avg_read_latency(self) -> float:
        """Mean read latency in CPU cycles (the Figure 8 metric)."""
        return self.read_latency_sum / self.reads if self.reads else 0.0

    @property
    def avg_write_latency(self) -> float:
        """Mean write latency in CPU cycles."""
        return self.write_latency_sum / self.writes if self.writes else 0.0

    @property
    def row_hit_rate(self) -> float:
        """System row-buffer hit rate (RBL)."""
        total = self.row_hits + self.row_closed + self.row_conflicts
        return self.row_hits / total if total else 0.0


@dataclass(frozen=True)
class DramResult:
    """Outcome of one DRAM access."""

    latency: float
    completes_at: float
    outcome: RowOutcome
    address: DramAddress


class DramSystem:
    """Banks, channels, and the access path."""

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        timing: Optional[DramTiming] = None,
        mapping: str = "scheme2",
        perfect_rbl: bool = False,
    ) -> None:
        self.geometry = geometry or DramGeometry()
        self.timing = timing or ddr3_1066()
        self.mapping: AddressMapping = make_mapping(mapping, self.geometry)
        self.perfect_rbl = perfect_rbl
        self._banks: Dict[Tuple[int, int, int], Bank] = {}
        self._channel_free: List[float] = [0.0] * self.geometry.channels
        #: paddr -> (DramAddress, Bank) memo.  The mapping is a pure
        #: function of the address and the bank dict only grows, so the
        #: pair can be cached; traces revisit a small working set of
        #: lines, making this the dominant saving of the access path.
        self._decomposed: Dict[int, Tuple[DramAddress, Bank]] = {}
        self.stats = DramStats()

    def bank(self, key: Tuple[int, int, int]) -> Bank:
        """The bank object for a (channel, rank, bank) triple."""
        b = self._banks.get(key)
        if b is None:
            b = self._banks[key] = Bank()
        return b

    def _addr_bank(self, paddr: int) -> Tuple[DramAddress, Bank]:
        ent = self._decomposed.get(paddr)
        if ent is None:
            addr = self.mapping.decompose(paddr)
            ent = (addr, self.bank(addr.bank_key))
            if len(self._decomposed) >= 1 << 20:
                self._decomposed.clear()
            self._decomposed[paddr] = ent
        return ent

    def decomposed(self, paddr: int) -> DramAddress:
        """Memoized :meth:`AddressMapping.decompose` for this system."""
        return self._addr_bank(paddr)[0]

    def _service(self, paddr: int, now: float,
                 is_write: bool) -> Tuple[DramAddress, RowOutcome, float]:
        timing = self.timing
        addr, bank = self._addr_bank(paddr)
        busy = bank.busy_until
        start = now if now > busy else busy
        outcome = (RowOutcome.HIT if self.perfect_rbl
                   else bank.classify(addr.row))
        data_ready = bank.access(addr.row, start, timing,
                                 force_hit=self.perfect_rbl)
        channel_free = self._channel_free
        channel = addr.channel
        free_at = channel_free[channel]
        burst_start = data_ready if data_ready > free_at else free_at
        done = burst_start + timing.t_burst
        channel_free[channel] = done
        self._record(outcome, done - now, is_write)
        return addr, outcome, done

    def access(self, paddr: int, now: float,
               is_write: bool = False) -> DramResult:
        """Service one request arriving at time ``now``."""
        addr, outcome, done = self._service(paddr, now, is_write)
        return DramResult(latency=done - now, completes_at=done,
                          outcome=outcome, address=addr)

    def access_completes(self, paddr: int, now: float,
                         is_write: bool = False) -> float:
        """:meth:`access` without building the :class:`DramResult`.

        The memory system's demand/prefetch/drain paths only consume
        ``completes_at``; skipping the frozen-dataclass allocation on
        every miss is a measurable engine-loop saving.
        """
        return self._service(paddr, now, is_write)[2]

    def _record(self, outcome: RowOutcome, latency: float,
                is_write: bool) -> None:
        if outcome is RowOutcome.HIT:
            self.stats.row_hits += 1
        elif outcome is RowOutcome.CLOSED:
            self.stats.row_closed += 1
        else:
            self.stats.row_conflicts += 1
        if is_write:
            self.stats.writes += 1
            self.stats.write_latency_sum += latency
            self.stats.write_latency_hist.record(latency)
        else:
            self.stats.reads += 1
            self.stats.read_latency_sum += latency
            self.stats.read_latency_hist.record(latency)

    # -- Introspection ------------------------------------------------------

    def stat_groups(self):
        """StatGroup protocol: the system counters plus a lazily
        aggregated per-bank view (bank-level parallelism)."""
        yield "dram", self.stats
        yield "dram.banks", self.bank_summary

    def bank_summary(self) -> Dict[str, float]:
        """Counters summed across banks, plus how many were touched.

        ``banks_touched`` is the run's bank-level parallelism; the
        summed row counters cross-check the system totals.
        """
        agg = BankStats()
        touched = 0
        for bank in self._banks.values():
            if bank.stats.accesses:
                touched += 1
            agg.add(bank.stats)
        return {
            "banks": len(self._banks),
            "banks_touched": touched,
            "accesses": agg.accesses,
            "row_hits": agg.row_hits,
            "row_closed": agg.row_closed,
            "row_conflicts": agg.row_conflicts,
            "row_hit_rate": agg.row_hit_rate,
        }

    def bank_row_hit_rates(self) -> Dict[Tuple[int, int, int], float]:
        """Per-bank RBL, for placement diagnostics."""
        return {key: b.stats.row_hit_rate for key, b in self._banks.items()}

    def banks_touched(self) -> int:
        """Number of banks that serviced at least one request (MLP)."""
        return sum(1 for b in self._banks.values() if b.stats.accesses)

    def reset_time(self) -> None:
        """Zero the busy horizons (new measurement interval)."""
        for b in self._banks.values():
            b.busy_until = 0.0
        self._channel_free = [0.0] * self.geometry.channels
