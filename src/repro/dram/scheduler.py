"""FR-FCFS request scheduling (Table 3: FR-FCFS [84]).

First-Ready, First-Come-First-Served: among queued requests, those that
would *hit the open row* of a ready bank are served first (in arrival
order); if none is ready, the oldest request is served.  FR-FCFS is
what makes row-buffer locality pay off under interleaved access
streams -- requests to an open row jump the queue.

The scheduler owns a request queue and drives a :class:`DramSystem`.
The CPU engine uses the one-at-a-time ``DramSystem.access`` path (its
window already issues requests in order); the scheduler is used by the
DRAM-focused benchmarks and tests, and exposes the reordering behaviour
explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dram.system import DramResult, DramSystem
from repro.testing import checks as _checks


@dataclass(frozen=True)
class Request:
    """One memory request presented to the scheduler."""

    paddr: int
    arrival: float
    is_write: bool = False
    req_id: int = 0


@dataclass
class SchedulerStats:
    """FR-FCFS service counters."""

    serviced: int = 0
    reordered: int = 0

    @property
    def reorder_rate(self) -> float:
        """Fraction of requests served out of arrival order (0.0 for
        an idle scheduler -- guarded against zero serviced)."""
        if not self.serviced:
            return 0.0
        return self.reordered / self.serviced


@dataclass
class Completion:
    """A serviced request with its DRAM outcome."""

    request: Request
    result: DramResult

    @property
    def latency(self) -> float:
        """Arrival-to-data latency."""
        return self.result.completes_at - self.request.arrival


class FRFCFSScheduler:
    """Greedy FR-FCFS over an explicit request list."""

    #: Age cap: once the oldest pending request has been bypassed this
    #: many times by younger row-hit requests, it is served regardless
    #: (real FR-FCFS implementations bound starvation the same way --
    #: a sustained stream of row hits could otherwise hold a conflict
    #: request back indefinitely).  The oldest request always has the
    #: highest bypass count (any service that bypasses a request also
    #: bypasses everything older), so capping the front bounds every
    #: request.  ``REPRO_CHECK=1`` verifies the bound holds.
    starvation_cap = 64

    def __init__(self, dram: DramSystem) -> None:
        self.dram = dram
        self.stats = SchedulerStats()
        self._check = _checks.enabled()

    @property
    def reordered(self) -> int:
        """Requests served out of arrival order (compat alias)."""
        return self.stats.reordered

    def stat_groups(self):
        """StatGroup protocol: the scheduler and its DRAM system."""
        yield "scheduler", self.stats
        yield from self.dram.stat_groups()

    def service(self, requests: List[Request]) -> List[Completion]:
        """Drain ``requests`` FR-FCFS and return completions in service
        order."""
        pending = sorted(requests, key=lambda r: (r.arrival, r.req_id))
        completions: List[Completion] = []
        clock = 0.0
        check = self._check
        cap = self.starvation_cap
        bypasses: dict = {}
        while pending:
            arrived = [r for r in pending if r.arrival <= clock]
            if not arrived:
                clock = pending[0].arrival
                arrived = [r for r in pending if r.arrival <= clock]
            front = arrived[0]
            if bypasses.get(id(front), 0) >= cap:
                # Age cap reached: the oldest request is served next no
                # matter what row hits are available.
                choice = front
            else:
                choice = self._first_ready(arrived) or front
            self.stats.serviced += 1
            if choice is not front:
                self.stats.reordered += 1
                # Every arrived request older than the choice was
                # bypassed once more.
                for req in arrived:
                    if req is choice:
                        break
                    count = bypasses.get(id(req), 0) + 1
                    bypasses[id(req)] = count
                    if check:
                        _checks.check_scheduler_bypass(count, cap, req)
            bypasses.pop(id(choice), None)
            pending.remove(choice)
            result = self.dram.access(choice.paddr,
                                      max(clock, choice.arrival),
                                      choice.is_write)
            completions.append(Completion(choice, result))
            # The command issue occupies the scheduler briefly; data
            # bursts overlap across banks.
            clock = max(clock, choice.arrival) + self.dram.timing.t_burst
        return completions

    def _first_ready(self, arrived: List[Request]) -> Optional[Request]:
        """The oldest arrived request that would hit an open row of a
        currently idle bank."""
        for req in arrived:
            addr = self.dram.mapping.decompose(req.paddr)
            bank = self.dram.bank(addr.bank_key)
            if bank.open_row == addr.row and bank.busy_until <= req.arrival:
                return req
        return None
