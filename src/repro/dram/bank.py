"""Per-bank DRAM state: the row buffer and its open-row policy.

Each bank has one row buffer.  Under the open-row policy (Table 3) the
row stays open after an access, so the next access to the same row is a
*row hit*; an access to a different row is a *row conflict* (precharge +
activate); an access to an idle bank with no open row is *row closed*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dram.timing import DramTiming


class RowOutcome(enum.Enum):
    """Classification of one access against the bank's row buffer."""

    HIT = "hit"
    CLOSED = "closed"
    CONFLICT = "conflict"


@dataclass
class BankStats:
    """Per-bank access counters (drives RBL reporting)."""

    accesses: int = 0
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0

    @property
    def row_hit_rate(self) -> float:
        """The bank's row-buffer locality."""
        return self.row_hits / self.accesses if self.accesses else 0.0

    def add(self, other: "BankStats") -> None:
        """Fold another bank's counters into this one (aggregation
        across banks for the ``dram.banks`` stat group)."""
        self.accesses += other.accesses
        self.row_hits += other.row_hits
        self.row_closed += other.row_closed
        self.row_conflicts += other.row_conflicts


@dataclass
class Bank:
    """One DRAM bank: open row, busy horizon, counters."""

    open_row: Optional[int] = None
    busy_until: float = 0.0
    stats: BankStats = field(default_factory=BankStats)

    def classify(self, row: int) -> RowOutcome:
        """How an access to ``row`` would interact with the row buffer."""
        if self.open_row is None:
            return RowOutcome.CLOSED
        if self.open_row == row:
            return RowOutcome.HIT
        return RowOutcome.CONFLICT

    def access(self, row: int, start: float,
               timing: DramTiming,
               force_hit: bool = False) -> float:
        """Perform the row-buffer side of an access starting at ``start``.

        Returns the time the requested data is ready to burst onto the
        channel.  Also advances ``busy_until`` to when the bank can
        accept the *next* command: consecutive CAS commands to an open
        row pipeline at burst intervals (tCCD), so only activates and
        precharges serialize at full latency.

        ``force_hit`` models the Ideal perfect-RBL system of Section 6.4.
        """
        outcome = RowOutcome.HIT if force_hit else self.classify(row)
        self.stats.accesses += 1
        if outcome is RowOutcome.HIT:
            self.stats.row_hits += 1
            overhead = 0.0
        elif outcome is RowOutcome.CLOSED:
            self.stats.row_closed += 1
            overhead = timing.t_rcd
        else:
            self.stats.row_conflicts += 1
            overhead = timing.t_rp + timing.t_rcd
        self.open_row = row
        self.busy_until = start + overhead + timing.t_burst
        return start + overhead + timing.t_cl
