"""Physical-address -> DRAM coordinate mapping schemes.

DRAMSim2 ships seven address-mapping schemes (field-order permutations
of channel/rank/bank/row/column); the paper strengthens its baseline by
picking the best performer among those seven plus the two
permutation-based schemes of Zhang et al. [106] and the minimalist
open-page mapping [107] (Section 6.3).  This module implements all
nine, plus ``xmem_interleaved`` -- this reproduction's channel-
interleaved, bank-pure scheme for page-granular placement.

An address is decomposed low-to-high into a sequence of bit fields; a
scheme is the order of those fields.  The column field is split into
``col_low`` (the 64 B line offset within a burst group, always lowest,
so consecutive lines stream within a row) and ``col_high``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import ConfigurationError


def _log2(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{what} must be a positive power of two, "
                                 f"got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class DramGeometry:
    """Physical organization of the DRAM system (Table 3 defaults)."""

    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    row_bytes: int = 8192
    capacity_bytes: int = 1 << 30
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for field_name in ("channels", "ranks_per_channel", "banks_per_rank",
                           "row_bytes", "capacity_bytes", "line_bytes"):
            _log2(getattr(self, field_name), field_name)
        if self.row_bytes % self.line_bytes:
            raise ConfigurationError("row must hold whole lines")

    @property
    def total_banks(self) -> int:
        """Banks across all channels and ranks."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def rows_per_bank(self) -> int:
        """Rows each bank holds, derived from total capacity."""
        return self.capacity_bytes // (self.total_banks * self.row_bytes)

    @property
    def lines_per_row(self) -> int:
        """64 B lines per row (the column space)."""
        return self.row_bytes // self.line_bytes


@dataclass(frozen=True)
class DramAddress:
    """One decomposed physical address."""

    channel: int
    rank: int
    bank: int
    row: int
    col: int

    @property
    def bank_key(self) -> Tuple[int, int, int]:
        """Globally unique (channel, rank, bank) triple."""
        return (self.channel, self.rank, self.bank)


class AddressMapping:
    """Base: map a physical line address to DRAM coordinates."""

    name = "abstract"

    def __init__(self, geometry: DramGeometry) -> None:
        self.geometry = geometry

    def decompose(self, paddr: int) -> DramAddress:
        raise NotImplementedError


class FieldOrderMapping(AddressMapping):
    """A scheme defined purely by the low-to-high order of bit fields.

    ``order`` lists fields from least-significant upward; ``offset``
    (the 64 B line offset) is implicitly lowest and ignored.
    Recognized fields: ``col_low``, ``col_high``, ``channel``, ``rank``,
    ``bank``, ``row``.  ``col_low`` must appear below ``col_high``.
    """

    #: Lines kept consecutive within col_low before other fields rotate.
    COL_LOW_LINES = 8

    def __init__(self, geometry: DramGeometry, name: str,
                 order: Sequence[str]) -> None:
        super().__init__(geometry)
        self.name = name
        self.order = list(order)
        required = {"col_low", "col_high", "channel", "rank", "bank", "row"}
        if set(self.order) != required:
            raise ConfigurationError(
                f"{name}: order must contain exactly {sorted(required)}"
            )
        if self.order.index("col_low") > self.order.index("col_high"):
            raise ConfigurationError(f"{name}: col_low must be below col_high")
        g = geometry
        col_bits = _log2(g.lines_per_row, "lines_per_row")
        col_low_bits = min(col_bits, _log2(self.COL_LOW_LINES, "col_low"))
        self._widths: Dict[str, int] = {
            "col_low": col_low_bits,
            "col_high": col_bits - col_low_bits,
            "channel": _log2(g.channels, "channels"),
            "rank": _log2(g.ranks_per_channel, "ranks"),
            "bank": _log2(g.banks_per_rank, "banks"),
            "row": _log2(g.rows_per_bank, "rows"),
        }

    def decompose(self, paddr: int) -> DramAddress:
        """Split an address along the configured field order."""
        bits = paddr // self.geometry.line_bytes
        fields: Dict[str, int] = {}
        for name in self.order:
            width = self._widths[name]
            fields[name] = bits & ((1 << width) - 1)
            bits >>= width
        col = (fields["col_high"] << self._widths["col_low"]) | \
            fields["col_low"]
        # Address bits above the mapped space fold into the row index so
        # out-of-capacity addresses still decompose deterministically.
        row = (fields["row"] + bits * (1 << self._widths["row"])) % \
            self.geometry.rows_per_bank
        return DramAddress(channel=fields["channel"], rank=fields["rank"],
                           bank=fields["bank"], row=row, col=col)


class PermutationMapping(AddressMapping):
    """Permutation-based page interleaving (Zhang et al. [106]).

    Starts from a base field-order scheme and XORs the bank index with
    the low bits of the row index, spreading row-conflicting addresses
    across banks.
    """

    def __init__(self, geometry: DramGeometry, name: str,
                 base: FieldOrderMapping) -> None:
        super().__init__(geometry)
        self.name = name
        self._base = base
        self._bank_bits = _log2(geometry.banks_per_rank, "banks")

    def decompose(self, paddr: int) -> DramAddress:
        """Base-scheme decomposition with the bank bits permuted."""
        addr = self._base.decompose(paddr)
        mask = (1 << self._bank_bits) - 1
        bank = addr.bank ^ (addr.row & mask)
        return DramAddress(channel=addr.channel, rank=addr.rank, bank=bank,
                           row=addr.row, col=addr.col)


def make_mapping(name: str, geometry: DramGeometry) -> AddressMapping:
    """Instantiate one of the named schemes (see ALL_SCHEMES)."""
    orders = _SCHEME_ORDERS
    if name in orders:
        return FieldOrderMapping(geometry, name, orders[name])
    if name == "permutation":
        base = FieldOrderMapping(geometry, "scheme2", orders["scheme2"])
        return PermutationMapping(geometry, "permutation", base)
    if name == "minimalist_open":
        # Minimalist open-page [107]: a small number of consecutive
        # lines per row per stream, then rotate channel/bank -- modelled
        # as the col_low-then-bank ordering with permutation.
        base = FieldOrderMapping(geometry, "scheme7", orders["scheme7"])
        return PermutationMapping(geometry, "minimalist_open", base)
    raise ConfigurationError(
        f"unknown mapping scheme {name!r}; choices: {sorted(ALL_SCHEMES)}"
    )


#: The seven DRAMSim2 field orders (low bits first).
_SCHEME_ORDERS: Dict[str, List[str]] = {
    # scheme1: chan:rank:row:col:bank  (bank lowest above the line)
    "scheme1": ["col_low", "bank", "col_high", "row", "rank", "channel"],
    # scheme2: chan:rank:row:bank:col  (row-interleaved, RBL-friendly)
    "scheme2": ["col_low", "col_high", "bank", "row", "rank", "channel"],
    # scheme3: chan:rank:bank:col:row  (row bits low -- conflict heavy)
    "scheme3": ["col_low", "row", "col_high", "bank", "rank", "channel"],
    # scheme4: chan:rank:bank:row:col
    "scheme4": ["col_low", "col_high", "row", "bank", "rank", "channel"],
    # scheme5: row:col:rank:bank:chan  (channel lowest: line interleave)
    "scheme5": ["col_low", "channel", "bank", "rank", "col_high", "row"],
    # scheme6: row:col:bank:rank:chan
    "scheme6": ["col_low", "channel", "rank", "bank", "col_high", "row"],
    # scheme7: row:bank:rank:col:chan
    "scheme7": ["col_low", "channel", "col_high", "rank", "bank", "row"],
    # xmem_interleaved: channels rotate every 512 B (full stream
    # bandwidth) while the bank bits sit above the page offset, so a
    # 4 KB page maps to exactly one bank index (the same bank on every
    # channel).  This is the mapping the XMem OS uses: it keeps the
    # channel parallelism of scheme5/6 *and* gives page-granular
    # placement a well-defined isolation unit (the cross-channel bank
    # group).
    "xmem_interleaved": ["col_low", "channel", "col_high", "bank",
                         "rank", "row"],
}

#: Every mapping name accepted by :func:`make_mapping`.
ALL_SCHEMES = tuple(sorted(_SCHEME_ORDERS)) + (
    "permutation", "minimalist_open",
)
