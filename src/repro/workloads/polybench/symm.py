"""Symmetric/triangular kernels: syrk, syr2k, trmm.

syrk computes C += A.A^T: blocked over (j, k) tiles, the transposed
operand tile ``A[jt][kt]`` is the reused working set.  syr2k reuses two
tiles (one of A, one of B) and therefore expresses *two* atoms --
exercising multi-atom pinning.  trmm is the triangular variant: the
amount of reuse per tile shrinks toward the matrix edge, but the tile
atom semantics are identical.
"""

from __future__ import annotations

from typing import Dict

from repro.core.attributes import PatternType
from repro.cpu.trace import TraceBuilder
from repro.workloads.polybench.common import (
    ELEM,
    Kernel,
    Layout,
    map_tile_2d,
    pack_row,
    register,
    tiles,
)


def _setup_syrk(lib) -> Dict[str, int]:
    if lib is None:
        return {}
    atom = lib.create_atom(
        "syrk_tile", pattern=PatternType.REGULAR, stride_bytes=ELEM,
        reuse=255,
    )
    lib.atom_activate(atom)
    return {"tile": atom}


def _setup_two_atoms(lib) -> Dict[str, int]:
    if lib is None:
        return {}
    ta = lib.create_atom(
        "syr2k_tileA", pattern=PatternType.REGULAR, stride_bytes=ELEM,
        reuse=255,
    )
    tb = lib.create_atom(
        "syr2k_tileB", pattern=PatternType.REGULAR, stride_bytes=ELEM,
        reuse=254,
    )
    lib.atom_activate(ta)
    lib.atom_activate(tb)
    return {"tileA": ta, "tileB": tb}


def _syrk_trace(n: int, tile: int, atoms: Dict[str, int],
                out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)
    c = lay.array("C", n, n)
    atom = atoms.get("tile")
    for jt in tiles(n, tile):
        for kt in tiles(n, tile):
            # The transposed operand A[jt][kt] is reused by every i.
            if atom is not None:
                out.op(map_tile_2d(atom, a, jt.start, kt.start,
                                   len(jt), len(kt)))
            for i in range(n):
                # Redundant per-block re-read: no arithmetic work.
                pack_row(out, a, i, kt.start, len(kt), work_per_elem=0)
                for j in jt:
                    pack_row(out, a, j, kt.start, len(kt))
                    out.access(c.addr(i, j), True)


def _syr2k_trace(n: int, tile: int, atoms: Dict[str, int],
                 out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)
    b = lay.array("B", n, n)
    c = lay.array("C", n, n)
    ta = atoms.get("tileA")
    tb = atoms.get("tileB")
    for jt in tiles(n, tile):
        for kt in tiles(n, tile):
            if ta is not None:
                out.op(map_tile_2d(ta, a, jt.start, kt.start,
                                   len(jt), len(kt)))
            if tb is not None:
                out.op(map_tile_2d(tb, b, jt.start, kt.start,
                                   len(jt), len(kt)))
            for i in range(n):
                pack_row(out, a, i, kt.start, len(kt), work_per_elem=0)
                pack_row(out, b, i, kt.start, len(kt), work_per_elem=0)
                for j in jt:
                    # C[i][j] += A[i][k]B[j][k] + B[i][k]A[j][k]
                    pack_row(out, a, j, kt.start, len(kt))
                    pack_row(out, b, j, kt.start, len(kt))
                    out.access(c.addr(i, j), True)


def _trmm_trace(n: int, tile: int, atoms: Dict[str, int],
                out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)  # lower triangular
    b = lay.array("B", n, n)
    atom = atoms.get("tile")
    for kt in tiles(n, tile):
        for jt in tiles(n, tile):
            if atom is not None:
                out.op(map_tile_2d(atom, b, kt.start, jt.start,
                                   len(kt), len(jt)))
            # Triangular: only rows i >= k contribute.
            for i in range(kt.start, n):
                hi = min(i + 1, kt.stop)
                if hi <= kt.start:
                    continue
                pack_row(out, a, i, kt.start, hi - kt.start,
                         work_per_elem=0)
                for k in range(kt.start, hi):
                    pack_row(out, b, k, jt.start, len(jt))
                    pack_row(out, b, i, jt.start, len(jt), write=True)


SYRK = register(Kernel(
    name="syrk",
    setup=_setup_syrk,
    trace=_syrk_trace,
    footprint=lambda n: 2 * n * n * ELEM,
    description="C += A.A^T; atom on the transposed-operand tile",
))

SYR2K = register(Kernel(
    name="syr2k",
    setup=_setup_two_atoms,
    trace=_syr2k_trace,
    footprint=lambda n: 3 * n * n * ELEM,
    description="C += A.B^T + B.A^T; two tile atoms pinned together",
))

TRMM = register(Kernel(
    name="trmm",
    setup=_setup_syrk,
    trace=_trmm_trace,
    footprint=lambda n: 2 * n * n * ELEM,
    description="triangular B = A.B; tile reuse shrinks at the edge",
))
