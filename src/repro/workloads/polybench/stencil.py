"""Stencil kernels: jacobi-2d, seidel-2d, fdtd-2d.

PLUTO time-tiles stencils: a spatial band of rows is swept repeatedly
across the time steps of a time tile, so the band is the high-reuse
working set.  The tile parameter is the band height in rows; the band's
working-set bytes scale with ``tile * n * ELEM * arrays``.  The XMem
atom maps the current band and slides with it.
"""

from __future__ import annotations

from typing import Dict

from repro.core.attributes import PatternType
from repro.cpu.trace import TraceBuilder
from repro.workloads.polybench.common import (
    ELEM,
    Kernel,
    Layout,
    map_range,
    pack_row,
    register,
    tiles,
)

#: Time steps per time tile -- the reuse count of a band.
TSTEPS = 8


def _setup_band(lib) -> Dict[str, int]:
    if lib is None:
        return {}
    band = lib.create_atom(
        "stencil_band", pattern=PatternType.REGULAR, stride_bytes=ELEM,
        reuse=TSTEPS * 8,
    )
    lib.atom_activate(band)
    return {"band": band}


def _jacobi2d_trace(n: int, tile: int, atoms: Dict[str, int],
                    out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)
    b = lay.array("B", n, n)
    band = atoms.get("band")
    for rows in tiles(n, tile):
        if band is not None:
            out.op(map_range(band, a, rows.start, len(rows)))
        for _t in range(TSTEPS):
            for i in rows:
                lo = max(i - 1, 0)
                hi = min(i + 1, n - 1)
                # 5-point stencil: rows i-1, i, i+1 of A; write B[i].
                pack_row(out, a, lo, 0, n)
                if lo != i:
                    pack_row(out, a, i, 0, n)
                if hi != i:
                    pack_row(out, a, hi, 0, n)
                pack_row(out, b, i, 0, n, write=True)
            # Copy-back half step: A = B within the band.
            for i in rows:
                pack_row(out, b, i, 0, n)
                pack_row(out, a, i, 0, n, write=True)


def _seidel2d_trace(n: int, tile: int, atoms: Dict[str, int],
                    out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)
    band = atoms.get("band")
    for rows in tiles(n, tile):
        if band is not None:
            out.op(map_range(band, a, rows.start, len(rows)))
        for _t in range(TSTEPS):
            for i in rows:
                lo = max(i - 1, 0)
                hi = min(i + 1, n - 1)
                # In-place 9-point sweep reads 3 rows, writes row i.
                pack_row(out, a, lo, 0, n)
                if lo != i:
                    pack_row(out, a, i, 0, n)
                if hi != i:
                    pack_row(out, a, hi, 0, n)
                pack_row(out, a, i, 0, n, write=True)


def _fdtd2d_trace(n: int, tile: int, atoms: Dict[str, int],
                  out: TraceBuilder) -> None:
    lay = Layout()
    ex = lay.array("ex", n, n)
    ey = lay.array("ey", n, n)
    hz = lay.array("hz", n, n)
    band = atoms.get("band")
    for rows in tiles(n, tile):
        if band is not None:
            out.op(map_range(band, hz, rows.start, len(rows)))
        for _t in range(TSTEPS):
            for i in rows:
                lo = max(i - 1, 0)
                # ey[i][j] -= 0.5 (hz[i][j] - hz[i-1][j])
                pack_row(out, hz, lo, 0, n)
                pack_row(out, ey, i, 0, n, write=True)
                # ex[i][j] -= 0.5 (hz[i][j] - hz[i][j-1])
                pack_row(out, hz, i, 0, n)
                pack_row(out, ex, i, 0, n, write=True)
                # hz[i][j] -= 0.7 (ex[i][j+1] - ex[i][j]
                #                 + ey[i+1][j] - ey[i][j])
                pack_row(out, ex, i, 0, n)
                pack_row(out, ey, i, 0, n)
                pack_row(out, hz, i, 0, n, write=True)


JACOBI2D = register(Kernel(
    name="jacobi2d",
    setup=_setup_band,
    trace=_jacobi2d_trace,
    footprint=lambda n: 2 * n * n * ELEM,
    description="5-point Jacobi, time-tiled bands; atom on the band",
))

SEIDEL2D = register(Kernel(
    name="seidel2d",
    setup=_setup_band,
    trace=_seidel2d_trace,
    footprint=lambda n: n * n * ELEM,
    description="in-place Gauss-Seidel sweep, time-tiled bands",
))

FDTD2D = register(Kernel(
    name="fdtd2d",
    setup=_setup_band,
    trace=_fdtd2d_trace,
    footprint=lambda n: 3 * n * n * ELEM,
    description="2-D FDTD over ex/ey/hz, time-tiled bands",
))
