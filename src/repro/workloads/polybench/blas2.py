"""BLAS-2-ish kernels: mvt, gemver, doitgen.

These kernels stream a large matrix while reusing small vectors (mvt,
gemver) or a small coefficient matrix (doitgen).  The XMem atom maps
the reused vector/coefficient *tile*; the matrix itself is expressed as
a zero-reuse streaming atom, letting the cache deprioritize it -- the
"bypassing data that has no reuse" benefit of Table 1.
"""

from __future__ import annotations

from typing import Dict

from repro.core.attributes import PatternType
from repro.cpu.trace import TraceBuilder, XMemOp
from repro.workloads.polybench.common import (
    ELEM,
    Kernel,
    Layout,
    map_range,
    map_tile_2d,
    pack_row,
    register,
    tiles,
)


def _setup_vec(lib) -> Dict[str, int]:
    if lib is None:
        return {}
    vec = lib.create_atom(
        "vec_tile", pattern=PatternType.REGULAR, stride_bytes=ELEM,
        reuse=255,
    )
    stream = lib.create_atom(
        "matrix_stream", pattern=PatternType.REGULAR, stride_bytes=ELEM,
        reuse=0,
    )
    lib.atom_activate(vec)
    lib.atom_activate(stream)
    return {"vec": vec, "stream": stream}


def _mvt_trace(n: int, tile: int, atoms: Dict[str, int],
               out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)
    x1 = lay.array("x1", n)
    y1 = lay.array("y1", n)
    x2 = lay.array("x2", n)
    y2 = lay.array("y2", n)
    vec = atoms.get("vec")
    stream = atoms.get("stream")
    if stream is not None:
        out.op(XMemOp("atom_map", stream, a.base, a.bytes))
    # Phase 1: x1 += A . y1, blocked over columns so y1[jt] is reused.
    for jt in tiles(n, tile):
        if vec is not None:
            out.op(map_range(vec, y1, jt.start, len(jt)))
        for i in range(n):
            pack_row(out, a, i, jt.start, len(jt))
            # Vector re-reads and the accumulator update are redundant
            # per-block traffic: no arithmetic work attached.
            pack_row(out, y1, 0, jt.start, len(jt), work_per_elem=0)
            out.access(x1.addr(0, i), True)
    # Phase 2: x2 += A^T . y2 -- a column walk of A.
    for jt in tiles(n, tile):
        if vec is not None:
            out.op(map_range(vec, y2, jt.start, len(jt)))
        for i in range(n):
            # A[i][jt] feeds x2[jt]: row segment again, but the
            # accumulators x2[jt] are the reused band.
            pack_row(out, a, i, jt.start, len(jt))
            pack_row(out, y2, 0, jt.start, len(jt), work_per_elem=0)
            pack_row(out, x2, 0, jt.start, len(jt), write=True,
                     work_per_elem=0)


def _gemver_trace(n: int, tile: int, atoms: Dict[str, int],
                  out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)
    u1 = lay.array("u1", n)
    v1 = lay.array("v1", n)
    u2 = lay.array("u2", n)
    v2 = lay.array("v2", n)
    x = lay.array("x", n)
    y = lay.array("y", n)
    w = lay.array("w", n)
    z = lay.array("z", n)
    vec = atoms.get("vec")
    stream = atoms.get("stream")
    if stream is not None:
        out.op(XMemOp("atom_map", stream, a.base, a.bytes))
    # Phase 1: A += u1.v1^T + u2.v2^T, blocked over columns.
    for jt in tiles(n, tile):
        if vec is not None:
            out.op(map_range(vec, v1, jt.start, len(jt)))
        for i in range(n):
            out.access(u1.addr(0, i))
            out.access(u2.addr(0, i))
            pack_row(out, v1, 0, jt.start, len(jt), work_per_elem=0)
            pack_row(out, v2, 0, jt.start, len(jt), work_per_elem=0)
            pack_row(out, a, i, jt.start, len(jt), write=True)
    # Phase 2: x = beta . A^T . y + z, blocked over columns of A.
    for jt in tiles(n, tile):
        if vec is not None:
            out.op(map_range(vec, x, jt.start, len(jt)))
        for i in range(n):
            out.access(y.addr(0, i))
            pack_row(out, a, i, jt.start, len(jt))
            pack_row(out, x, 0, jt.start, len(jt), write=True,
                     work_per_elem=0)
    # Phase 3: w = alpha . A . x, row-streaming with x reused whole.
    for jt in tiles(n, tile):
        if vec is not None:
            out.op(map_range(vec, x, jt.start, len(jt)))
        for i in range(n):
            pack_row(out, a, i, jt.start, len(jt))
            pack_row(out, x, 0, jt.start, len(jt), work_per_elem=0)
            out.access(w.addr(0, i), True)


def _doitgen_trace(n: int, tile: int, atoms: Dict[str, int],
                   out: TraceBuilder) -> None:
    """sum[r][q][p] = sum_s A[r][q][s] * C4[s][p].

    The coefficient matrix C4 (n x n) is reused by every (r, q) pair;
    the blocked loop slides an atom over C4's (s, p) tiles.
    """
    lay = Layout()
    a = lay.array("A", n * n, n)   # flattened (r, q) x s
    c4 = lay.array("C4", n, n)
    s_out = lay.array("sum", n * n, n)
    vec = atoms.get("vec")
    stream = atoms.get("stream")
    if stream is not None:
        out.op(XMemOp("atom_map", stream, a.base, a.bytes))
    for st in tiles(n, tile):
        for pt in tiles(n, tile):
            if vec is not None:
                out.op(map_tile_2d(vec, c4, st.start, pt.start,
                                   len(st), len(pt)))
            for rq in range(n * n):
                pack_row(out, a, rq, st.start, len(st), work_per_elem=0)
                for s in st:
                    pack_row(out, c4, s, pt.start, len(pt))
                    pack_row(out, s_out, rq, pt.start, len(pt),
                             write=True)


MVT = register(Kernel(
    name="mvt",
    setup=_setup_vec,
    trace=_mvt_trace,
    footprint=lambda n: (n * n + 4 * n) * ELEM,
    description="x1 = A.y1; x2 = A^T.y2; atoms on the vector tiles",
))

GEMVER = register(Kernel(
    name="gemver",
    setup=_setup_vec,
    trace=_gemver_trace,
    footprint=lambda n: (n * n + 8 * n) * ELEM,
    description="rank-2 update + two mat-vecs; vector tiles reused",
))

DOITGEN = register(Kernel(
    name="doitgen",
    setup=_setup_vec,
    trace=_doitgen_trace,
    footprint=lambda n: (2 * n * n * n + n * n) * ELEM,
    description="tensor contraction; atom slides over the C4 tile",
))
