"""Polybench kernels as tiled trace generators (Use Case 1).

Importing this package populates :data:`KERNELS` with the 12 kernels
the Figure 4-6 experiments sweep.
"""

from repro.workloads.polybench.common import (
    Array,
    ELEM,
    EPL,
    KERNELS,
    Kernel,
    LINE,
    Layout,
    WORK_PER_ELEM,
    col_segment,
    map_range,
    map_tile_2d,
    pack_col,
    pack_row,
    register,
    row_segment,
    tiles,
)

# Import for registration side effects.
from repro.workloads.polybench import (  # noqa: F401,E402
    blas2,
    matmul,
    stencil,
    symm,
)

#: The 12 kernels of the Figure 4 sweep, in presentation order.
FIGURE4_KERNELS = (
    "gemm", "2mm", "3mm", "syrk", "syr2k", "trmm",
    "mvt", "gemver", "doitgen", "jacobi2d", "seidel2d", "fdtd2d",
)

__all__ = [
    "Array",
    "ELEM",
    "EPL",
    "FIGURE4_KERNELS",
    "KERNELS",
    "Kernel",
    "LINE",
    "Layout",
    "WORK_PER_ELEM",
    "col_segment",
    "map_range",
    "map_tile_2d",
    "pack_col",
    "pack_row",
    "register",
    "row_segment",
    "tiles",
]
