"""Matrix-multiplication kernels: gemm, 2mm, 3mm.

All three follow the PLUTO tiling of C = A.B: the loop nest is blocked
over (k, j) tiles so the B tile ``B[kt][jt]`` is reused by *every* row
``i`` -- that tile is the high-reuse working set the XMem atom
describes (reuse 255, regular stride).  2mm and 3mm chain two / three
such products, remapping the same atom across phases (the paper's
"data can be easily remapped to a different atom ... as the program
moves into a different phase").
"""

from __future__ import annotations

from typing import Dict

from repro.core.attributes import PatternType
from repro.cpu.trace import TraceBuilder
from repro.workloads.polybench.common import (
    Array,
    ELEM,
    Kernel,
    Layout,
    map_tile_2d,
    pack_row,
    register,
    tiles,
)

#: Reuse value expressed for the blocked tile: maximal -- it is touched
#: by every iteration of the outer loop.
TILE_REUSE = 255


def _setup_one_atom(lib) -> Dict[str, int]:
    """One sliding tile atom, created at its static call site."""
    if lib is None:
        return {}
    atom = lib.create_atom(
        "mm_tile", pattern=PatternType.REGULAR, stride_bytes=ELEM,
        reuse=TILE_REUSE,
    )
    lib.atom_activate(atom)
    return {"tile": atom}


def _gemm_pass(a: Array, b: Array, c: Array, n: int, tile: int,
               atoms: Dict[str, int], out: TraceBuilder) -> None:
    """One tiled C += A.B product."""
    atom = atoms.get("tile")
    for kt in tiles(n, tile):
        for jt in tiles(n, tile):
            if atom is not None:
                out.op(map_tile_2d(atom, b, kt.start, jt.start,
                                   len(kt), len(jt)))
            for i in range(n):
                # A[i][kt]: re-read once per (jt) block -- a redundant
                # load, so it carries no arithmetic work (the FMAs are
                # attributed to the innermost B/C segments, keeping
                # total work identical across tile sizes, as the paper
                # ensures).
                pack_row(out, a, i, kt.start, len(kt), work_per_elem=0)
                for k in kt:
                    # B[k][jt] (the reused tile) and C[i][jt].
                    pack_row(out, b, k, jt.start, len(jt))
                    pack_row(out, c, i, jt.start, len(jt), write=True)


def _gemm_trace(n: int, tile: int, atoms: Dict[str, int],
                out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)
    b = lay.array("B", n, n)
    c = lay.array("C", n, n)
    _gemm_pass(a, b, c, n, tile, atoms, out)


def _mm2_trace(n: int, tile: int, atoms: Dict[str, int],
               out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)
    b = lay.array("B", n, n)
    tmp = lay.array("tmp", n, n)
    c = lay.array("C", n, n)
    d = lay.array("D", n, n)
    _gemm_pass(a, b, tmp, n, tile, atoms, out)   # tmp = A.B
    _gemm_pass(tmp, c, d, n, tile, atoms, out)   # D = tmp.C


def _mm3_trace(n: int, tile: int, atoms: Dict[str, int],
               out: TraceBuilder) -> None:
    lay = Layout()
    a = lay.array("A", n, n)
    b = lay.array("B", n, n)
    e = lay.array("E", n, n)
    c = lay.array("C", n, n)
    d = lay.array("D", n, n)
    f = lay.array("F", n, n)
    g = lay.array("G", n, n)
    _gemm_pass(a, b, e, n, tile, atoms, out)     # E = A.B
    _gemm_pass(c, d, f, n, tile, atoms, out)     # F = C.D
    _gemm_pass(e, f, g, n, tile, atoms, out)     # G = E.F

GEMM = register(Kernel(
    name="gemm",
    setup=_setup_one_atom,
    trace=_gemm_trace,
    footprint=lambda n: 3 * n * n * ELEM,
    description="C = A.B, PLUTO-tiled over (k, j); atom on the B tile",
))

MM2 = register(Kernel(
    name="2mm",
    setup=_setup_one_atom,
    trace=_mm2_trace,
    footprint=lambda n: 5 * n * n * ELEM,
    description="D = (A.B).C as two tiled products sharing one atom",
))

MM3 = register(Kernel(
    name="3mm",
    setup=_setup_one_atom,
    trace=_mm3_trace,
    footprint=lambda n: 7 * n * n * ELEM,
    description="G = (A.B).(C.D) as three tiled products",
))
