"""Shared infrastructure for the Polybench kernel traces.

The paper evaluates Use Case 1 on Polybench kernels statically tiled by
PLUTO (Section 5.3).  We reproduce the kernels as *trace generators*:
each kernel walks its (tiled) loop nest and emits the memory accesses
the compiled loop nest would issue, at cache-line granularity --
consecutive same-line element accesses are folded into one
:class:`MemAccess` whose ``work`` field carries the elided arithmetic
instructions.  This preserves the cache-visible access stream exactly
while keeping traces tractable.

XMem instrumentation follows the Section 5.2 idiom: one atom describes
the *current high-reuse tile*; when the kernel moves to the next tile it
remaps the same atom (`atom_remap`), and the cache controller re-runs
its pinning decision.

Kernels generate **packed** traces: each ``Kernel.trace`` callable
appends into a :class:`repro.cpu.trace.TraceBuilder` via
:func:`pack_row`/:func:`pack_col` (no per-event objects), and
``Kernel.build_packed`` returns the finished
:class:`~repro.cpu.trace.PackedTrace`.  ``Kernel.build_trace`` keeps the
historical signature and returns the same packed trace -- it iterates as
an object stream, so object-path consumers are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.core.errors import ConfigurationError
from repro.cpu.trace import (
    MemAccess,
    META_COUNT_SHIFT,
    META_WRITE_BIT,
    PackedTrace,
    TraceBuilder,
    TraceEvent,
    XMemOp,
)

#: Elements are double-precision floats throughout Polybench.
ELEM = 8
#: Cache-line size assumed by line-granular emission.
LINE = 64
#: Elements per cache line.
EPL = LINE // ELEM

#: Arithmetic instructions modelled per elided element access (a
#: multiply-add plus loop overhead).
WORK_PER_ELEM = 3


@dataclass
class Array:
    """One dense array of the kernel, laid out row-major."""

    name: str
    base: int
    rows: int
    cols: int

    @property
    def bytes(self) -> int:
        """Footprint in bytes."""
        return self.rows * self.cols * ELEM

    def addr(self, i: int, j: int = 0) -> int:
        """Virtual address of element [i][j]."""
        return self.base + (i * self.cols + j) * ELEM


class Layout:
    """Bump allocator for kernel arrays (page-aligned, gap-padded)."""

    def __init__(self, base: int = 0x10_0000) -> None:
        self._next = base
        self.arrays: List[Array] = []

    def array(self, name: str, rows: int, cols: int = 1) -> Array:
        """Allocate a rows x cols array."""
        arr = Array(name, self._next, rows, cols)
        size = arr.bytes
        # Page-align the next array and leave a guard page so distinct
        # arrays never share an AAM chunk.
        self._next += (size + 8191) // 4096 * 4096
        self.arrays.append(arr)
        return arr


def pack_row(out: TraceBuilder, arr: Array, i: int, j0: int, width: int,
             write: bool = False,
             work_per_elem: int = WORK_PER_ELEM) -> None:
    """Append elements [i][j0 : j0+width) at line granularity.

    The hot path of trace generation: integers go straight into the
    builder's columns -- no event objects.  Full interior lines all
    carry the same flag word, so it is computed once.
    """
    vbuf = out.vaddr
    mbuf = out.meta
    wbit = META_WRITE_BIT if write else 0
    row_base = arr.base + i * arr.cols * ELEM
    start = row_base + j0 * ELEM
    end = start + width * ELEM
    addr = start - (start % LINE)
    full_meta = ((EPL * work_per_elem) << META_COUNT_SHIFT) | wbit
    while addr < end:
        lo = addr if addr > start else start
        hi = addr + LINE
        if lo == addr and hi <= end:
            vbuf.append(addr)
            mbuf.append(full_meta)
        else:
            if hi > end:
                hi = end
            vbuf.append(lo)
            mbuf.append(((((hi - lo) // ELEM) * work_per_elem)
                         << META_COUNT_SHIFT) | wbit)
        addr += LINE


def pack_col(out: TraceBuilder, arr: Array, j: int, i0: int, height: int,
             write: bool = False,
             work_per_elem: int = WORK_PER_ELEM) -> None:
    """Append a column walk: one access per element (each its own line
    when cols*ELEM >= LINE, which holds for all our kernels)."""
    vbuf = out.vaddr
    mbuf = out.meta
    meta = (work_per_elem << META_COUNT_SHIFT) | (META_WRITE_BIT
                                                  if write else 0)
    row_bytes = arr.cols * ELEM
    addr = arr.base + (i0 * arr.cols + j) * ELEM
    for _ in range(height):
        vbuf.append(addr)
        mbuf.append(meta)
        addr += row_bytes


def row_segment(arr: Array, i: int, j0: int, width: int,
                write: bool = False,
                work_per_elem: int = WORK_PER_ELEM
                ) -> Iterator[MemAccess]:
    """Stream elements [i][j0 : j0+width) as :class:`MemAccess` objects
    (compat/debug shim over :func:`pack_row`)."""
    out = TraceBuilder()
    pack_row(out, arr, i, j0, width, write, work_per_elem)
    return out.build().events()


def col_segment(arr: Array, j: int, i0: int, height: int,
                write: bool = False,
                work_per_elem: int = WORK_PER_ELEM
                ) -> Iterator[MemAccess]:
    """Walk a column as :class:`MemAccess` objects (compat/debug shim
    over :func:`pack_col`)."""
    out = TraceBuilder()
    pack_col(out, arr, j, i0, height, write, work_per_elem)
    return out.build().events()


def tiles(n: int, tile: int) -> Iterator[range]:
    """Split [0, n) into tile-sized chunks."""
    for t0 in range(0, n, tile):
        yield range(t0, min(t0 + tile, n))


def check_params(n: int, tile: int) -> None:
    """Validate the (N, tile) pair of a kernel invocation."""
    if n <= 0:
        raise ConfigurationError(f"kernel size must be > 0: {n}")
    if tile <= 0 or tile > n:
        raise ConfigurationError(
            f"tile must be in [1, {n}], got {tile}"
        )


def map_tile_2d(atom_id: int, arr: Array, i0: int, j0: int,
                height: int, width: int) -> XMemOp:
    """Remap an atom onto a 2-D tile of ``arr``.

    Uses the AtomMap2D form of Table 2: width/row-length in bytes.
    """
    return XMemOp(
        "atom_remap_2d", atom_id,
        arr.addr(i0, j0), width * ELEM, height, arr.cols * ELEM,
    )


def map_range(atom_id: int, arr: Array, i0: int, rows: int) -> XMemOp:
    """Remap an atom onto a contiguous band of rows of ``arr``."""
    return XMemOp("atom_remap", atom_id, arr.addr(i0, 0),
                  rows * arr.cols * ELEM)


@dataclass
class Kernel:
    """Registry record of one Polybench kernel."""

    name: str
    #: setup(lib) -> dict of atom ids (None lib: returns {} -- baseline)
    setup: callable
    #: trace(n, tile, atoms, out) -> None; appends into TraceBuilder out
    trace: callable
    #: Arrays touched, as a footprint estimator: footprint(n) -> bytes.
    footprint: callable
    description: str = ""

    def build_packed(self, n: int, tile: int, lib=None) -> PackedTrace:
        """Set up atoms (when a lib is present) and pack the trace."""
        check_params(n, tile)
        atoms = self.setup(lib) if lib is not None else {}
        out = TraceBuilder()
        self.trace(n, tile, atoms, out)
        return out.build()

    def build_trace(self, n: int, tile: int, lib=None) -> PackedTrace:
        """Historical entry point; now an alias of :meth:`build_packed`.

        The returned :class:`PackedTrace` iterates as the same object
        stream the old generator produced, so existing consumers (and
        `engine.run`) are unaffected -- they just get the packed fast
        path for free.
        """
        return self.build_packed(n, tile, lib)


#: Global kernel registry, filled by the kernel modules at import time.
KERNELS: Dict[str, Kernel] = {}


def register(kernel: Kernel) -> Kernel:
    """Add a kernel to the registry (import-time side effect)."""
    if kernel.name in KERNELS:
        raise ConfigurationError(f"duplicate kernel {kernel.name!r}")
    KERNELS[kernel.name] = kernel
    return kernel
