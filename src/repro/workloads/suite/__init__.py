"""The 27-workload Use-Case-2 suite (SPEC / Rodinia / Parboil models)."""

from repro.workloads.suite.catalog import (
    BY_NAME,
    LOW_HEADROOM,
    RANDOM_DOMINATED,
    SUITE,
    graph,
    stream,
    table,
)
from repro.workloads.suite.spec import (
    LINE,
    StructureSpec,
    SuiteWorkload,
    WORK_PER_ACCESS,
)

__all__ = [
    "BY_NAME",
    "LINE",
    "LOW_HEADROOM",
    "RANDOM_DOMINATED",
    "SUITE",
    "StructureSpec",
    "SuiteWorkload",
    "WORK_PER_ACCESS",
    "graph",
    "stream",
    "table",
]
