"""The 27 Use-Case-2 workload models (SPEC CPU2006 / Rodinia / Parboil).

Each entry models the memory-intensive behaviour of one workload from
the paper's Section 6 evaluation as a mix of data structures with
distinct access semantics.  The mixes are chosen to reproduce the
paper's qualitative behaviour classes:

* **streaming-dominated** (libquantum, lbm, GemsFDTD, ...) -- several
  concurrently accessed regular structures: randomized placement lets
  them interfere in DRAM banks; XMem isolates the hot ones.
* **irregular-dominated** (mcf, xalancbmk, bfsRod) -- random access
  patterns with no row locality to protect: the paper observes these
  gain little.
* **little-headroom** (sc, histo) -- effectively a single stream whose
  row locality is already near-perfect under any placement.
* **mixed** -- a hot stream plus irregular side structures, the main
  beneficiary class.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.attributes import PatternType, RWChar
from repro.workloads.suite.spec import StructureSpec, SuiteWorkload

MB = 1 << 20
KB = 1 << 10


def stream(name: str, size: int, intensity: int,
           stride: int = 64, rw: RWChar = RWChar.READ_WRITE,
           write_fraction: float = 0.2) -> StructureSpec:
    """A sequentially streamed structure (high RBL)."""
    return StructureSpec(name, size, PatternType.REGULAR,
                         stride_bytes=stride, intensity=intensity,
                         rw=rw, write_fraction=write_fraction)


def table(name: str, size: int, intensity: int,
          write_fraction: float = 0.3) -> StructureSpec:
    """A randomly probed structure (no repeatable pattern)."""
    return StructureSpec(name, size, PatternType.NON_DET,
                         intensity=intensity,
                         write_fraction=write_fraction)


def graph(name: str, size: int, intensity: int,
          write_fraction: float = 0.1) -> StructureSpec:
    """An irregular-but-repeatable structure (graph-like)."""
    return StructureSpec(name, size, PatternType.IRREGULAR,
                         intensity=intensity,
                         write_fraction=write_fraction)


def _w(name: str, *structures: StructureSpec,
       description: str = "") -> SuiteWorkload:
    return SuiteWorkload(name=name, structures=tuple(structures),
                         description=description)


#: The full 27-workload roster of Figure 7/8.
SUITE: Tuple[SuiteWorkload, ...] = (
    # ---- SPEC CPU2006 (15) ------------------------------------------------
    _w("mcf",
       table("nodes", 10 * MB, 230), stream("arcs", 2 * MB, 40),
       description="pointer-chasing network simplex; random-dominated"),
    _w("lbm",
       stream("grid_src", 6 * MB, 210), stream("grid_dst", 6 * MB, 190,
                                               write_fraction=0.8),
       stream("flags", 1 * MB, 40, rw=RWChar.READ_ONLY),
       description="lattice-Boltzmann: two big concurrent streams"),
    _w("libquantum",
       stream("state", 8 * MB, 250, rw=RWChar.READ_WRITE),
       table("gates", 256 * KB, 20),
       description="quantum register sweeps: one dominant stream"),
    _w("milc",
       stream("links", 4 * MB, 180), stream("momenta", 4 * MB, 150),
       table("rand", 1 * MB, 60),
       description="lattice QCD: strided field updates + noise table"),
    _w("soplex",
       stream("columns", 4 * MB, 160), table("basis", 3 * MB, 120),
       description="LP solver: column streams vs. basis probing"),
    _w("gcc",
       table("ir", 3 * MB, 150), stream("rtl", 2 * MB, 110),
       description="compiler IR walks with streaming passes"),
    _w("omnetpp",
       graph("events", 6 * MB, 200), stream("queues", 1 * MB, 70),
       description="discrete-event simulation: heap-order event walks"),
    _w("astar",
       graph("grid", 4 * MB, 180), stream("open_list", 2 * MB, 90),
       description="pathfinding: repeatable graph expansion"),
    _w("sphinx3",
       stream("acoustic", 4 * MB, 190, rw=RWChar.READ_ONLY),
       table("hmm", 2 * MB, 110),
       description="speech decoding: model streaming + HMM probes"),
    _w("GemsFDTD",
       stream("e_field", 4 * MB, 200), stream("h_field", 4 * MB, 200),
       stream("coeff", 2 * MB, 80, rw=RWChar.READ_ONLY),
       description="FDTD: three concurrent field streams"),
    _w("leslie3d",
       stream("u", 3 * MB, 170), stream("v", 3 * MB, 170),
       stream("w", 3 * MB, 160),
       description="CFD: multi-array sweeps"),
    _w("bwaves",
       stream("q", 5 * MB, 200), stream("rhs", 5 * MB, 180,
                                        write_fraction=0.7),
       description="blast-wave solver: paired read/write streams"),
    _w("cactusADM",
       stream("metric", 5 * MB, 190), table("lookup", 1 * MB, 60),
       description="numerical relativity: stencil stream + tables"),
    _w("zeusmp",
       stream("density", 3 * MB, 170), stream("energy", 3 * MB, 160),
       stream("velocity", 3 * MB, 150),
       description="astrophysics MHD: three field streams"),
    _w("xalancbmk",
       table("dom", 6 * MB, 220), table("symbols", 2 * MB, 80),
       description="XSLT: pointer-heavy DOM traversal; random-dominated"),
    # ---- Rodinia (7) ------------------------------------------------------
    _w("bfsRod",
       graph("edges", 8 * MB, 230), stream("frontier", 1 * MB, 50),
       description="breadth-first search; random-dominated"),
    _w("kmeans",
       stream("features", 6 * MB, 200, rw=RWChar.READ_ONLY),
       table("centroids", 512 * KB, 90),
       description="clustering: feature streaming + centroid updates"),
    _w("backprop",
       stream("weights_in", 4 * MB, 190),
       stream("weights_out", 4 * MB, 170, write_fraction=0.8),
       description="neural net training: weight matrix sweeps"),
    _w("hotspot",
       stream("temp", 4 * MB, 200), stream("power", 4 * MB, 140,
                                           rw=RWChar.READ_ONLY),
       description="thermal grid: paired grid streams"),
    _w("srad",
       stream("image", 5 * MB, 210), stream("coeff", 2 * MB, 100),
       description="image diffusion: pixel streams"),
    _w("sc",
       stream("points", 6 * MB, 220, rw=RWChar.READ_ONLY),
       description="streamcluster: one stream; little headroom"),
    _w("particlefilter",
       stream("particles", 4 * MB, 180), table("weights", 1 * MB, 90),
       description="sequential Monte Carlo: particle array sweeps"),
    # ---- Parboil (5) ------------------------------------------------------
    _w("histo",
       stream("input", 6 * MB, 200, rw=RWChar.READ_ONLY),
       description="histogram over a streamed input; little headroom"),
    _w("spmv",
       stream("values", 4 * MB, 190, rw=RWChar.READ_ONLY),
       graph("x_gather", 3 * MB, 150),
       description="sparse mat-vec: value stream + index gathers"),
    _w("stencil",
       stream("grid_in", 4 * MB, 200, rw=RWChar.READ_ONLY),
       stream("grid_out", 4 * MB, 180, write_fraction=0.9),
       description="7-point stencil: in/out grid streams"),
    _w("sgemm",
       stream("a", 3 * MB, 180, rw=RWChar.READ_ONLY),
       stream("b", 3 * MB, 200, rw=RWChar.READ_ONLY),
       stream("c", 3 * MB, 120, write_fraction=0.6),
       description="dense matmul tiles: three matrix streams"),
    _w("cutcp",
       stream("lattice", 4 * MB, 170, write_fraction=0.5),
       table("atoms", 2 * MB, 110),
       description="Coulomb potential: lattice stream + atom probes"),
)

#: name -> workload, for lookup by the benches.
BY_NAME: Dict[str, SuiteWorkload] = {w.name: w for w in SUITE}

#: The workloads the paper singles out as gaining little: <3% headroom
#: (sc, histo) or random-access-dominated (mcf, xalancbmk, bfsRod).
LOW_HEADROOM = ("sc", "histo")
RANDOM_DOMINATED = ("mcf", "xalancbmk", "bfsRod")
