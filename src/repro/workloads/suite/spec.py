"""Synthetic multi-data-structure workload models (Use Case 2).

The paper evaluates DRAM placement on 27 memory-intensive workloads
from SPEC CPU2006, Rodinia, and Parboil.  Those binaries and inputs are
not reproducible here, so each workload is modelled by what Use Case 2
actually consumes: its *data structures* and their access semantics --
how large each structure is, whether it is streamed (high row-buffer
locality) or accessed irregularly, and how hot it is relative to the
others.  The access interleaving is generated deterministically from
the workload name.

Each structure becomes one atom; the access generator interleaves
structures proportionally to their intensities, producing exactly the
kind of bank interference that randomized page placement suffers from
and atom-aware placement removes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.attributes import PatternType, RWChar
from repro.core.errors import ConfigurationError
from repro.cpu.trace import MemAccess, TraceEvent

#: Cache-line granularity of generated accesses.
LINE = 64

#: Non-memory instructions modelled between consecutive accesses.
#: Chosen so the suite sits in the paper's memory-intensive regime
#: (heavy MPKI) without being purely bus-saturated: both latency and
#: bandwidth effects remain visible.
WORK_PER_ACCESS = 24


@dataclass(frozen=True)
class StructureSpec:
    """One data structure of a workload."""

    name: str
    size_bytes: int
    pattern: PatternType
    #: Stride for REGULAR structures (bytes); ignored otherwise.
    stride_bytes: int = LINE
    #: Relative hotness, 1..255 (the atom's AccessIntensity).
    intensity: int = 100
    rw: RWChar = RWChar.READ_WRITE
    #: Fraction of this structure's accesses that are writes.
    write_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.size_bytes < LINE:
            raise ConfigurationError(
                f"{self.name}: structure smaller than a line"
            )
        if not 1 <= self.intensity <= 255:
            raise ConfigurationError(
                f"{self.name}: intensity must be 1..255"
            )

    @property
    def atom_stride(self) -> Optional[int]:
        """The stride expressed in the atom (None for non-regular)."""
        return self.stride_bytes if self.pattern is PatternType.REGULAR \
            else None

    @property
    def expressed_rw(self) -> RWChar:
        """The RWChar the program expresses for this structure.

        Structures written on at least half their accesses express the
        paper-anticipated ``WRITE_HEAVY`` degree, which the placement
        algorithm uses to keep their writeback traffic spread out.
        """
        if self.rw is RWChar.READ_WRITE and self.write_fraction >= 0.5:
            return RWChar.WRITE_HEAVY
        return self.rw


@dataclass(frozen=True)
class SuiteWorkload:
    """One of the 27 Use-Case-2 workload models."""

    name: str
    structures: Tuple[StructureSpec, ...]
    accesses: int = 120_000
    description: str = ""

    def __post_init__(self) -> None:
        if not self.structures:
            raise ConfigurationError(f"{self.name}: needs structures")
        names = [s.name for s in self.structures]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"{self.name}: duplicate structures")

    @property
    def footprint(self) -> int:
        """Total bytes across all structures."""
        return sum(s.size_bytes for s in self.structures)

    def instantiate(self, proc) -> Dict[str, int]:
        """Create atoms, allocate memory, map and activate.

        ``proc`` is a :class:`repro.xos.loader.Process`.  Follows the
        paper's load-time order: atoms are created (compile time), the
        OS plans placement from the GAT (load time), and only then is
        memory allocated through the augmented ``malloc``.

        Returns structure name -> base VA.
        """
        lib = proc.xmemlib
        atom_ids = {}
        for s in self.structures:
            atom_ids[s.name] = lib.create_atom(
                f"{self.name}.{s.name}",
                pattern=s.pattern,
                stride_bytes=s.atom_stride,
                rw=s.expressed_rw,
                access_intensity=s.intensity,
            )
        # Load-time placement, when the OS supports it: the placement
        # algorithm reads the freshly filled GAT before any allocation.
        from repro.xos.allocator import BankTargetAllocator
        if (isinstance(proc.allocator, BankTargetAllocator)
                and proc.os is not None):
            proc.os.apply_placement(proc)
        bases = {}
        for s in self.structures:
            va = proc.malloc(s.size_bytes, atom_id=atom_ids[s.name])
            lib.atom_map(atom_ids[s.name], va, s.size_bytes)
            lib.atom_activate(atom_ids[s.name])
            bases[s.name] = va
        return bases

    def trace(self, bases: Dict[str, int],
              seed: Optional[int] = None) -> Iterator[TraceEvent]:
        """Deterministic interleaved access stream.

        ``bases`` maps structure names to base virtual addresses (from
        :meth:`instantiate`, or any synthetic layout in tests).
        """
        rng = random.Random(seed if seed is not None
                            else _name_seed(self.name))
        cursors = {s.name: 0 for s in self.structures}
        # Repeatable irregular sequences: one shuffled line order per
        # IRREGULAR structure.
        irregular_orders: Dict[str, List[int]] = {}
        for s in self.structures:
            if s.pattern is PatternType.IRREGULAR:
                lines = list(range(s.size_bytes // LINE))
                rng.shuffle(lines)
                irregular_orders[s.name] = lines
        schedule = self._schedule(rng)
        n_sched = len(schedule)
        for i in range(self.accesses):
            s = schedule[i % n_sched]
            base = bases[s.name]
            lines_in = s.size_bytes // LINE
            if s.pattern is PatternType.REGULAR:
                cursors[s.name] = (cursors[s.name] + s.stride_bytes) \
                    % s.size_bytes
                addr = base + cursors[s.name]
            elif s.pattern is PatternType.IRREGULAR:
                order = irregular_orders[s.name]
                idx = order[cursors[s.name] % len(order)]
                cursors[s.name] += 1
                addr = base + idx * LINE
            else:  # NON_DET
                addr = base + rng.randrange(lines_in) * LINE
            is_write = (s.rw is not RWChar.READ_ONLY
                        and rng.random() < s.write_fraction)
            yield MemAccess(addr, is_write, work=WORK_PER_ACCESS)

    def _schedule(self, rng: random.Random) -> List[StructureSpec]:
        """A fixed-length weighted interleaving of the structures."""
        weights = [s.intensity for s in self.structures]
        return rng.choices(self.structures, weights=weights, k=512)


def _name_seed(name: str) -> int:
    """Stable per-workload seed (independent of PYTHONHASHSEED)."""
    return sum((i + 1) * ord(ch) for i, ch in enumerate(name))
