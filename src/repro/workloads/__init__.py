"""Workloads: Polybench kernels (Use Case 1) and the 27-workload
SPEC/Rodinia/Parboil suite (Use Case 2)."""

from repro.workloads import polybench, suite

__all__ = ["polybench", "suite"]
