"""``repro serve``: the stdlib HTTP+JSON surface over scenarios/runs.

Endpoints (all bodies and responses are JSON):

* ``POST /v1/scenarios``      -- build (or reuse) a content-hashed
  scenario; concurrent identical requests share one build.
* ``GET  /v1/scenarios``      -- list built scenarios.
* ``GET  /v1/scenarios/<h>``  -- one scenario's summary.
* ``POST /v1/runs``           -- schedule sweep points against built
  scenarios (``{"scenario": h, "configs": [...]}`` or
  ``{"points": [{"scenario": h, "config": {...}}, ...]}``, plus an
  optional ``out_dir`` the server writes completed documents into;
  each config may carry a per-run ``engine`` tier).
* ``GET  /v1/runs``           -- list runs and their progress.
* ``GET  /v1/runs/<id>``      -- progress; completed runs include the
  per-point manifest+stats documents.  ``?since=<counter>`` long-polls
  and returns only the completion events past the counter (plus
  ``wait=<seconds>``, default 25, cap 60); ``?stream=1`` holds the
  connection open and chunks events as NDJSON until the run is
  terminal.  With ``--workspace``, runs retired from memory (or
  completed by a previous server process) are served from disk.
* ``DELETE /v1/runs/<id>``    -- cancel a run: still-pending points
  are skipped, and an in-flight point (process executor) has its
  worker terminated, freeing the pool slot.
* ``GET  /health``            -- liveness: queue depth, worker counts,
  pool state (executor, per-worker pid / jobs since last recycle).
* ``GET  /debug/state``       -- full introspection: serve counters,
  queue/worker/pool state, workspace usage, scenario and run tables,
  trace memo bounds, engine tier, ``REPRO_*`` env.

Error mapping: malformed JSON and :class:`ConfigurationError` are 400
(a bad config must never surface as a 500), unknown
scenarios/runs/paths are 404, a full queue is 429, scenario build
failures are 500.  Every response body parses as JSON, including
errors -- the fuzz lane drives this surface with junk and concurrent
duplicates and asserts exactly that.

Built on ``http.server.ThreadingHTTPServer``: stdlib only, one thread
per connection for the control plane; the data plane is the process
pool in :mod:`repro.serve.jobs` / :mod:`repro.serve.pool`.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.stats import stat_values
from repro.cpu.tiers import resolve_engine_tier
from repro.serve.jobs import QueueFullError, RunScheduler, ServeStats
from repro.serve.scenarios import (
    ScenarioBuildError,
    ScenarioSpec,
    ScenarioStore,
    entry_from_record,
    scenario_record,
)
from repro.serve.workspace import ArtifactWorkspace
from repro.sim.stats import collect_repro_env

#: Request bodies past this size are rejected (413) before parsing.
MAX_BODY_BYTES = 4 << 20

#: Long-poll ``wait=`` default and ceiling, seconds.
LONGPOLL_DEFAULT_S = 25.0
LONGPOLL_MAX_S = 60.0

#: A ``?stream=1`` connection is closed after this long regardless.
STREAM_MAX_S = 600.0


def resolve_out_dir(raw: str, out_root: Optional[Path]) -> Path:
    """Validate a client-supplied ``out_dir`` against the server policy.

    The scheduler mkdirs and writes JSON documents under this path, so
    it is filesystem write access handed to the client.  ``..``
    components are always rejected.  With ``--out-root`` configured,
    ``out_dir`` must additionally be a relative path and is resolved
    inside that root; without it, the server trusts its clients with
    any writable path -- acceptable on the default loopback bind, and
    documented as such in docs/serve.md.
    """
    path = Path(raw).expanduser()
    if any(part == ".." for part in path.parts):
        raise ConfigurationError(
            f"out_dir must not contain '..' components: {raw!r}")
    if out_root is None:
        return path
    if path.is_absolute():
        raise ConfigurationError(
            f"out_dir must be relative to the server's --out-root, "
            f"got absolute path {raw!r}")
    return out_root / path


class ServeHTTPError(Exception):
    """An error with a definite HTTP status (maps straight to JSON)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServerState:
    """Everything one ``repro serve`` process owns."""

    def __init__(self, workers: int = 2, queue_limit: int = 64,
                 cache_dir: Optional[str] = None,
                 out_root: Optional[str] = None,
                 executor: str = "process",
                 recycle_after: int = 32,
                 workspace: Optional[str] = None,
                 workspace_ttl_s: float = 7 * 24 * 3600.0,
                 workspace_limit_bytes: int = 512 << 20,
                 verbose: bool = False) -> None:
        cache_root: Optional[Path] = None
        cache_disabled = False
        if cache_dir is not None:
            if cache_dir.strip().lower() in ("0", "off", "none", "false"):
                cache_disabled = True
            else:
                cache_root = Path(cache_dir).expanduser()
        # Resolved once, up front: a bad REPRO_ENGINE should refuse to
        # boot the server, not 500 every request.
        self.engine_tier = resolve_engine_tier()
        self.stats = ServeStats()
        self.workspace: Optional[ArtifactWorkspace] = None
        if workspace is not None:
            self.workspace = ArtifactWorkspace(
                Path(workspace), ttl_s=workspace_ttl_s,
                limit_bytes=workspace_limit_bytes)
        self.store = ScenarioStore(
            cache_root=cache_root, cache_disabled=cache_disabled,
            on_built=(self._persist_scenario
                      if self.workspace is not None else None))
        if self.workspace is not None:
            # Scenarios built by a previous server process register at
            # boot, so clients can resubmit runs against their hashes
            # without rebuilding (traces regenerate lazily through the
            # normal cache layers if needed).
            for record in self.workspace.load_scenarios():
                entry = entry_from_record(record)
                if entry is not None:
                    self.store.rehydrate(entry)
        self.scheduler = RunScheduler(self.store, self.stats,
                                      workers=workers,
                                      queue_limit=queue_limit,
                                      executor=executor,
                                      recycle_after=recycle_after,
                                      workspace=self.workspace)
        self.out_root = (Path(out_root).expanduser()
                         if out_root is not None else None)
        self.verbose = verbose
        self.started_at = time.time()
        self._t0 = time.monotonic()

    def _persist_scenario(self, entry) -> None:
        self.workspace.save_scenario(scenario_record(entry))

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._t0

    def health(self) -> Tuple[int, Dict[str, object]]:
        """``GET /health``: 200 when every worker thread is alive.

        Pool children are reported, not gated on: they spawn lazily
        with the first job and are respawned after crash/recycle, so
        an idle or freshly recycled slot is healthy.
        """
        sched = self.scheduler
        alive = sched.workers_alive()
        configured = sched.configured_workers
        healthy = alive == configured
        doc = {
            "status": "ok" if healthy else "degraded",
            "uptime_s": round(self.uptime_s, 3),
            "queue_depth": sched.queue_depth(),
            "workers": {"alive": alive, "configured": configured},
            "pool": sched.pool_report(),
            "scenarios": len(self.store),
            "runs": sched.run_count(),
            "engine_tier": self.engine_tier,
        }
        return (200 if healthy else 503), doc

    def debug_state(self) -> Dict[str, object]:
        """``GET /debug/state``: the full introspection document."""
        from repro.sim.runner import _MEMO, _MEMO_LIMIT

        sched = self.scheduler
        cache = self.store.new_cache()
        return {
            "serve": stat_values(self.stats),
            "uptime_s": round(self.uptime_s, 3),
            "engine_tier": self.engine_tier,
            "env": collect_repro_env(),
            "queue": {"depth": sched.queue_depth(),
                      "limit": sched.queue_limit},
            "workers": sched.worker_report(),
            "pool": sched.pool_report(),
            "workspace": (self.workspace.usage()
                          if self.workspace is not None else None),
            "memo": {"entries": len(_MEMO), "limit": _MEMO_LIMIT},
            "trace_cache": {
                "dir": (str(cache.root) if cache.root is not None
                        else None),
                "enabled": cache.enabled,
            },
            "scenarios": self.store.summaries(),
            "runs": sched.runs_summary(),
        }

    def close(self) -> None:
        self.scheduler.shutdown()


# ---------------------------------------------------------------------------
# Request handling
# ---------------------------------------------------------------------------

def _query_int(query: Dict[str, str], name: str) -> Optional[int]:
    raw = query.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}") from None


def _query_float(query: Dict[str, str], name: str,
                 default: float) -> float:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number, got {raw!r}") from None


class ServeHandler(BaseHTTPRequestHandler):
    """Route table + JSON plumbing for one request."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def state(self) -> ServerState:
        return self.server.state  # type: ignore[attr-defined]

    # -- stdlib hooks -----------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:
        if self.state.verbose:
            sys.stderr.write("serve: %s\n" % (fmt % args))

    def do_GET(self) -> None:          # noqa: N802 (stdlib casing)
        self._dispatch("GET")

    def do_POST(self) -> None:         # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:       # noqa: N802
        self._dispatch("DELETE")

    # -- dispatch ---------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        state = self.state
        state.stats.bump("requests")
        try:
            result = self._route(method)
            if result is None:
                # The handler streamed its own response.
                return
            status, doc = result
        except ConfigurationError as exc:
            state.stats.bump("bad_requests")
            status, doc = 400, {"error": str(exc)}
        except ServeHTTPError as exc:
            if exc.status == 404:
                state.stats.bump("not_found")
            elif exc.status == 400:
                state.stats.bump("bad_requests")
            status, doc = exc.status, {"error": str(exc)}
        except QueueFullError as exc:
            status, doc = 429, {"error": str(exc)}
        except ScenarioBuildError as exc:
            state.stats.bump("internal_errors")
            status, doc = 500, {"error": str(exc)}
        except Exception as exc:                 # noqa: BLE001
            state.stats.bump("internal_errors")
            status, doc = 500, {
                "error": f"{type(exc).__name__}: {exc}"}
        self._reply(status, doc)

    def _route(self, method: str
               ) -> Optional[Tuple[int, Dict[str, object]]]:
        path, _, raw_query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        query = {k: v[-1] for k, v in
                 urllib.parse.parse_qs(raw_query).items()}
        if method == "GET":
            if path == "/health":
                return self.state.health()
            if path == "/debug/state":
                return 200, self.state.debug_state()
            if path == "/v1/scenarios":
                return 200, {"scenarios": self.state.store.summaries()}
            if len(parts) == 3 and parts[:2] == ["v1", "scenarios"]:
                entry = self.state.store.get(parts[2])
                if entry is None:
                    raise ServeHTTPError(
                        404, f"unknown scenario {parts[2]!r}")
                return 200, entry.summary()
            if path == "/v1/runs":
                doc = {"runs": self.state.scheduler.runs_summary()}
                ws = self.state.workspace
                if ws is not None:
                    sched = self.state.scheduler
                    doc["archived"] = [
                        rid for rid in ws.run_ids()
                        if sched.get_run(rid) is None]
                return 200, doc
            if len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                return self._get_run(parts[2], query)
        elif method == "POST":
            if path == "/v1/scenarios":
                return self._post_scenario()
            if path == "/v1/runs":
                return self._post_run()
        elif method == "DELETE":
            if len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                if not self.state.scheduler.cancel(parts[2]):
                    raise ServeHTTPError(
                        404, f"unknown run {parts[2]!r}")
                return 200, {"run": parts[2], "status": "cancelled"}
        raise ServeHTTPError(404, f"no route for {method} {self.path}")

    # -- endpoints --------------------------------------------------------

    def _post_scenario(self) -> Tuple[int, Dict[str, object]]:
        body = self._read_json()
        spec = ScenarioSpec.from_request(body)
        entry, created, deduped = self.state.store.get_or_build(
            spec, self.state.stats)
        doc = entry.summary()
        doc["created"] = created
        doc["deduped"] = deduped
        return (201 if created else 200), doc

    def _post_run(self) -> Tuple[int, Dict[str, object]]:
        body = self._read_json()
        if not isinstance(body, dict):
            raise ConfigurationError(
                f"run request must be a JSON object, "
                f"got {type(body).__name__}")
        allowed = {"scenario", "configs", "points", "out_dir"}
        unknown = sorted(set(body) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown run-request keys {unknown}; "
                f"allowed: {sorted(allowed)}")
        raw_points = []
        if "points" in body:
            if "scenario" in body or "configs" in body:
                raise ConfigurationError(
                    "pass either points or scenario+configs, not both")
            if not isinstance(body["points"], list) or not body["points"]:
                raise ConfigurationError(
                    f"points must be a non-empty list, "
                    f"got {body['points']!r}")
            for item in body["points"]:
                if not isinstance(item, dict):
                    raise ConfigurationError(
                        f"each point must be an object, got {item!r}")
                bad = sorted(set(item) - {"scenario", "config"})
                if bad:
                    raise ConfigurationError(
                        f"unknown point keys {bad}; "
                        f"allowed: ['config', 'scenario']")
                raw_points.append((item.get("scenario"),
                                   item.get("config")))
        else:
            if "scenario" not in body:
                raise ConfigurationError(
                    "run request needs a scenario (or a points list)")
            configs = body.get("configs", [{}])
            if not isinstance(configs, list) or not configs:
                raise ConfigurationError(
                    f"configs must be a non-empty list, "
                    f"got {configs!r}")
            raw_points = [(body["scenario"], c) for c in configs]
        resolved = []
        for scenario_hash, config in raw_points:
            if not isinstance(scenario_hash, str):
                raise ConfigurationError(
                    f"scenario must be a hash string, "
                    f"got {scenario_hash!r}")
            entry = self.state.store.get(scenario_hash)
            if entry is None:
                raise ServeHTTPError(
                    404, f"unknown scenario {scenario_hash!r}; "
                         f"POST /v1/scenarios first")
            from repro.serve.jobs import normalize_config
            resolved.append((entry, normalize_config(entry, config)))
        out_dir = body.get("out_dir")
        if out_dir is not None and not isinstance(out_dir, str):
            raise ConfigurationError(
                f"out_dir must be a path string, got {out_dir!r}")
        run = self.state.scheduler.submit(
            resolved,
            out_dir=(resolve_out_dir(out_dir, self.state.out_root)
                     if out_dir else None))
        progress = self.state.scheduler.run_progress(run)
        return 202, {
            "run": run.id,
            "url": f"/v1/runs/{run.id}",
            "points": len(run.point_keys),
            "new": run.new,
            "deduped": run.deduped,
            "status": progress["status"],
        }

    def _get_run(self, run_id: str, query: Dict[str, str]
                 ) -> Optional[Tuple[int, Dict[str, object]]]:
        sched = self.state.scheduler
        run = sched.get_run(run_id)
        if run is None:
            return self._get_archived_run(run_id)
        if query.get("stream") == "1":
            since = _query_int(query, "since") or 0
            self._stream_run(run, since)
            return None
        since = _query_int(query, "since")
        if since is not None:
            wait_s = _query_float(query, "wait", LONGPOLL_DEFAULT_S)
            wait_s = min(max(wait_s, 0.0), LONGPOLL_MAX_S)
            events, next_seq, progress = sched.wait_events(
                run, since, wait_s)
            return 200, {
                "run": run.id,
                "status": progress["status"],
                "points": progress["points"],
                "since": since,
                "next": next_seq,
                "events": events,
            }
        progress = sched.run_progress(run)
        doc: Dict[str, object] = {
            "run": run.id,
            "status": progress["status"],
            "points": progress["points"],
            "names": list(run.names),
            "created_at": run.created_at,
        }
        docs, errors = sched.run_documents(run)
        if errors:
            doc["errors"] = errors
        if progress["status"] in ("done", "failed", "cancelled"):
            doc["documents"] = docs
            if run.out_dir is not None:
                doc["out_dir"] = str(run.out_dir)
                # -1 is the scheduler's internal claimed-but-flushing
                # sentinel; expose the count only once the files exist.
                if run.written is not None and run.written >= 0:
                    doc["written"] = run.written
        return 200, doc

    def _get_archived_run(self, run_id: str
                          ) -> Tuple[int, Dict[str, object]]:
        """A run served from the workspace after retirement/restart.

        A record whose run never reached a terminal state (the server
        died mid-batch) reports ``failed``: its completed points are
        served from disk, its unfinished ones carry an ``interrupted``
        error, and resubmitting the same points is the recovery path
        (completed ones become workspace hits; only the interrupted
        remainder re-executes).
        """
        ws = self.state.workspace
        record = ws.load_run(run_id) if ws is not None else None
        if record is None:
            raise ServeHTTPError(404, f"unknown run {run_id!r}")
        names = list(record.get("names", []))
        keys = [tuple(k) for k in record.get("point_keys", [])]
        states = list(record.get("states", []))
        errors = dict(record.get("errors", {}))
        status = record.get("status", "failed")
        terminal = status in ("done", "failed", "cancelled")
        documents: Dict[str, dict] = {}
        counts = {"total": len(names), "pending": 0, "running": 0,
                  "done": 0, "failed": 0, "cancelled": 0}
        for index, name in enumerate(names):
            state = states[index] if index < len(states) else "pending"
            key = keys[index] if index < len(keys) else None
            doc = ws.load_point(key) if key is not None else None
            if doc is not None:
                # The document on disk is authoritative: a point that
                # completed after the last record write still serves.
                documents[name] = doc
                counts["done"] += 1
                errors.pop(name, None)
            elif terminal and state in counts:
                counts[state] += 1
                if state == "done":
                    # Recorded done but evicted since: say so rather
                    # than serving a hole silently.
                    counts["done"] -= 1
                    counts["failed"] += 1
                    errors[name] = ("document evicted from the "
                                    "workspace")
            else:
                counts["failed"] += 1
                errors.setdefault(
                    name, "interrupted by server restart; resubmit "
                          "to re-execute")
        if not terminal:
            status = "failed" if counts["failed"] else "done"
        doc = {
            "run": run_id,
            "status": status,
            "points": counts,
            "names": names,
            "created_at": record.get("created_at"),
            "archived": True,
            "documents": documents,
        }
        if errors:
            doc["errors"] = errors
        return 200, doc

    # -- streaming --------------------------------------------------------

    def _stream_run(self, run, since: int) -> None:
        """``?stream=1``: chunked NDJSON events until terminal.

        One JSON object per line: the run's completion events as they
        land, then a final summary line with the terminal status.
        """
        sched = self.state.scheduler
        try:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            deadline = time.monotonic() + STREAM_MAX_S
            while True:
                timeout = min(10.0, deadline - time.monotonic())
                events, next_seq, progress = sched.wait_events(
                    run, since, max(timeout, 0.0))
                for event in events:
                    self._write_chunk(
                        (json.dumps(event, sort_keys=True) + "\n"
                         ).encode())
                since = next_seq
                terminal = progress["status"] in ("done", "failed",
                                                  "cancelled")
                if terminal or time.monotonic() >= deadline:
                    summary = {"run": run.id,
                               "status": progress["status"],
                               "points": progress["points"],
                               "next": next_seq}
                    self._write_chunk(
                        (json.dumps(summary, sort_keys=True) + "\n"
                         ).encode())
                    break
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            # The consumer went away mid-stream; a resident server
            # shrugs (but this connection is done).
            self.close_connection = True

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(b"%x\r\n" % len(data))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    # -- JSON plumbing ----------------------------------------------------

    def _read_json(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            self.close_connection = True
            raise ServeHTTPError(400, "bad Content-Length") from None
        if length < 0:
            # A negative length would pass the size check below and
            # turn rfile.read(length) into read-until-EOF, parking the
            # handler thread on a keep-alive connection.
            self.close_connection = True
            raise ServeHTTPError(
                400, f"bad Content-Length {length}")
        if length > MAX_BODY_BYTES:
            # Refused without reading: close the connection so the
            # unread body cannot desync later keep-alive requests.
            self.close_connection = True
            raise ServeHTTPError(
                413, f"body of {length} bytes exceeds "
                     f"{MAX_BODY_BYTES}")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeHTTPError(400, "empty request body")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ServeHTTPError(
                400, f"request body is not JSON: {exc}") from None

    def _reply(self, status: int, doc: Dict[str, object]) -> None:
        payload = (json.dumps(doc, sort_keys=True) + "\n").encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-reply; a resident server shrugs.
            pass


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`ServerState`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 state: Optional[ServerState] = None) -> None:
        super().__init__(address, ServeHandler)
        self.state = state if state is not None else ServerState()

    def close(self) -> None:
        """Stop serving and drain the worker pool."""
        self.state.close()
        self.server_close()


def serve(host: str = "127.0.0.1", port: int = 8642,
          workers: int = 2, queue_limit: int = 64,
          cache_dir: Optional[str] = None,
          out_root: Optional[str] = None,
          executor: str = "process",
          recycle_after: int = 32,
          workspace: Optional[str] = None,
          workspace_ttl_s: float = 7 * 24 * 3600.0,
          workspace_limit_bytes: int = 512 << 20,
          verbose: bool = False) -> ReproServer:
    """Build a ready-to-run server (callers invoke ``serve_forever``)."""
    state = ServerState(workers=workers, queue_limit=queue_limit,
                        cache_dir=cache_dir, out_root=out_root,
                        executor=executor, recycle_after=recycle_after,
                        workspace=workspace,
                        workspace_ttl_s=workspace_ttl_s,
                        workspace_limit_bytes=workspace_limit_bytes,
                        verbose=verbose)
    return ReproServer((host, port), state)


def main(host: str, port: int, workers: int, queue_limit: int,
         cache_dir: Optional[str], verbose: bool,
         out_root: Optional[str] = None,
         executor: str = "process",
         recycle_after: int = 32,
         workspace: Optional[str] = None,
         workspace_ttl_s: float = 7 * 24 * 3600.0,
         workspace_limit_bytes: int = 512 << 20) -> int:
    """The ``repro serve`` entry point: run until interrupted."""
    try:
        server = serve(host=host, port=port, workers=workers,
                       queue_limit=queue_limit, cache_dir=cache_dir,
                       out_root=out_root, executor=executor,
                       recycle_after=recycle_after,
                       workspace=workspace,
                       workspace_ttl_s=workspace_ttl_s,
                       workspace_limit_bytes=workspace_limit_bytes,
                       verbose=verbose)
    except OSError as exc:
        print(f"cannot bind {host}:{port}: {exc}", file=sys.stderr)
        return 2
    bound = server.server_address
    print(f"repro serve: listening on http://{bound[0]}:{bound[1]} "
          f"(workers={workers}, executor={executor}, "
          f"queue_limit={queue_limit}, "
          f"engine={server.state.engine_tier}"
          + (f", workspace={workspace}" if workspace else "")
          + ")", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0
