"""Disk-backed artifact workspace: served results that survive restarts.

With ``repro serve --workspace DIR`` every completed point document
and every run record persists under one server-owned directory, and
the in-memory run table becomes a cache over it: a run retired by the
retention bound -- or completed by a previous server process -- is
still served by ``GET /v1/runs/<id>``, byte-identical, straight from
disk.  The celine digital-twin pattern from SNIPPETS.md, folded into
the serve layer.

Layout (all JSON, all written atomically via temp-file + rename)::

    <root>/scenarios/<scenario-hash>.json   canonical spec + build info
    <root>/points/<scenario>_<config>.json  final servepoint documents,
                                            exact serve byte format
    <root>/runs/<run-id>.json               run records (names, keys,
                                            per-point states, status)

Point documents are content-addressed by ``(scenario-hash,
config-hash)`` -- the same dedup identity the scheduler uses -- so a
resubmitted point after a restart is a *workspace hit*: the entry is
born ``done`` from disk and never touches the queue.

Eviction runs whenever a run record is written: run records older
than ``ttl_s`` go first, then oldest-first until total size fits
``limit_bytes``; point documents and scenario records referenced by
no surviving run are garbage-collected with them.

Trust model: the workspace is operator-owned server state, like the
trace cache -- clients never name workspace paths (run ids are
server-generated and validated against ``run-<digits>`` before any
path is formed), and the directory must not be shared between
concurrently running servers (single-writer; the in-process lock is
the only coordination).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Server-generated run ids are the only accepted file stems.
_RUN_ID_RE = re.compile(r"run-\d{6,}")

#: Scenario/config hashes are 16 lowercase hex chars.
_HASH_RE = re.compile(r"[0-9a-f]{16}")


def _dump_json(doc: object) -> bytes:
    """The serve document byte format (sorted keys, indent 2, LF)."""
    return (json.dumps(doc, sort_keys=True, indent=2) + "\n").encode()


class ArtifactWorkspace:
    """One server's on-disk artifact store (see module docstring)."""

    def __init__(self, root: Path, ttl_s: float = 7 * 24 * 3600.0,
                 limit_bytes: int = 512 << 20) -> None:
        self.root = Path(root).expanduser()
        self.ttl_s = float(ttl_s)
        self.limit_bytes = int(limit_bytes)
        self._lock = threading.Lock()
        for sub in ("scenarios", "points", "runs"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- paths ------------------------------------------------------------

    def _point_path(self, key: Tuple[str, str]) -> Optional[Path]:
        scenario, config = key
        if not (_HASH_RE.fullmatch(str(scenario))
                and _HASH_RE.fullmatch(str(config))):
            return None
        return self.root / "points" / f"{scenario}_{config}.json"

    def _run_path(self, run_id: str) -> Optional[Path]:
        if not _RUN_ID_RE.fullmatch(str(run_id)):
            return None
        return self.root / "runs" / f"{run_id}.json"

    def _scenario_path(self, scenario_hash: str) -> Optional[Path]:
        if not _HASH_RE.fullmatch(str(scenario_hash)):
            return None
        return self.root / "scenarios" / f"{scenario_hash}.json"

    def _write_atomic(self, path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _load_json(path: Path) -> Optional[dict]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) else None

    # -- point documents --------------------------------------------------

    def save_point(self, key: Tuple[str, str], document: dict) -> bool:
        """Persist one completed point document; False when already
        present (content-addressed: the first write wins)."""
        path = self._point_path(key)
        if path is None:
            return False
        with self._lock:
            if path.exists():
                return False
            self._write_atomic(path, _dump_json(document))
            return True

    def load_point(self, key: Tuple[str, str]) -> Optional[dict]:
        path = self._point_path(key)
        if path is None:
            return None
        with self._lock:
            if not path.exists():
                return None
            return self._load_json(path)

    # -- run records ------------------------------------------------------

    def save_run(self, record: Dict[str, object]) -> None:
        path = self._run_path(str(record.get("run", "")))
        if path is None:
            return
        with self._lock:
            self._write_atomic(path, _dump_json(record))

    def load_run(self, run_id: str) -> Optional[dict]:
        path = self._run_path(run_id)
        if path is None:
            return None
        with self._lock:
            if not path.exists():
                return None
            return self._load_json(path)

    def run_ids(self) -> List[str]:
        """Persisted run ids, oldest first by run number."""
        with self._lock:
            stems = [p.stem for p in (self.root / "runs").glob("run-*.json")
                     if _RUN_ID_RE.fullmatch(p.stem)]
        return sorted(stems)

    def max_run_number(self) -> int:
        """The highest persisted run number (0 when none): a restarted
        server resumes its id sequence past everything on disk."""
        best = 0
        for stem in self.run_ids():
            try:
                best = max(best, int(stem.split("-", 1)[1]))
            except ValueError:  # pragma: no cover - filtered by regex
                pass
        return best

    # -- scenario records -------------------------------------------------

    def save_scenario(self, record: Dict[str, object]) -> None:
        path = self._scenario_path(str(record.get("scenario", "")))
        if path is None:
            return
        with self._lock:
            self._write_atomic(path, _dump_json(record))

    def load_scenarios(self) -> List[dict]:
        with self._lock:
            paths = sorted((self.root / "scenarios").glob("*.json"))
            records = [self._load_json(p) for p in paths]
        return [r for r in records if r is not None]

    # -- introspection ----------------------------------------------------

    def usage(self) -> Dict[str, object]:
        """Counts and byte totals for ``/debug/state``."""
        out: Dict[str, object] = {"dir": str(self.root),
                                  "ttl_s": self.ttl_s,
                                  "limit_bytes": self.limit_bytes}
        total = 0
        with self._lock:
            for sub in ("scenarios", "points", "runs"):
                paths = list((self.root / sub).glob("*.json"))
                size = 0
                for p in paths:
                    try:
                        size += p.stat().st_size
                    except OSError:
                        pass
                out[sub] = {"files": len(paths), "bytes": size}
                total += size
        out["bytes"] = total
        return out

    # -- eviction ---------------------------------------------------------

    def evict(self, now: Optional[float] = None) -> int:
        """Apply the TTL + size bound; returns files removed.

        Run records are the eviction unit: expired ones (mtime past
        ``ttl_s``) go first, then oldest-first while the workspace
        exceeds ``limit_bytes``.  Point documents and scenario records
        referenced by no surviving run go with them.
        """
        now = time.time() if now is None else now
        removed = 0
        with self._lock:
            runs: List[Tuple[float, Path, Optional[dict]]] = []
            for path in (self.root / "runs").glob("*.json"):
                try:
                    mtime = path.stat().st_mtime
                except OSError:
                    continue
                runs.append((mtime, path, self._load_json(path)))
            runs.sort(key=lambda item: (item[0], item[1].name))

            survivors: List[Tuple[float, Path, dict]] = []
            doomed: List[Path] = []
            for mtime, path, record in runs:
                if record is None or now - mtime > self.ttl_s:
                    doomed.append(path)
                else:
                    survivors.append((mtime, path, record))

            def total_bytes() -> int:
                size = 0
                for sub in ("scenarios", "points", "runs"):
                    for p in (self.root / sub).glob("*.json"):
                        try:
                            size += p.stat().st_size
                        except OSError:
                            pass
                return size

            for path in doomed:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            removed += self._gc_unreferenced(survivors, now)
            while survivors and total_bytes() > self.limit_bytes:
                _, path, _ = survivors.pop(0)
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
                removed += self._gc_unreferenced(survivors, now)
        return removed

    def _gc_unreferenced(self,
                         survivors: List[Tuple[float, Path, dict]],
                         now: float) -> int:
        """Drop point files no surviving run references, and scenario
        records that are both unreferenced and past the TTL (a built
        scenario stays rehydratable for a full TTL even before any run
        names it)."""
        point_refs = set()
        scenario_refs = set()
        for _, _, record in survivors:
            for pair in record.get("point_keys", []):
                if isinstance(pair, list) and len(pair) == 2:
                    point_refs.add(f"{pair[0]}_{pair[1]}")
                    scenario_refs.add(str(pair[0]))
        removed = 0
        for path in (self.root / "points").glob("*.json"):
            if path.stem not in point_refs:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        for path in (self.root / "scenarios").glob("*.json"):
            if path.stem in scenario_refs:
                continue
            try:
                expired = now - path.stat().st_mtime > self.ttl_s
            except OSError:
                expired = True
            if expired:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
