"""Scenario phase of the serve split: content-hashed trace + setup log.

A *scenario* is the expensive, cacheable half of a simulation request:
one recorded memory trace (packed columns + XMem setup log) identified
by a content hash of its normalized spec.  Building a scenario walks
the workload once -- through the existing memo / disk
:class:`~repro.sim.runner.TraceCache` layers -- after which any number
of cheap parameterized *runs* replay it (see :mod:`repro.serve.jobs`).
This mirrors the paper's own split between semantic registration (atom
setup, once) and use (every access), lifted to service granularity.

Three scenario kinds are accepted:

* ``kernel`` -- a Polybench kernel invocation ``(kernel, n, tile)``;
  runs against it are :class:`~repro.sim.runner.SimPoint` sweeps.
* ``suite``  -- a suite-catalog workload ``(workload, accesses,
  footprint_div)`` recorded as a co-run tenant; runs against it are
  single-tenant :class:`~repro.sim.runner.CorunPoint` mixes.
* ``spec``   -- a declarative :mod:`repro.scenarios` workload/import
  spec, inlined in the request body (the server never reads
  server-side paths); runs against it are
  :class:`~repro.sim.runner.ScenarioPoint` sweeps.

Bodies without an explicit ``kind`` are inferred from their
distinguishing keys (``kernel``/``workload``/``spec``/``phases``/
``format``); a body matching none of them is rejected with a 400
rather than half-parsed against the kernel schema.

Concurrent identical ``POST /v1/scenarios`` requests share one build:
the first requester generates, the rest park on an event and reuse the
result (the ``scenarios_deduped`` counter in ``/debug/state`` counts
the parked requests).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.sim.runner import (
    TraceCache,
    get_recording_with_source,
    get_scenario_recording_with_source,
    get_suite_recording_with_source,
    scenario_trace_key,
    suite_trace_key,
    trace_key,
)

#: How long a parked duplicate request waits for the in-flight build.
BUILD_WAIT_S = 300.0


class ScenarioBuildError(Exception):
    """A scenario build failed (the waiting duplicates get this too)."""


def make_trace_cache(root: Optional[Path],
                     disabled: bool = False) -> TraceCache:
    """One fresh :class:`TraceCache` with the server's configured root.

    Fresh per request/job on purpose: the hit/miss counters that land
    in manifests and ``/debug/state`` stay scoped to one request
    instead of accumulating (and racing) across the server's lifetime.
    """
    cache = TraceCache(root)
    if disabled:
        cache.root = None
    return cache


@dataclass(frozen=True)
class ScenarioSpec:
    """One normalized scenario request.

    ``workload``/``n``/``tile`` hold ``(kernel, n, tile)`` for kernel
    scenarios and ``(workload, accesses, footprint_div)`` for suite
    scenarios -- the same field-reuse discipline as
    :func:`~repro.sim.runner.suite_trace_key`.  ``spec`` scenarios
    carry their canonical compact JSON in ``spec`` (``workload`` holds
    the declared name; ``n``/``tile`` are 0).
    """

    kind: str
    workload: str
    n: int
    tile: int
    spec: Optional[str] = None

    @classmethod
    def from_request(cls, body: object) -> "ScenarioSpec":
        """Validate and normalize one request body (raises
        :class:`ConfigurationError` -- an HTTP 400 -- on anything
        malformed)."""
        if not isinstance(body, dict):
            raise ConfigurationError(
                f"scenario request must be a JSON object, "
                f"got {type(body).__name__}")
        kind = body.get("kind")
        if kind is None:
            # Infer from the distinguishing keys; a body matching none
            # of them is rejected outright instead of half-parsing
            # against the kernel schema (which used to turn a typo'd
            # spec body into a baffling "unknown kernel None").
            if ("spec" in body or "phases" in body
                    or "format" in body):
                kind = "spec"
            elif "workload" in body:
                kind = "suite"
            elif "kernel" in body:
                kind = "kernel"
            else:
                raise ConfigurationError(
                    "cannot infer scenario kind: give 'kind' "
                    "explicitly, or one of the distinguishing keys "
                    "'kernel' / 'workload' / 'spec' / 'phases' / "
                    "'format'")
        elif kind in ("workload", "import"):
            # A repro.scenarios spec body pasted in directly, its own
            # kind field intact.
            kind = "spec"
        if kind == "spec":
            from repro.scenarios.spec import (
                canonical_json,
                canonicalize,
            )
            if "spec" in body:
                unknown = sorted(set(body) - {"kind", "spec"})
                if unknown:
                    raise ConfigurationError(
                        f"unknown spec-scenario keys {unknown}; "
                        f"allowed: ['kind', 'spec']")
                raw = body["spec"]
            else:
                # The spec fields inline in the scenario body.
                raw = {k: v for k, v in body.items() if k != "kind"}
            # canonicalize raises ScenarioError (a ConfigurationError
            # subclass) on unknown fields at any level -> HTTP 400.
            canonical = canonicalize(raw)
            return cls(kind="spec", workload=canonical["name"], n=0,
                       tile=0, spec=canonical_json(canonical))
        if kind == "kernel":
            allowed = {"kind", "kernel", "n", "tile"}
            unknown = sorted(set(body) - allowed)
            if unknown:
                raise ConfigurationError(
                    f"unknown kernel-scenario keys {unknown}; "
                    f"allowed: {sorted(allowed)}")
            from repro.workloads.polybench import KERNELS
            kernel = body.get("kernel")
            if kernel not in KERNELS:
                raise ConfigurationError(
                    f"unknown kernel {kernel!r}; "
                    f"choices: {sorted(KERNELS)}")
            n = _positive_int(body.get("n", 96), "n")
            tile = _positive_int(body.get("tile", n), "tile")
            return cls(kind="kernel", workload=kernel, n=n, tile=tile)
        if kind == "suite":
            allowed = {"kind", "workload", "accesses", "footprint_div"}
            unknown = sorted(set(body) - allowed)
            if unknown:
                raise ConfigurationError(
                    f"unknown suite-scenario keys {unknown}; "
                    f"allowed: {sorted(allowed)}")
            from repro.workloads.suite import BY_NAME
            workload = body.get("workload")
            if workload not in BY_NAME:
                raise ConfigurationError(
                    f"unknown suite workload {workload!r}; "
                    f"choices: {sorted(BY_NAME)}")
            accesses = _positive_int(body.get("accesses", 4000),
                                     "accesses")
            div = _positive_int(body.get("footprint_div", 1),
                                "footprint_div")
            return cls(kind="suite", workload=workload, n=accesses,
                       tile=div)
        raise ConfigurationError(
            f"unknown scenario kind {kind!r}; "
            f"choices: kernel, suite, spec")

    def canonical(self) -> Dict[str, object]:
        """The normalized, kind-specific spec (what gets hashed)."""
        if self.kind == "spec":
            return json.loads(self.spec)
        if self.kind == "kernel":
            return {"kind": "kernel", "kernel": self.workload,
                    "n": self.n, "tile": self.tile}
        return {"kind": "suite", "workload": self.workload,
                "accesses": self.n, "footprint_div": self.tile}

    def display(self) -> Dict[str, object]:
        """The canonical spec, safe for listings.

        An import spec's canonical form embeds the whole trace text;
        the scenario-listing endpoints replace it with a size
        placeholder (the sha256 stays, so provenance is intact).
        """
        canonical = self.canonical()
        if self.kind == "spec" and canonical.get("kind") == "import":
            text = canonical["text"]
            canonical = dict(canonical)
            canonical["text"] = f"<{len(text)} chars inlined>"
        return canonical

    @property
    def scenario_hash(self) -> str:
        """Content hash identifying this scenario (16 hex chars)."""
        payload = json.dumps(self.canonical(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def trace_cache_key(self) -> str:
        """The underlying trace-cache key the build populates."""
        if self.kind == "spec":
            return scenario_trace_key(self.scenario_hash)
        if self.kind == "kernel":
            return trace_key(self.workload, self.n, self.tile, True)
        return suite_trace_key(self.workload, self.n, self.tile)

    def build(self, cache: TraceCache):
        """Generate (or fetch) the recording; returns
        ``(recording, source)``."""
        if self.kind == "spec":
            return get_scenario_recording_with_source(
                self.spec, cache=cache)
        if self.kind == "kernel":
            return get_recording_with_source(
                self.workload, self.n, self.tile, cache=cache)
        return get_suite_recording_with_source(
            self.workload, self.n, self.tile, cache=cache)


def _positive_int(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"{name} must be a positive integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0: {value}")
    return value


@dataclass
class ScenarioEntry:
    """Metadata of one built scenario.

    Deliberately does *not* hold the recording itself: recordings run
    to millions of events and live in the bounded in-process memo plus
    the on-disk trace cache.  Holding them here would reintroduce the
    unbounded-RSS bug class this PR's sweep fixes.
    """

    spec: ScenarioSpec
    hash: str
    trace_key: str
    source: str
    events: int
    setup_calls: int
    build_wall_s: float
    created_at: float
    cache_counters: Dict[str, int]

    def summary(self) -> Dict[str, object]:
        """The JSON view returned by the scenario endpoints."""
        return {
            "scenario": self.hash,
            "spec": self.spec.display(),
            "trace": {
                "key": self.trace_key,
                "source": self.source,
                "events": self.events,
                "setup_calls": self.setup_calls,
                "cache": dict(self.cache_counters),
            },
            "build_wall_s": round(self.build_wall_s, 6),
            "created_at": self.created_at,
        }


def scenario_record(entry: ScenarioEntry) -> Dict[str, object]:
    """The workspace persistence form of one built scenario.

    ``canonical`` is the full normalized spec (import specs keep their
    inlined trace text -- :meth:`ScenarioSpec.display` would truncate
    it), so :func:`entry_from_record` can round-trip the record back
    through :meth:`ScenarioSpec.from_request` after a restart.
    """
    return {
        "scenario": entry.hash,
        "canonical": entry.spec.canonical(),
        "trace_key": entry.trace_key,
        "source": entry.source,
        "events": entry.events,
        "setup_calls": entry.setup_calls,
        "build_wall_s": entry.build_wall_s,
        "created_at": entry.created_at,
        "cache_counters": dict(entry.cache_counters),
    }


def entry_from_record(record: Dict[str, object]
                      ) -> Optional[ScenarioEntry]:
    """Rebuild a :class:`ScenarioEntry` from its workspace record.

    Returns None -- never raises -- on anything that does not round-trip
    to the recorded hash: a stale or hand-edited record must not keep a
    server from booting, and must not register under a hash its spec
    no longer produces.
    """
    try:
        spec = ScenarioSpec.from_request(record["canonical"])
        if spec.scenario_hash != record["scenario"]:
            return None
        return ScenarioEntry(
            spec=spec,
            hash=spec.scenario_hash,
            trace_key=spec.trace_cache_key,
            source="workspace",
            events=int(record["events"]),
            setup_calls=int(record["setup_calls"]),
            build_wall_s=float(record["build_wall_s"]),
            created_at=float(record["created_at"]),
            cache_counters=dict(record.get("cache_counters", {})),
        )
    except (ConfigurationError, KeyError, TypeError, ValueError):
        return None


class ScenarioStore:
    """The scenario registry: build-once semantics under concurrency.

    ``get_or_build`` is the only mutation path for *new* builds; the
    first requester of a hash builds, concurrent requesters of the same
    hash wait on the builder's event instead of generating the trace a
    second time.  ``rehydrate`` seeds entries recovered from a
    workspace at boot (their traces regenerate lazily through the
    normal cache layers when a run first needs them).  ``on_built``,
    when set, observes every fresh build -- the workspace persistence
    hook.
    """

    def __init__(self, cache_root: Optional[Path] = None,
                 cache_disabled: bool = False,
                 on_built=None) -> None:
        self.cache_root = cache_root
        self.cache_disabled = cache_disabled
        self.on_built = on_built
        self._lock = threading.Lock()
        self._entries: Dict[str, ScenarioEntry] = {}
        self._building: Dict[str, threading.Event] = {}
        self._errors: Dict[str, str] = {}

    def rehydrate(self, entry: ScenarioEntry) -> bool:
        """Register a recovered entry; False when the hash is taken."""
        with self._lock:
            if entry.hash in self._entries:
                return False
            self._entries[entry.hash] = entry
            return True

    def new_cache(self) -> TraceCache:
        """A fresh per-request trace cache on the server's root."""
        return make_trace_cache(self.cache_root, self.cache_disabled)

    def get(self, scenario_hash: str) -> Optional[ScenarioEntry]:
        """One built scenario by hash, or None."""
        with self._lock:
            return self._entries.get(scenario_hash)

    def summaries(self) -> Dict[str, Dict[str, object]]:
        """All built scenarios (the ``GET /v1/scenarios`` listing)."""
        with self._lock:
            return {h: e.summary() for h, e in
                    sorted(self._entries.items())}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_build(self, spec: ScenarioSpec, stats
                     ) -> Tuple[ScenarioEntry, bool, bool]:
        """The entry for ``spec``: ``(entry, created, deduped)``.

        ``created`` is True for the request that performed the build;
        ``deduped`` is True for a request that parked behind an
        in-flight identical build.  ``stats`` is the server's
        :class:`~repro.serve.jobs.ServeStats`.
        """
        h = spec.scenario_hash
        with self._lock:
            entry = self._entries.get(h)
            if entry is not None:
                stats.bump("scenarios_cached")
                return entry, False, False
            event = self._building.get(h)
            if event is None:
                event = threading.Event()
                self._building[h] = event
                self._errors.pop(h, None)
                builder = True
            else:
                builder = False
        if not builder:
            stats.bump("scenarios_deduped")
            if not event.wait(BUILD_WAIT_S):
                raise ScenarioBuildError(
                    f"timed out waiting for in-flight build of {h}")
            with self._lock:
                entry = self._entries.get(h)
                error = self._errors.get(h)
            if entry is None:
                raise ScenarioBuildError(
                    error or f"in-flight build of {h} failed")
            return entry, False, True
        try:
            cache = self.new_cache()
            t0 = time.perf_counter()
            recording, source = spec.build(cache)
            entry = ScenarioEntry(
                spec=spec,
                hash=h,
                trace_key=spec.trace_cache_key,
                source=source,
                events=len(recording.packed),
                setup_calls=len(recording.setup),
                build_wall_s=time.perf_counter() - t0,
                created_at=time.time(),
                cache_counters=cache.counters(),
            )
            with self._lock:
                self._entries[h] = entry
            stats.bump("scenarios_built")
            if self.on_built is not None:
                try:
                    self.on_built(entry)
                except OSError:
                    # Persistence is best-effort: a full disk must not
                    # fail the build that already succeeded in memory.
                    pass
            return entry, True, False
        except Exception as exc:
            with self._lock:
                self._errors[h] = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            with self._lock:
                self._building.pop(h, None)
            event.set()
