"""Run phase of the serve split: bounded queue, dedup, worker threads.

A *run* schedules sweep points against built scenarios.  Each point is
``(scenario-hash, config-hash)``; identical points -- whether inside
one request or across concurrent requests -- share a single execution
through the point dedup table (the ``points_deduped`` counter in
``/debug/state``).  Points flow through one bounded FIFO queue into a
small pool of worker threads, each of which executes
:func:`repro.sim.runner.run_any_point` with ``collect=True`` and a
fresh per-job :class:`~repro.sim.runner.TraceCache`, producing exactly
the manifest+stats JSON document ``repro sweep --stats-json`` writes
(re-tagged ``kind: servepoint``), so served output is held to the CLI
output by the ``repro diff`` gate.

Bounded everywhere: the queue rejects submissions past
``queue_limit`` (HTTP 429), and completed runs/points are retired
oldest-first past the retention limits -- a long-lived server must not
grow RSS with its request history.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.serve.scenarios import ScenarioEntry, ScenarioStore
from repro.sim.runner import (
    SYSTEM_BUILDERS,
    CorunPoint,
    ScenarioPoint,
    SimPoint,
    point_document,
    point_document_name,
    run_any_point,
)

#: Completed runs retained for ``GET /v1/runs/<id>`` (oldest retired
#: first; their documents go with them unless another live run shares
#: the point).
RUN_RETENTION = 64


class QueueFullError(Exception):
    """The bounded work queue cannot take this submission (HTTP 429)."""


@dataclass
class ServeStats:
    """Server counters, exposed as the ``serve`` stat group.

    Follows the repo-wide StatGroup protocol
    (:func:`repro.core.stats.stat_values`), so the same object feeds
    ``/debug/state`` and any registry that wants to mount it.
    """

    requests: int = 0
    scenarios_built: int = 0
    scenarios_cached: int = 0
    scenarios_deduped: int = 0
    runs_submitted: int = 0
    runs_completed: int = 0
    runs_cancelled: int = 0
    points_submitted: int = 0
    points_deduped: int = 0
    points_executed: int = 0
    points_failed: int = 0
    queue_rejections: int = 0
    bad_requests: int = 0
    not_found: int = 0
    internal_errors: int = 0

    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def bump(self, name: str, by: int = 1) -> None:
        """Increment one counter (handler threads race; stay exact)."""
        with self._lock:
            setattr(self, name, getattr(self, name) + by)

    def stat_groups(self):
        """StatGroup protocol (registers as ``serve``)."""
        yield "serve", self


# ---------------------------------------------------------------------------
# Run configs -> points
# ---------------------------------------------------------------------------

_KERNEL_CONFIG_KEYS = ("scale", "llc_bytes", "bandwidth", "systems")
_SUITE_CONFIG_KEYS = ("scale", "xmem_tenants", "modes")


def normalize_config(entry: ScenarioEntry, config: object
                     ) -> Dict[str, object]:
    """Validate one run config against its scenario's kind.

    Returns the fully defaulted, canonically ordered config dict (what
    gets hashed); raises :class:`ConfigurationError` -- HTTP 400 -- on
    anything malformed.  The engine tier is deliberately *not* a
    per-run knob: ``REPRO_ENGINE`` is process-wide and fixed at server
    start, so every served document carries the server's tier.
    """
    if config is None:
        config = {}
    if not isinstance(config, dict):
        raise ConfigurationError(
            f"run config must be a JSON object, "
            f"got {type(config).__name__}")
    # Spec scenarios run as ScenarioPoint sweeps: same machine knobs
    # as kernel scenarios.
    kernel_like = entry.spec.kind in ("kernel", "spec")
    allowed = (_KERNEL_CONFIG_KEYS if kernel_like
               else _SUITE_CONFIG_KEYS)
    unknown = sorted(set(config) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown {entry.spec.kind}-run config keys {unknown}; "
            f"allowed: {sorted(allowed)}")
    scale = config.get("scale", 32)
    if isinstance(scale, bool) or not isinstance(scale, int) or scale <= 0:
        raise ConfigurationError(
            f"scale must be a positive integer, got {scale!r}")
    if kernel_like:
        llc = config.get("llc_bytes")
        if llc is not None and (isinstance(llc, bool)
                                or not isinstance(llc, int) or llc <= 0):
            raise ConfigurationError(
                f"llc_bytes must be a positive integer or null, "
                f"got {llc!r}")
        bandwidth = config.get("bandwidth", 1.0)
        if (isinstance(bandwidth, bool)
                or not isinstance(bandwidth, (int, float))
                or bandwidth <= 0):
            raise ConfigurationError(
                f"bandwidth must be a positive number, "
                f"got {bandwidth!r}")
        systems = config.get("systems", ["baseline", "xmem"])
        if (not isinstance(systems, list) or not systems
                or not all(isinstance(s, str) for s in systems)):
            raise ConfigurationError(
                f"systems must be a non-empty list of names, "
                f"got {systems!r}")
        bad = [s for s in systems if s not in SYSTEM_BUILDERS]
        if bad:
            raise ConfigurationError(
                f"unknown systems {bad}; "
                f"choices: {sorted(SYSTEM_BUILDERS)}")
        return {"scale": scale, "llc_bytes": llc,
                "bandwidth": float(bandwidth),
                "systems": list(systems)}
    modes = config.get("modes", ["baseline", "xmem"])
    if (not isinstance(modes, list) or not modes
            or any(m not in ("baseline", "xmem") for m in modes)):
        raise ConfigurationError(
            f"modes must be a non-empty list drawn from "
            f"['baseline', 'xmem'], got {modes!r}")
    xmem_tenants = config.get("xmem_tenants", [0])
    if (not isinstance(xmem_tenants, list)
            or not all(isinstance(i, int) and not isinstance(i, bool)
                       for i in xmem_tenants)):
        raise ConfigurationError(
            f"xmem_tenants must be a list of core indices, "
            f"got {xmem_tenants!r}")
    if any(i != 0 for i in xmem_tenants):
        # A suite scenario is one tenant; core 0 is the only index.
        raise ConfigurationError(
            f"xmem_tenants {xmem_tenants} outside the 1-tenant mix")
    return {"scale": scale, "modes": list(modes),
            "xmem_tenants": list(xmem_tenants)}


def config_hash(config: Dict[str, object]) -> str:
    """Content hash of one normalized run config (16 hex chars)."""
    payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def build_point(entry: ScenarioEntry, config: Dict[str, object]):
    """The runnable point for (scenario, normalized config)."""
    spec = entry.spec
    if spec.kind == "spec":
        return ScenarioPoint(
            spec_json=spec.spec, scale=config["scale"],
            llc_bytes=config["llc_bytes"],
            bandwidth=config["bandwidth"],
            systems=tuple(config["systems"]),
        )
    if spec.kind == "kernel":
        return SimPoint(
            kernel=spec.workload, n=spec.n, tile=spec.tile,
            scale=config["scale"], llc_bytes=config["llc_bytes"],
            bandwidth=config["bandwidth"],
            systems=tuple(config["systems"]),
        )
    return CorunPoint(
        tenants=(spec.workload,), accesses=spec.n,
        footprint_div=spec.tile, scale=config["scale"],
        xmem_tenants=tuple(config["xmem_tenants"]),
        modes=tuple(config["modes"]),
    )


class _NamedResult:
    """The ``.point``-only shim :func:`point_document_name` needs."""

    def __init__(self, point) -> None:
        self.point = point


# ---------------------------------------------------------------------------
# Point and run records
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class PointEntry:
    """One deduplicated unit of work: (scenario-hash, config-hash).

    Entries compare by identity (``eq=False``): the point table maps
    each key to its *latest* entry, but every run also keeps direct
    references to the entries it was submitted with.  A failed or
    cancelled entry is terminal forever -- a later submission of the
    same key builds a *fresh* entry rather than mutating this one, so
    completed runs never see their history rewritten by a retry.
    """

    key: Tuple[str, str]
    point: object
    state: str = "pending"    # -> running -> done | failed | cancelled
    document: Optional[dict] = None
    error: Optional[str] = None
    wall_s: float = 0.0
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")


@dataclass
class RunHandle:
    """One submitted run: an ordered list of (possibly shared) points.

    ``entries`` pins the exact :class:`PointEntry` objects this run
    was submitted against; progress and documents are read from those,
    never from the point table, so retries of the same key by later
    runs cannot change this run's story.
    """

    id: str
    point_keys: List[Tuple[str, str]]
    entries: List[PointEntry]
    names: List[str]
    out_dir: Optional[Path]
    created_at: float
    new: int = 0
    deduped: int = 0
    cancelled: bool = False
    written: Optional[int] = None


class RunScheduler:
    """The bounded work queue and its worker threads.

    One instance per server.  ``submit`` deduplicates against the
    point table and enqueues only new work; workers drain the queue
    FIFO.  ``workers=0`` is the inspection mode used by tests: points
    stay pending until a worker exists.
    """

    def __init__(self, store: ScenarioStore, stats: ServeStats,
                 workers: int = 2, queue_limit: int = 64) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0: {workers}")
        if queue_limit <= 0:
            raise ConfigurationError(
                f"queue_limit must be > 0: {queue_limit}")
        self.store = store
        self.stats = stats
        self.queue_limit = queue_limit
        self._queue: "queue.Queue[Optional[PointEntry]]" = queue.Queue()
        self._lock = threading.Lock()
        self._points: Dict[Tuple[str, str], PointEntry] = {}
        self._runs: Dict[str, RunHandle] = {}
        self._run_order: List[str] = []
        self._next_run = 1
        self._pending = 0
        self._stop = threading.Event()
        self._workers: List[threading.Thread] = []
        self._worker_info: List[Dict[str, object]] = []
        for i in range(workers):
            info: Dict[str, object] = {"name": f"worker-{i}",
                                       "executed": 0, "failed": 0,
                                       "current": None}
            thread = threading.Thread(target=self._worker_loop,
                                      args=(info,),
                                      name=f"repro-serve-{i}",
                                      daemon=True)
            self._worker_info.append(info)
            self._workers.append(thread)
            thread.start()

    # -- Submission -------------------------------------------------------

    def submit(self, points: List[Tuple[ScenarioEntry,
                                        Dict[str, object]]],
               out_dir: Optional[Path] = None) -> RunHandle:
        """Schedule one run over ``points``; returns its handle.

        ``points`` is an ordered list of (scenario entry, normalized
        config).  New (scenario, config) pairs enqueue; already known
        *live* pairs -- pending, running, or done -- are shared and
        counted as ``points_deduped``.  A key whose latest entry is
        terminal-unsuccessful (failed or cancelled) is rebuilt and
        re-enqueued: deduping onto a dead entry would park the new run
        in ``queued`` forever with nothing in the queue.  Raises
        :class:`QueueFullError` when the new work would push the queue
        past its bound.
        """
        keys: List[Tuple[str, str]] = []
        names: List[str] = []
        entries: List[PointEntry] = []
        with self._lock:
            fresh: List[PointEntry] = []
            fresh_by_key: Dict[Tuple[str, str], PointEntry] = {}
            for index, (entry, config) in enumerate(points):
                key = (entry.hash, config_hash(config))
                point = build_point(entry, config)
                keys.append(key)
                names.append(point_document_name(index,
                                                 _NamedResult(point)))
                if key in fresh_by_key:
                    self.stats.bump("points_deduped")
                    entries.append(fresh_by_key[key])
                    continue
                known = self._points.get(key)
                if known is not None and known.state not in (
                        "failed", "cancelled"):
                    self.stats.bump("points_deduped")
                    entries.append(known)
                    continue
                pe = PointEntry(key=key, point=point)
                fresh_by_key[key] = pe
                fresh.append(pe)
                entries.append(pe)
            if self._pending + len(fresh) > self.queue_limit:
                self.stats.bump("queue_rejections")
                raise QueueFullError(
                    f"queue full: {self._pending} pending + "
                    f"{len(fresh)} new > limit {self.queue_limit}")
            run = RunHandle(
                id=f"run-{self._next_run:06d}",
                point_keys=keys,
                entries=entries,
                names=names,
                out_dir=out_dir,
                created_at=time.time(),
                new=len(fresh),
                deduped=len(keys) - len(fresh),
            )
            self._next_run += 1
            self._runs[run.id] = run
            self._run_order.append(run.id)
            for pe in fresh:
                self._points[pe.key] = pe
                self._pending += 1
            self.stats.bump("runs_submitted")
            self.stats.bump("points_submitted", len(keys))
            self._retire_locked()
        for pe in fresh:
            self._queue.put(pe)
        return run

    def cancel(self, run_id: str) -> bool:
        """Mark a run cancelled; pending points referenced only by
        cancelled runs are skipped by the workers."""
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                return False
            if run.cancelled:
                return True
            run.cancelled = True
            self.stats.bump("runs_cancelled")
            # A pending point survives iff some live run still wants
            # this exact entry (identity, not key: a later retry owns
            # a different entry).
            wanted = set()
            for other in self._runs.values():
                if not other.cancelled:
                    wanted.update(id(e) for e in other.entries)
            for pe in run.entries:
                if pe.state == "pending" and id(pe) not in wanted:
                    pe.state = "cancelled"
                    pe.error = f"cancelled by {run_id}"
                    pe.done.set()
                    self._pending -= 1
        return True

    # -- Introspection ----------------------------------------------------

    def get_run(self, run_id: str) -> Optional[RunHandle]:
        with self._lock:
            return self._runs.get(run_id)

    def run_progress(self, run: RunHandle) -> Dict[str, object]:
        """Counts-by-state plus overall status for one run.

        A run with every point terminal is never ``queued`` -- there is
        nothing left in the queue that could advance it, so reporting
        ``queued`` would promise progress that cannot come.
        """
        counts = {"total": len(run.entries), "pending": 0,
                  "running": 0, "done": 0, "failed": 0, "cancelled": 0}
        with self._lock:
            for pe in run.entries:
                counts[pe.state] += 1
        terminal = (counts["done"] + counts["failed"]
                    + counts["cancelled"])
        if run.cancelled:
            status = "cancelled"
        elif counts["done"] == counts["total"]:
            status = "done"
        elif terminal == counts["total"]:
            status = "failed" if counts["failed"] else "cancelled"
        elif counts["running"] or terminal:
            status = "running"
        else:
            status = "queued"
        return {"status": status, "points": counts}

    def run_documents(self, run: RunHandle
                      ) -> Tuple[Dict[str, dict], Dict[str, str]]:
        """``(documents, errors)`` keyed by per-point document name."""
        docs: Dict[str, dict] = {}
        errors: Dict[str, str] = {}
        with self._lock:
            for name, pe in zip(run.names, run.entries):
                if pe.state == "done":
                    docs[name] = pe.document
                elif pe.state in ("failed", "cancelled"):
                    errors[name] = pe.error or pe.state
        return docs, errors

    def queue_depth(self) -> int:
        with self._lock:
            return self._pending

    def worker_report(self) -> List[Dict[str, object]]:
        """Liveness and activity of every worker (``/debug/state``)."""
        report = []
        for thread, info in zip(self._workers, self._worker_info):
            with self._lock:
                snap = dict(info)
            snap["alive"] = thread.is_alive()
            report.append(snap)
        return report

    def workers_alive(self) -> int:
        return sum(1 for t in self._workers if t.is_alive())

    @property
    def configured_workers(self) -> int:
        return len(self._workers)

    def runs_summary(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            ids = list(self._run_order)
        out = {}
        for run_id in ids:
            run = self.get_run(run_id)
            if run is None:
                continue
            progress = self.run_progress(run)
            progress["created_at"] = run.created_at
            out[run_id] = progress
        return out

    def run_count(self) -> int:
        with self._lock:
            return len(self._runs)

    # -- Worker machinery -------------------------------------------------

    def _worker_loop(self, info: Dict[str, object]) -> None:
        while not self._stop.is_set():
            try:
                pe = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if pe is None:
                break
            with self._lock:
                if pe.state != "pending":
                    continue
                pe.state = "running"
                self._pending -= 1
                info["current"] = pe.key
            self._execute(pe, info)
            with self._lock:
                info["current"] = None

    def _execute(self, pe: PointEntry, info: Dict[str, object]) -> None:
        t0 = time.perf_counter()
        try:
            result = run_any_point(pe.point, cache=self.store.new_cache(),
                                   collect=True)
            doc = point_document(result)
            manifest = doc["manifest"]
            manifest["serve"] = {
                "scenario": pe.key[0],
                "config_hash": pe.key[1],
                "base_kind": manifest["kind"],
            }
            manifest["kind"] = "servepoint"
            with self._lock:
                pe.document = doc
                pe.wall_s = time.perf_counter() - t0
                pe.state = "done"
            self.stats.bump("points_executed")
            info["executed"] = int(info["executed"]) + 1
        except Exception as exc:
            with self._lock:
                pe.error = f"{type(exc).__name__}: {exc}"
                pe.wall_s = time.perf_counter() - t0
                pe.state = "failed"
            self.stats.bump("points_failed")
            info["failed"] = int(info["failed"]) + 1
        finally:
            pe.done.set()
            self._maybe_complete(pe)

    def _maybe_complete(self, pe: PointEntry) -> None:
        """Count runs that just finished; write their out_dir docs."""
        to_write: List[RunHandle] = []
        with self._lock:
            for run in self._runs.values():
                if run.cancelled or pe not in run.entries:
                    continue
                if any(not e.finished for e in run.entries):
                    continue
                if run.written is None:
                    self.stats.bump("runs_completed")
                    run.written = -1   # claimed; actual count follows
                    to_write.append(run)
        for run in to_write:
            run.written = self._write_documents(run)

    def _write_documents(self, run: RunHandle) -> int:
        """Persist a completed run's documents to its ``out_dir``.

        Byte-for-byte the :func:`repro.sim.runner.
        write_point_documents` format (sorted keys, indent 2, trailing
        newline), so ``repro diff`` can gate a served directory against
        a CLI sweep directly.
        """
        if run.out_dir is None:
            return 0
        docs, _ = self.run_documents(run)
        run.out_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for name in run.names:
            doc = docs.get(name)
            if doc is None:
                continue
            with open(run.out_dir / name, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, indent=2)
                fh.write("\n")
            written += 1
        return written

    def _retire_locked(self) -> None:
        """Drop the oldest completed runs past the retention bound."""
        while len(self._run_order) > RUN_RETENTION:
            oldest = self._run_order[0]
            run = self._runs[oldest]
            unfinished = any(not e.finished for e in run.entries)
            if unfinished and not run.cancelled:
                break
            self._run_order.pop(0)
            del self._runs[oldest]
            wanted = set()
            for other in self._runs.values():
                wanted.update(other.point_keys)
            for key in run.point_keys:
                if key not in wanted and key in self._points:
                    pe = self._points[key]
                    if pe.finished:
                        del self._points[key]

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers (drain signal + join)."""
        self._stop.set()
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout)
