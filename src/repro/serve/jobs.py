"""Run phase of the serve split: bounded queue, dedup, worker pool.

A *run* schedules sweep points against built scenarios.  Each point is
``(scenario-hash, config-hash)``; identical points -- whether inside
one request or across concurrent requests -- share a single execution
through the point dedup table (the ``points_deduped`` counter in
``/debug/state``).  Points flow through one bounded FIFO queue into a
pool of workers, producing exactly the manifest+stats JSON document
``repro sweep --stats-json`` writes (re-tagged ``kind: servepoint``),
so served output is held to the CLI output by the ``repro diff`` gate.

Two executors:

* ``process`` (the default) -- each scheduler worker thread owns one
  import-warm :class:`~repro.serve.pool.WorkerProcess`; points execute
  truly in parallel (CPU-bound replays no longer serialize behind the
  GIL), a crashed worker fails only its point, cancel of an in-flight
  point terminates the child and frees the slot immediately, and
  children are recycled after ``recycle_after`` jobs to cap RSS.
  Per-run ``engine`` overrides ride the job message and scope
  ``REPRO_ENGINE`` inside the child.
* ``thread`` -- the PR 8 in-process path, kept as the measured
  baseline (see ``benchmarks/results/serve_throughput.txt``) and for
  environments where spawning processes is unwanted.  No in-flight
  cancel, no per-run engine (``REPRO_ENGINE`` is process-wide here).

Progress is observable incrementally: every run keeps an append-only
completion-ordered event list, long-polled via ``GET
/v1/runs/<id>?since=<counter>`` (:meth:`RunScheduler.wait_events`).

Bounded everywhere: the queue rejects submissions past
``queue_limit`` (HTTP 429), and completed runs/points are retired
oldest-first past the retention limits -- a long-lived server must not
grow RSS with its request history.  With a workspace attached
(``--workspace``), retirement is eviction from a cache: completed
point documents and run records persist to disk first, and
resubmitted points are served straight from the workspace
(``workspace_hits``).
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import ConfigurationError
from repro.cpu.tiers import ENGINE_TIERS
from repro.serve.pool import WorkerProcess
from repro.serve.scenarios import ScenarioEntry, ScenarioStore
from repro.serve.workspace import ArtifactWorkspace
from repro.sim.runner import (
    SYSTEM_BUILDERS,
    CorunPoint,
    ScenarioPoint,
    SimPoint,
    point_document,
    point_document_name,
    run_any_point,
)

#: Completed runs retained in memory for ``GET /v1/runs/<id>``
#: (oldest retired first; with a workspace attached they remain
#: servable from disk, otherwise their documents go with them unless
#: another live run shares the point).
RUN_RETENTION = 64


class QueueFullError(Exception):
    """The bounded work queue cannot take this submission (HTTP 429)."""


@dataclass
class ServeStats:
    """Server counters, exposed as the ``serve`` stat group.

    Follows the repo-wide StatGroup protocol
    (:func:`repro.core.stats.stat_values`), so the same object feeds
    ``/debug/state`` and any registry that wants to mount it.
    """

    requests: int = 0
    scenarios_built: int = 0
    scenarios_cached: int = 0
    scenarios_deduped: int = 0
    runs_submitted: int = 0
    runs_completed: int = 0
    runs_cancelled: int = 0
    points_submitted: int = 0
    points_deduped: int = 0
    points_dispatched: int = 0
    points_executed: int = 0
    points_failed: int = 0
    points_cancelled_running: int = 0
    workers_recycled: int = 0
    workers_crashed: int = 0
    workspace_hits: int = 0
    workspace_writes: int = 0
    workspace_evictions: int = 0
    queue_rejections: int = 0
    bad_requests: int = 0
    not_found: int = 0
    internal_errors: int = 0

    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def bump(self, name: str, by: int = 1) -> None:
        """Increment one counter (handler threads race; stay exact)."""
        with self._lock:
            setattr(self, name, getattr(self, name) + by)

    def stat_groups(self):
        """StatGroup protocol (registers as ``serve``)."""
        yield "serve", self


# ---------------------------------------------------------------------------
# Run configs -> points
# ---------------------------------------------------------------------------

_KERNEL_CONFIG_KEYS = ("scale", "llc_bytes", "bandwidth", "systems",
                       "engine")
_SUITE_CONFIG_KEYS = ("scale", "xmem_tenants", "modes", "engine")


def _normalize_engine(config: dict) -> Optional[str]:
    """The validated per-run engine tier, or None for the server's."""
    engine = config.get("engine")
    if engine is None:
        return None
    if not isinstance(engine, str):
        raise ConfigurationError(
            f"engine must be a tier name string, got {engine!r}")
    engine = engine.strip()
    if engine not in ENGINE_TIERS:
        raise ConfigurationError(
            f"unknown engine tier {engine!r}; "
            f"choices: {list(ENGINE_TIERS)}")
    return engine


def normalize_config(entry: ScenarioEntry, config: object
                     ) -> Dict[str, object]:
    """Validate one run config against its scenario's kind.

    Returns the fully defaulted, canonically ordered config dict (what
    gets hashed); raises :class:`ConfigurationError` -- HTTP 400 -- on
    anything malformed.  ``engine`` selects the engine tier for
    exactly this run (validated against
    :data:`repro.cpu.tiers.ENGINE_TIERS`); ``null``/omitted means the
    server's process-wide tier.  The override is part of the hashed
    config, so the same machine knobs on two tiers are two distinct
    points.  It requires the process executor -- the worker child
    scopes ``REPRO_ENGINE`` around the one job it runs -- and is
    rejected at submission under ``--executor thread``, where the
    variable is process-wide.
    """
    if config is None:
        config = {}
    if not isinstance(config, dict):
        raise ConfigurationError(
            f"run config must be a JSON object, "
            f"got {type(config).__name__}")
    # Spec scenarios run as ScenarioPoint sweeps: same machine knobs
    # as kernel scenarios.
    kernel_like = entry.spec.kind in ("kernel", "spec")
    allowed = (_KERNEL_CONFIG_KEYS if kernel_like
               else _SUITE_CONFIG_KEYS)
    unknown = sorted(set(config) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown {entry.spec.kind}-run config keys {unknown}; "
            f"allowed: {sorted(allowed)}")
    engine = _normalize_engine(config)
    scale = config.get("scale", 32)
    if isinstance(scale, bool) or not isinstance(scale, int) or scale <= 0:
        raise ConfigurationError(
            f"scale must be a positive integer, got {scale!r}")
    if kernel_like:
        llc = config.get("llc_bytes")
        if llc is not None and (isinstance(llc, bool)
                                or not isinstance(llc, int) or llc <= 0):
            raise ConfigurationError(
                f"llc_bytes must be a positive integer or null, "
                f"got {llc!r}")
        bandwidth = config.get("bandwidth", 1.0)
        if (isinstance(bandwidth, bool)
                or not isinstance(bandwidth, (int, float))
                or bandwidth <= 0):
            raise ConfigurationError(
                f"bandwidth must be a positive number, "
                f"got {bandwidth!r}")
        systems = config.get("systems", ["baseline", "xmem"])
        if (not isinstance(systems, list) or not systems
                or not all(isinstance(s, str) for s in systems)):
            raise ConfigurationError(
                f"systems must be a non-empty list of names, "
                f"got {systems!r}")
        bad = [s for s in systems if s not in SYSTEM_BUILDERS]
        if bad:
            raise ConfigurationError(
                f"unknown systems {bad}; "
                f"choices: {sorted(SYSTEM_BUILDERS)}")
        return {"engine": engine, "scale": scale, "llc_bytes": llc,
                "bandwidth": float(bandwidth),
                "systems": list(systems)}
    modes = config.get("modes", ["baseline", "xmem"])
    if (not isinstance(modes, list) or not modes
            or any(m not in ("baseline", "xmem") for m in modes)):
        raise ConfigurationError(
            f"modes must be a non-empty list drawn from "
            f"['baseline', 'xmem'], got {modes!r}")
    xmem_tenants = config.get("xmem_tenants", [0])
    if (not isinstance(xmem_tenants, list)
            or not all(isinstance(i, int) and not isinstance(i, bool)
                       for i in xmem_tenants)):
        raise ConfigurationError(
            f"xmem_tenants must be a list of core indices, "
            f"got {xmem_tenants!r}")
    if any(i != 0 for i in xmem_tenants):
        # A suite scenario is one tenant; core 0 is the only index.
        raise ConfigurationError(
            f"xmem_tenants {xmem_tenants} outside the 1-tenant mix")
    return {"engine": engine, "scale": scale, "modes": list(modes),
            "xmem_tenants": list(xmem_tenants)}


def config_hash(config: Dict[str, object]) -> str:
    """Content hash of one normalized run config (16 hex chars)."""
    payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def build_point(entry: ScenarioEntry, config: Dict[str, object]):
    """The runnable point for (scenario, normalized config)."""
    spec = entry.spec
    if spec.kind == "spec":
        return ScenarioPoint(
            spec_json=spec.spec, scale=config["scale"],
            llc_bytes=config["llc_bytes"],
            bandwidth=config["bandwidth"],
            systems=tuple(config["systems"]),
        )
    if spec.kind == "kernel":
        return SimPoint(
            kernel=spec.workload, n=spec.n, tile=spec.tile,
            scale=config["scale"], llc_bytes=config["llc_bytes"],
            bandwidth=config["bandwidth"],
            systems=tuple(config["systems"]),
        )
    return CorunPoint(
        tenants=(spec.workload,), accesses=spec.n,
        footprint_div=spec.tile, scale=config["scale"],
        xmem_tenants=tuple(config["xmem_tenants"]),
        modes=tuple(config["modes"]),
    )


class _NamedResult:
    """The ``.point``-only shim :func:`point_document_name` needs."""

    def __init__(self, point) -> None:
        self.point = point


# ---------------------------------------------------------------------------
# Point and run records
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class PointEntry:
    """One deduplicated unit of work: (scenario-hash, config-hash).

    Entries compare by identity (``eq=False``): the point table maps
    each key to its *latest* entry, but every run also keeps direct
    references to the entries it was submitted with.  A failed or
    cancelled entry is terminal forever -- a later submission of the
    same key builds a *fresh* entry rather than mutating this one, so
    completed runs never see their history rewritten by a retry.

    ``cancel_requested`` is the in-flight cancel signal: the worker
    thread executing this entry polls it and terminates its child
    worker, freeing the pool slot instead of finishing doomed work.
    """

    key: Tuple[str, str]
    point: object
    engine: Optional[str] = None
    state: str = "pending"    # -> running -> done | failed | cancelled
    document: Optional[dict] = None
    error: Optional[str] = None
    wall_s: float = 0.0
    cancel_requested: bool = False
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")


@dataclass
class RunHandle:
    """One submitted run: an ordered list of (possibly shared) points.

    ``entries`` pins the exact :class:`PointEntry` objects this run
    was submitted against; progress and documents are read from those,
    never from the point table, so retries of the same key by later
    runs cannot change this run's story.

    ``events`` is the append-only completion log behind
    ``?since=``/``?stream=1``: one entry per point index, in the order
    the points reached a terminal state (entries already terminal at
    submission -- dedup and workspace hits -- are logged immediately).
    """

    id: str
    point_keys: List[Tuple[str, str]]
    entries: List[PointEntry]
    names: List[str]
    out_dir: Optional[Path]
    created_at: float
    new: int = 0
    deduped: int = 0
    cancelled: bool = False
    written: Optional[int] = None
    events: List[Dict[str, object]] = field(default_factory=list,
                                            repr=False)
    evented: Set[int] = field(default_factory=set, repr=False)
    persisted: bool = False


class RunScheduler:
    """The bounded work queue and its worker pool.

    One instance per server.  ``submit`` deduplicates against the
    point table (and the workspace, when attached) and enqueues only
    new work; workers drain the queue FIFO.  ``workers=0`` is the
    inspection mode used by tests: points stay pending until a worker
    exists.
    """

    def __init__(self, store: ScenarioStore, stats: ServeStats,
                 workers: int = 2, queue_limit: int = 64,
                 executor: str = "process", recycle_after: int = 32,
                 workspace: Optional[ArtifactWorkspace] = None) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0: {workers}")
        if queue_limit <= 0:
            raise ConfigurationError(
                f"queue_limit must be > 0: {queue_limit}")
        if executor not in ("process", "thread"):
            raise ConfigurationError(
                f"executor must be 'process' or 'thread', "
                f"got {executor!r}")
        if recycle_after <= 0:
            raise ConfigurationError(
                f"recycle_after must be > 0: {recycle_after}")
        self.store = store
        self.stats = stats
        self.queue_limit = queue_limit
        self.executor = executor
        self.recycle_after = recycle_after
        self.workspace = workspace
        self._queue: "queue.Queue[Optional[PointEntry]]" = queue.Queue()
        self._lock = threading.Lock()
        self._events_cond = threading.Condition(self._lock)
        self._points: Dict[Tuple[str, str], PointEntry] = {}
        self._runs: Dict[str, RunHandle] = {}
        self._run_order: List[str] = []
        self._next_run = 1
        if workspace is not None:
            # Resume the id sequence past everything persisted: a
            # restarted server must never reuse a served run id.
            self._next_run = workspace.max_run_number() + 1
        self._pending = 0
        self._stop = threading.Event()
        self._workers: List[threading.Thread] = []
        self._worker_info: List[Dict[str, object]] = []
        for i in range(workers):
            info: Dict[str, object] = {"name": f"worker-{i}",
                                       "executed": 0, "failed": 0,
                                       "current": None, "pid": None,
                                       "jobs_since_recycle": 0,
                                       "recycles": 0}
            thread = threading.Thread(target=self._worker_loop,
                                      args=(info,),
                                      name=f"repro-serve-{i}",
                                      daemon=True)
            self._worker_info.append(info)
            self._workers.append(thread)
            thread.start()

    # -- Submission -------------------------------------------------------

    def submit(self, points: List[Tuple[ScenarioEntry,
                                        Dict[str, object]]],
               out_dir: Optional[Path] = None) -> RunHandle:
        """Schedule one run over ``points``; returns its handle.

        ``points`` is an ordered list of (scenario entry, normalized
        config).  New (scenario, config) pairs enqueue; already known
        *live* pairs -- pending, running, or done -- are shared and
        counted as ``points_deduped``, and pairs whose final document
        is already in the workspace are served from disk without
        touching the queue (``workspace_hits``).  A key whose latest
        entry is terminal-unsuccessful (failed or cancelled) is
        rebuilt and re-enqueued: deduping onto a dead entry would park
        the new run in ``queued`` forever with nothing in the queue.
        Raises :class:`QueueFullError` when the new work would push
        the queue past its bound.
        """
        keys: List[Tuple[str, str]] = []
        names: List[str] = []
        entries: List[PointEntry] = []
        with self._lock:
            fresh: List[PointEntry] = []
            fresh_by_key: Dict[Tuple[str, str], PointEntry] = {}
            for index, (entry, config) in enumerate(points):
                engine = config.get("engine")
                if engine is not None and self.executor != "process":
                    raise ConfigurationError(
                        "per-run engine overrides need the process "
                        "executor; this server runs --executor thread "
                        "where REPRO_ENGINE is process-wide")
                key = (entry.hash, config_hash(config))
                point = build_point(entry, config)
                keys.append(key)
                names.append(point_document_name(index,
                                                 _NamedResult(point)))
                if key in fresh_by_key:
                    self.stats.bump("points_deduped")
                    entries.append(fresh_by_key[key])
                    continue
                known = self._points.get(key)
                if known is not None and known.state not in (
                        "failed", "cancelled"):
                    self.stats.bump("points_deduped")
                    entries.append(known)
                    continue
                restored = self._restore_from_workspace(key, point,
                                                        engine)
                if restored is not None:
                    entries.append(restored)
                    continue
                pe = PointEntry(key=key, point=point, engine=engine)
                fresh_by_key[key] = pe
                fresh.append(pe)
                entries.append(pe)
            if self._pending + len(fresh) > self.queue_limit:
                self.stats.bump("queue_rejections")
                raise QueueFullError(
                    f"queue full: {self._pending} pending + "
                    f"{len(fresh)} new > limit {self.queue_limit}")
            run = RunHandle(
                id=f"run-{self._next_run:06d}",
                point_keys=keys,
                entries=entries,
                names=names,
                out_dir=out_dir,
                created_at=time.time(),
                new=len(fresh),
                deduped=len(keys) - len(fresh),
            )
            self._next_run += 1
            self._runs[run.id] = run
            self._run_order.append(run.id)
            for pe in fresh:
                self._points[pe.key] = pe
                self._pending += 1
            self.stats.bump("runs_submitted")
            self.stats.bump("points_submitted", len(keys))
            # Entries already terminal at submission (dedup onto done,
            # workspace hits) appear in the event log right away.
            for index, pe in enumerate(run.entries):
                if pe.finished:
                    self._append_event_locked(run, index)
            if run.events:
                self._events_cond.notify_all()
            self._retire_locked()
        for pe in fresh:
            self._queue.put(pe)
        if self.workspace is not None:
            self._persist_run(run)
        # A run assembled entirely from finished entries completes at
        # submission -- there is no worker left to trigger it.
        self._maybe_complete_run(run)
        return run

    def _restore_from_workspace(self, key: Tuple[str, str],
                                point: object, engine: Optional[str]
                                ) -> Optional[PointEntry]:
        """An entry born ``done`` from a persisted document, or None.

        Called under the scheduler lock (lock order: scheduler before
        workspace, everywhere).
        """
        if self.workspace is None:
            return None
        try:
            document = self.workspace.load_point(key)
        except OSError:
            document = None
        if document is None:
            return None
        pe = PointEntry(key=key, point=point, engine=engine,
                        state="done", document=document)
        pe.done.set()
        self._points[key] = pe
        self.stats.bump("workspace_hits")
        return pe

    def cancel(self, run_id: str) -> bool:
        """Mark a run cancelled.

        Pending points referenced only by cancelled runs are skipped
        by the workers; a *running* point (process executor only) gets
        its ``cancel_requested`` flag raised, and the worker thread
        terminates the child executing it -- the pool slot frees
        without finishing the doomed point.
        """
        touched: List[RunHandle] = []
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                return False
            if run.cancelled:
                return True
            run.cancelled = True
            self.stats.bump("runs_cancelled")
            # A point survives iff some live run still wants this
            # exact entry (identity, not key: a later retry owns a
            # different entry).
            wanted = set()
            for other in self._runs.values():
                if not other.cancelled:
                    wanted.update(id(e) for e in other.entries)
            for pe in run.entries:
                if id(pe) in wanted:
                    continue
                if pe.state == "pending":
                    pe.state = "cancelled"
                    pe.error = f"cancelled by {run_id}"
                    pe.done.set()
                    self._pending -= 1
                    for other in self._runs.values():
                        if self._append_events_for_locked(other, pe):
                            if other not in touched:
                                touched.append(other)
                elif pe.state == "running" \
                        and self.executor == "process":
                    pe.cancel_requested = True
            if run not in touched:
                touched.append(run)
            self._events_cond.notify_all()
        for other in touched:
            self._maybe_complete_run(other)
        return True

    # -- Introspection ----------------------------------------------------

    def get_run(self, run_id: str) -> Optional[RunHandle]:
        with self._lock:
            return self._runs.get(run_id)

    def run_progress(self, run: RunHandle) -> Dict[str, object]:
        with self._lock:
            return self._progress_locked(run)

    def _progress_locked(self, run: RunHandle) -> Dict[str, object]:
        """Counts-by-state plus overall status for one run.

        A run with every point terminal is never ``queued`` -- there is
        nothing left in the queue that could advance it, so reporting
        ``queued`` would promise progress that cannot come.
        """
        counts = {"total": len(run.entries), "pending": 0,
                  "running": 0, "done": 0, "failed": 0, "cancelled": 0}
        for pe in run.entries:
            counts[pe.state] += 1
        terminal = (counts["done"] + counts["failed"]
                    + counts["cancelled"])
        if run.cancelled:
            status = "cancelled"
        elif counts["done"] == counts["total"]:
            status = "done"
        elif terminal == counts["total"]:
            status = "failed" if counts["failed"] else "cancelled"
        elif counts["running"] or terminal:
            status = "running"
        else:
            status = "queued"
        return {"status": status, "points": counts}

    def run_documents(self, run: RunHandle
                      ) -> Tuple[Dict[str, dict], Dict[str, str]]:
        """``(documents, errors)`` keyed by per-point document name."""
        docs: Dict[str, dict] = {}
        errors: Dict[str, str] = {}
        with self._lock:
            for name, pe in zip(run.names, run.entries):
                if pe.state == "done":
                    docs[name] = pe.document
                elif pe.state in ("failed", "cancelled"):
                    errors[name] = pe.error or pe.state
        return docs, errors

    # -- Progress events --------------------------------------------------

    def _append_event_locked(self, run: RunHandle, index: int) -> None:
        if index in run.evented:
            return
        run.evented.add(index)
        run.events.append({"seq": len(run.events), "index": index,
                           "name": run.names[index]})

    def _append_events_for_locked(self, run: RunHandle,
                                  pe: PointEntry) -> bool:
        """Log every index of ``run`` held by ``pe``; True if any."""
        touched = False
        for index, entry in enumerate(run.entries):
            if entry is pe and index not in run.evented:
                self._append_event_locked(run, index)
                touched = True
        return touched

    def _event_payload(self, run: RunHandle,
                       event: Dict[str, object]) -> Dict[str, object]:
        """The wire form of one event (terminal states are immutable,
        so reading the entry after the fact is race-free)."""
        pe = run.entries[event["index"]]
        payload: Dict[str, object] = {"seq": event["seq"],
                                      "name": event["name"],
                                      "state": pe.state}
        if pe.state == "done":
            payload["document"] = pe.document
            payload["wall_s"] = round(pe.wall_s, 6)
        elif pe.error:
            payload["error"] = pe.error
        return payload

    def wait_events(self, run: RunHandle, since: int, timeout: float
                    ) -> Tuple[List[Dict[str, object]], int,
                               Dict[str, object]]:
        """Long-poll: events past ``since`` (or terminal status).

        Returns ``(events, next_counter, progress)`` as soon as the
        run has events the caller has not seen, or immediately when
        the run is already terminal, else after ``timeout`` seconds.
        """
        if since < 0:
            raise ConfigurationError(f"since must be >= 0: {since}")
        deadline = time.monotonic() + max(0.0, timeout)
        with self._events_cond:
            while True:
                if len(run.events) > since:
                    break
                progress = self._progress_locked(run)
                if progress["status"] in ("done", "failed",
                                          "cancelled"):
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._events_cond.wait(remaining)
            events = [self._event_payload(run, ev)
                      for ev in run.events[since:]]
            return events, len(run.events), self._progress_locked(run)

    def queue_depth(self) -> int:
        with self._lock:
            return self._pending

    def worker_report(self) -> List[Dict[str, object]]:
        """Liveness and activity of every worker (``/debug/state``)."""
        report = []
        for thread, info in zip(self._workers, self._worker_info):
            with self._lock:
                snap = dict(info)
            snap["alive"] = thread.is_alive()
            report.append(snap)
        return report

    def workers_alive(self) -> int:
        return sum(1 for t in self._workers if t.is_alive())

    @property
    def configured_workers(self) -> int:
        return len(self._workers)

    def pool_report(self) -> Dict[str, object]:
        """The ``/health`` pool block: executor, recycling, children."""
        workers = []
        for thread, info in zip(self._workers, self._worker_info):
            with self._lock:
                workers.append({
                    "alive": thread.is_alive(),
                    "pid": info["pid"],
                    "jobs_since_recycle": info["jobs_since_recycle"],
                    "recycles": info["recycles"],
                })
        return {"executor": self.executor,
                "recycle_after": self.recycle_after,
                "workers": workers}

    def runs_summary(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            ids = list(self._run_order)
        out = {}
        for run_id in ids:
            run = self.get_run(run_id)
            if run is None:
                continue
            progress = self.run_progress(run)
            progress["created_at"] = run.created_at
            out[run_id] = progress
        return out

    def run_count(self) -> int:
        with self._lock:
            return len(self._runs)

    # -- Worker machinery -------------------------------------------------

    def _worker_loop(self, info: Dict[str, object]) -> None:
        worker: Optional[WorkerProcess] = None
        try:
            while not self._stop.is_set():
                try:
                    pe = self._queue.get(timeout=0.2)
                except queue.Empty:
                    continue
                if pe is None:
                    break
                with self._lock:
                    if pe.state != "pending":
                        continue
                    pe.state = "running"
                    self._pending -= 1
                    info["current"] = pe.key
                if self.executor == "process":
                    worker = self._execute_in_worker(pe, info, worker)
                else:
                    self._execute(pe, info)
                with self._lock:
                    info["current"] = None
        finally:
            if worker is not None:
                worker.kill()
                with self._lock:
                    info["pid"] = None

    # The in-process executor (the measured thread baseline).

    def _execute(self, pe: PointEntry, info: Dict[str, object]) -> None:
        t0 = time.perf_counter()
        try:
            result = run_any_point(pe.point, cache=self.store.new_cache(),
                                   collect=True)
            doc = point_document(result)
            self._retag(doc, pe)
            self.stats.bump("points_executed")
            info["executed"] = int(info["executed"]) + 1
            self._finish(pe, t0, "done", document=doc)
        except Exception as exc:
            self.stats.bump("points_failed")
            info["failed"] = int(info["failed"]) + 1
            self._finish(pe, t0, "failed",
                         error=f"{type(exc).__name__}: {exc}")

    # The process-pool executor.

    def _execute_in_worker(self, pe: PointEntry,
                           info: Dict[str, object],
                           worker: Optional[WorkerProcess]
                           ) -> Optional[WorkerProcess]:
        """Run one entry in this thread's child; returns the child to
        keep for the next job (None forces a lazy respawn)."""
        t0 = time.perf_counter()
        try:
            worker = self._dispatch(pe, info, worker)
        except Exception as exc:
            if worker is not None:
                worker.kill()
                with self._lock:
                    info["pid"] = None
            self.stats.bump("points_failed")
            info["failed"] = int(info["failed"]) + 1
            self._finish(pe, t0, "failed",
                         error=f"worker dispatch failed: "
                               f"{type(exc).__name__}: {exc}")
            return None
        reply = None
        crashed = False
        while True:
            if self._stop.is_set():
                worker.kill()
                with self._lock:
                    info["pid"] = None
                self._finish(pe, t0, "cancelled",
                             error="server shutting down")
                return None
            if pe.cancel_requested:
                worker.kill()
                with self._lock:
                    info["pid"] = None
                self.stats.bump("points_cancelled_running")
                self._finish(pe, t0, "cancelled",
                             error="cancelled while running")
                return None
            try:
                if not worker.poll(0.05):
                    continue
                reply = worker.recv()
            except (EOFError, OSError):
                crashed = True
            break
        if crashed:
            # kill() joins, so the exit code is only readable after it.
            worker.kill()
            exitcode = worker.exitcode
            with self._lock:
                info["pid"] = None
            self.stats.bump("workers_crashed")
            self.stats.bump("points_failed")
            info["failed"] = int(info["failed"]) + 1
            self._finish(pe, t0, "failed",
                         error=f"worker crashed (exit {exitcode}) "
                               f"while executing this point")
            return None
        kind, payload = reply
        if kind == "ok":
            self._retag(payload, pe)
            self.stats.bump("points_executed")
            info["executed"] = int(info["executed"]) + 1
            self._finish(pe, t0, "done", document=payload)
        else:
            self.stats.bump("points_failed")
            info["failed"] = int(info["failed"]) + 1
            self._finish(pe, t0, "failed", error=str(payload))
        worker.jobs_done += 1
        with self._lock:
            info["jobs_since_recycle"] = worker.jobs_done
        if worker.jobs_done >= self.recycle_after:
            worker.stop()
            self.stats.bump("workers_recycled")
            with self._lock:
                info["pid"] = None
                info["jobs_since_recycle"] = 0
                info["recycles"] = int(info["recycles"]) + 1
            return None
        return worker

    def _dispatch(self, pe: PointEntry, info: Dict[str, object],
                  worker: Optional[WorkerProcess]) -> WorkerProcess:
        """Hand the job to a live child, spawning/respawning once."""
        for attempt in (0, 1):
            if worker is None or not worker.alive():
                if worker is not None:
                    worker.kill()
                worker = WorkerProcess(
                    name=f"repro-serve-pool-{info['name']}",
                    cache_root=self.store.cache_root,
                    cache_disabled=self.store.cache_disabled)
                with self._lock:
                    info["pid"] = worker.pid
                    info["jobs_since_recycle"] = 0
            try:
                worker.submit(pe.key, pe.point, pe.engine)
                self.stats.bump("points_dispatched")
                return worker
            except (BrokenPipeError, OSError):
                worker.kill()
                worker = None
                if attempt:
                    raise
        raise OSError("unreachable")  # pragma: no cover

    # Shared completion plumbing.

    @staticmethod
    def _retag(doc: dict, pe: PointEntry) -> None:
        """Stamp the serve provenance block onto a finished document."""
        manifest = doc["manifest"]
        manifest["serve"] = {
            "scenario": pe.key[0],
            "config_hash": pe.key[1],
            "base_kind": manifest["kind"],
        }
        if pe.engine is not None:
            manifest["serve"]["engine"] = pe.engine
        manifest["kind"] = "servepoint"

    def _finish(self, pe: PointEntry, t0: float, state: str,
                document: Optional[dict] = None,
                error: Optional[str] = None) -> None:
        with self._lock:
            pe.wall_s = time.perf_counter() - t0
            pe.state = state
            pe.document = document
            pe.error = error
        pe.done.set()
        self._after_point(pe)

    def _after_point(self, pe: PointEntry) -> None:
        """Workspace persistence + event log + run completion."""
        if self.workspace is not None and pe.state == "done":
            try:
                if self.workspace.save_point(pe.key, pe.document):
                    self.stats.bump("workspace_writes")
            except OSError:
                # The workspace is a cache; disk trouble must not fail
                # a point that already completed in memory.
                pass
        affected: List[RunHandle] = []
        with self._lock:
            for run in self._runs.values():
                if self._append_events_for_locked(run, pe):
                    affected.append(run)
            self._events_cond.notify_all()
        for run in affected:
            self._maybe_complete_run(run)

    def _maybe_complete_run(self, run: RunHandle) -> None:
        """Completion bookkeeping once every entry is terminal."""
        write = persist = False
        with self._lock:
            if any(not e.finished for e in run.entries):
                return
            if not run.cancelled and run.written is None:
                self.stats.bump("runs_completed")
                run.written = -1   # claimed; actual count follows
                write = True
            if self.workspace is not None and not run.persisted:
                run.persisted = True
                persist = True
            self._events_cond.notify_all()
        if write:
            run.written = self._write_documents(run)
        if persist:
            self._persist_run(run)
            try:
                evicted = self.workspace.evict()
            except OSError:
                evicted = 0
            if evicted:
                self.stats.bump("workspace_evictions", evicted)

    def _persist_run(self, run: RunHandle) -> None:
        """Write the run's workspace record (submit + terminal)."""
        with self._lock:
            progress = self._progress_locked(run)
            record = {
                "run": run.id,
                "status": progress["status"],
                "points": progress["points"],
                "names": list(run.names),
                "point_keys": [list(k) for k in run.point_keys],
                "states": [pe.state for pe in run.entries],
                "errors": {name: pe.error
                           for name, pe in zip(run.names, run.entries)
                           if pe.error},
                "created_at": run.created_at,
                "updated_at": time.time(),
            }
        try:
            self.workspace.save_run(record)
        except OSError:
            pass

    def _write_documents(self, run: RunHandle) -> int:
        """Persist a completed run's documents to its ``out_dir``.

        Byte-for-byte the :func:`repro.sim.runner.
        write_point_documents` format (sorted keys, indent 2, trailing
        newline), so ``repro diff`` can gate a served directory against
        a CLI sweep directly.
        """
        if run.out_dir is None:
            return 0
        docs, _ = self.run_documents(run)
        run.out_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for name in run.names:
            doc = docs.get(name)
            if doc is None:
                continue
            with open(run.out_dir / name, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, indent=2)
                fh.write("\n")
            written += 1
        return written

    def _retire_locked(self) -> None:
        """Drop the oldest completed runs past the retention bound."""
        while len(self._run_order) > RUN_RETENTION:
            oldest = self._run_order[0]
            run = self._runs[oldest]
            unfinished = any(not e.finished for e in run.entries)
            if unfinished and not run.cancelled:
                break
            self._run_order.pop(0)
            del self._runs[oldest]
            wanted = set()
            for other in self._runs.values():
                wanted.update(other.point_keys)
            for key in run.point_keys:
                if key not in wanted and key in self._points:
                    pe = self._points[key]
                    if pe.finished:
                        del self._points[key]

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers (drain signal + join).

        Process-executor threads kill their in-flight child rather
        than waiting out the job; the entry is marked cancelled.
        """
        self._stop.set()
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout)
