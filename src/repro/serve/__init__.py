"""Simulation-as-a-service: the ``repro serve`` HTTP server.

The paper's XMem design splits expensive semantic registration (atom
setup, once) from cheap repeated use; this package applies the same
split at service granularity.  ``POST /v1/scenarios`` packs and
content-hashes the expensive half (trace + setup log, via the existing
trace cache); ``POST /v1/runs`` replays cheap parameterized system
configs against it on a bounded worker queue with request dedup.  See
``docs/serve.md`` for the API reference.
"""

from repro.serve.app import ReproServer, ServerState, serve
from repro.serve.jobs import (
    QueueFullError,
    RunScheduler,
    ServeStats,
    config_hash,
    normalize_config,
)
from repro.serve.scenarios import (
    ScenarioBuildError,
    ScenarioEntry,
    ScenarioSpec,
    ScenarioStore,
)

__all__ = [
    "QueueFullError",
    "ReproServer",
    "RunScheduler",
    "ScenarioBuildError",
    "ScenarioEntry",
    "ScenarioSpec",
    "ScenarioStore",
    "ServeStats",
    "ServerState",
    "config_hash",
    "normalize_config",
    "serve",
]
