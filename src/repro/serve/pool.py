"""The serve data plane: one import-warm worker process per pool slot.

``repro serve`` keeps its HTTP surface on threads (cheap, IO-bound)
and pushes point execution onto real processes so CPU-bound
packed/vector replays run truly in parallel instead of serializing
behind the GIL.  Each scheduler worker thread owns at most one
:class:`WorkerProcess`; jobs travel over a ``multiprocessing`` pipe
one at a time, so a worker child is always either idle or executing
exactly one point.

Design points, all load-bearing:

* **spawn, not fork.**  The parent is a heavily multithreaded HTTP
  server; forking it would clone lock state mid-flight.  Spawned
  children import :mod:`repro` fresh, then stay warm for many jobs.
* **Crash isolation.**  A child that dies mid-job (segfault, OOM kill,
  ``os._exit``) surfaces as EOF on the pipe: the scheduler fails that
  one point and lazily respawns the worker.  The server never goes
  down with a point.
* **True cancel.**  Cancelling an in-flight point terminates the child
  outright -- the pool slot frees immediately instead of finishing
  doomed work.
* **Recycling.**  After ``recycle_after`` jobs a child is retired and
  replaced, capping RSS growth from allocator fragmentation and
  per-job caches in long-lived workers.

Fault injection for tests and the fuzz lane rides on two environment
variables (inherited by spawn children, so they are set before the
worker exists): ``REPRO_SERVE_TEST_CRASH=<scenario-hash>`` makes a
worker ``os._exit(23)`` when it picks up a job for that scenario, and
``REPRO_SERVE_TEST_SLOW=<scenario-hash>:<seconds>`` sleeps before
executing -- a deterministic window for cancel-while-running.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from pathlib import Path
from typing import Optional, Tuple

#: Scenario hash a worker must crash on (test/fuzz fault injection).
CRASH_ENV = "REPRO_SERVE_TEST_CRASH"

#: ``<scenario-hash>:<seconds>`` a worker must stall on before running.
SLOW_ENV = "REPRO_SERVE_TEST_SLOW"

#: Exit code of an injected crash (distinguishes it from real faults).
CRASH_EXIT = 23


def _apply_test_hooks(scenario_hash: str) -> None:
    """Honor the fault-injection markers for one picked-up job."""
    if os.environ.get(CRASH_ENV, "") == scenario_hash:
        os._exit(CRASH_EXIT)
    slow = os.environ.get(SLOW_ENV, "")
    if slow:
        target, _, seconds = slow.partition(":")
        if target == scenario_hash:
            try:
                time.sleep(float(seconds or "1"))
            except ValueError:
                pass


def pool_worker_main(conn, cache_root: Optional[Path],
                     cache_disabled: bool) -> None:
    """Entry point of one worker child (spawn target).

    Protocol: the parent sends ``(key, point, engine)`` jobs and the
    child replies ``("ok", document)`` or ``("error", message)``; a
    ``None`` job asks the child to exit (recycling / shutdown).  One
    job is in flight at a time, which is what makes the per-job
    ``REPRO_ENGINE`` override in
    :func:`repro.sim.runner.execute_point_job` safe.
    """
    try:
        # The parent handles interrupts; a Ctrl-C must not take the
        # children down before the scheduler can drain them.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    from repro.sim.runner import execute_point_job

    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break
        if job is None:
            break
        key, point, engine = job
        _apply_test_hooks(key[0])
        try:
            document = execute_point_job(
                point, cache_root=cache_root,
                cache_disabled=cache_disabled, engine=engine)
            reply = ("ok", document)
        except BaseException as exc:  # noqa: BLE001 - one bad point
            # must report, not kill the worker loop.
            reply = ("error", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class WorkerProcess:
    """One pool worker child plus the parent-side end of its pipe."""

    def __init__(self, name: str, cache_root: Optional[Path],
                 cache_disabled: bool) -> None:
        ctx = multiprocessing.get_context("spawn")
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=pool_worker_main,
            args=(child_conn, cache_root, cache_disabled),
            name=name, daemon=True)
        self.process.start()
        child_conn.close()
        #: Jobs completed since this child was spawned (recycling).
        self.jobs_done = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode

    def alive(self) -> bool:
        return self.process.is_alive()

    def submit(self, key: Tuple[str, str], point: object,
               engine: Optional[str]) -> None:
        """Hand one job to the child (raises OSError if it is gone)."""
        self.conn.send((key, point, engine))

    def poll(self, timeout: float) -> bool:
        """True when a reply (or the child's EOF) is readable."""
        return self.conn.poll(timeout)

    def recv(self):
        """The child's reply (raises EOFError if it crashed)."""
        return self.conn.recv()

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful retirement: drain signal, then escalate."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck child
            self.process.terminate()
            self.process.join(timeout)
        self._close()

    def kill(self, timeout: float = 5.0) -> None:
        """Immediate termination (cancel, crash cleanup, shutdown)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck child
            self.process.kill()
            self.process.join(timeout)
        self._close()

    def _close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
