"""``REPRO_CHECK``: runtime invariant checking for the hot-path models.

The optimized models maintain derived state (per-set occupancy counts,
heap-backed MSHR files, greedy scheduler queues) that the simple
semantics they implement never needed.  With ``REPRO_CHECK=1`` in the
environment, each model installs per-operation checkers on itself at
construction time that re-derive that state the slow way and compare:

* :class:`repro.mem.cache.Cache` -- after every access/fill, the
  touched set's maintained valid/pinned counts must match the actual
  tag/pin columns, pinned lines must be valid and within the pin quota
  (<= 75% of the ways by default), and no valid tag may be duplicated;
* :class:`repro.mem.mshr.MSHRFile` -- a reservation may never leave
  more than ``entries`` misses outstanding, nor start in the past;
* :class:`repro.cpu.engine.TraceEngine` -- end-of-run statistics must
  be mutually consistent (stalls within cycles, retirement no faster
  than the issue width allows) and the window must drain;
* :class:`repro.dram.scheduler.FRFCFSScheduler` -- no request may be
  bypassed by younger row-hit requests more than ``starvation_cap``
  times.

The flag is read once per component construction, so a disabled run
pays nothing per event -- components only consult this module inside
``__init__``.  Checkers raise :class:`CheckError` (an
``AssertionError`` subclass, so plain ``pytest`` machinery and
``python -O`` semantics treat it as an assertion).

This module must stay dependency-free within the package: the
production models import it at module load, and any import back into
``repro.mem``/``repro.cpu`` would be circular.
"""

from __future__ import annotations

import os

#: The environment flag. Any value other than empty/"0" enables checks.
ENV_VAR = "REPRO_CHECK"


def enabled() -> bool:
    """Whether invariant checking is switched on (read per call)."""
    return os.environ.get(ENV_VAR, "0") not in ("", "0")


class CheckError(AssertionError):
    """An internal invariant of an optimized model was violated."""


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------

def check_cache_set(cache, set_idx: int) -> None:
    """Re-derive one set's occupancy state and compare to the columns."""
    tags = cache._tags[set_idx]
    pinned = cache._pinned[set_idx]
    dirty = cache._dirty[set_idx]
    valid = [w for w, t in enumerate(tags) if t >= 0]
    if len(valid) != cache._valid_counts[set_idx]:
        raise CheckError(
            f"{cache.name} set {set_idx}: maintained valid count "
            f"{cache._valid_counts[set_idx]} != actual {len(valid)}"
        )
    valid_tags = [tags[w] for w in valid]
    if len(set(valid_tags)) != len(valid_tags):
        raise CheckError(
            f"{cache.name} set {set_idx}: duplicate valid tags {tags}"
        )
    pin_ways = [w for w, p in enumerate(pinned) if p]
    if len(pin_ways) != cache._pinned_counts[set_idx]:
        raise CheckError(
            f"{cache.name} set {set_idx}: maintained pinned count "
            f"{cache._pinned_counts[set_idx]} != actual {len(pin_ways)}"
        )
    for w in pin_ways:
        if tags[w] < 0:
            raise CheckError(
                f"{cache.name} set {set_idx}: way {w} pinned but invalid"
            )
    if len(pin_ways) > cache._max_pinned_ways:
        raise CheckError(
            f"{cache.name} set {set_idx}: {len(pin_ways)} pinned ways "
            f"exceed the quota of {cache._max_pinned_ways} "
            f"(pin_quota={cache.pin_quota})"
        )
    for w, d in enumerate(dirty):
        if d and tags[w] < 0:
            raise CheckError(
                f"{cache.name} set {set_idx}: way {w} dirty but invalid"
            )


def check_cache_all(cache) -> None:
    """Every set, plus the cache-wide maintained aggregates."""
    for set_idx in range(cache.num_sets):
        check_cache_set(cache, set_idx)
    resident = sum(
        1 for tags in cache._tags for t in tags if t >= 0
    )
    if resident != cache.resident_lines:
        raise CheckError(
            f"{cache.name}: resident_lines {cache.resident_lines} "
            f"!= actual {resident}"
        )
    pinned = sum(
        1 for row in cache._pinned for p in row if p
    )
    if pinned != cache.pinned_lines:
        raise CheckError(
            f"{cache.name}: pinned_lines {cache.pinned_lines} "
            f"!= actual {pinned}"
        )
    for set_idx, tag in cache._prefetched_tags:
        if tag not in cache._tags[set_idx]:
            raise CheckError(
                f"{cache.name}: prefetched tag {tag:#x} of set "
                f"{set_idx} is not resident"
            )


# ---------------------------------------------------------------------------
# MSHR invariants
# ---------------------------------------------------------------------------

def check_mshr(mshr, now: float, start: float) -> None:
    """Post-``reserve`` state: bounded occupancy, no time travel."""
    if len(mshr._completions) > mshr.entries:
        raise CheckError(
            f"MSHR over capacity: {len(mshr._completions)} outstanding "
            f"misses in a {mshr.entries}-entry file"
        )
    if start < now:
        raise CheckError(
            f"MSHR reservation started at {start} before now={now}"
        )


# ---------------------------------------------------------------------------
# Engine invariants
# ---------------------------------------------------------------------------

def check_engine_run(engine, stats) -> None:
    """End-of-run consistency of one :class:`EngineStats`."""
    if stats.cycles < 0 or stats.stall_cycles < 0:
        raise CheckError(f"negative time in {stats}")
    if stats.stall_cycles > stats.cycles + 1e-9:
        raise CheckError(
            f"stall cycles {stats.stall_cycles} exceed total cycles "
            f"{stats.cycles}"
        )
    if stats.mem_accesses + stats.xmem_instructions > stats.instructions:
        raise CheckError(
            f"memory + xmem instructions exceed total instructions: "
            f"{stats}"
        )
    if stats.misses_to_memory > stats.mem_accesses:
        raise CheckError(
            f"more memory misses than memory accesses: {stats}"
        )
    # Retirement cannot beat the issue width (small float slack: the
    # per-event 1/width additions accumulate rounding).
    floor = stats.instructions / engine.issue_width
    if stats.instructions and stats.cycles + 1e-6 * max(1.0, floor) < floor:
        raise CheckError(
            f"{stats.instructions} instructions retired in "
            f"{stats.cycles} cycles at width {engine.issue_width}"
        )
    if engine.mshr.outstanding:
        raise CheckError(
            f"window not drained at end of run: "
            f"{engine.mshr.outstanding} misses outstanding"
        )


# ---------------------------------------------------------------------------
# Scheduler invariants
# ---------------------------------------------------------------------------

def check_scheduler_bypass(count: int, cap: int, request) -> None:
    """A pending request's bypass count must stay under the cap."""
    if count > cap:
        raise CheckError(
            f"FR-FCFS starvation: request {request} bypassed "
            f"{count} times (cap {cap})"
        )
