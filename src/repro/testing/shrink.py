"""Greedy delta-debugging shrinker for failing fuzz inputs.

A failing case is a list of items (trace events, cache ops, DRAM
requests) plus a predicate that re-runs the differential lane.  The
shrinker removes as much of the list as it can while the predicate
keeps failing: contiguous chunks first (halving granularity, the ddmin
schedule), then single items, looping until a fixed point.  The result
is the minimal reproducer that gets written to the corpus -- small
enough to read, diff, and check in as a regression test.

Deterministic: no randomness, so the same failure always shrinks to
the same reproducer.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")

#: Safety valve on predicate invocations -- shrinking is O(n^2) in the
#: worst case and lane re-runs are not free.
DEFAULT_BUDGET = 2000


def shrink(items: Sequence[T], fails: Callable[[List[T]], bool],
           budget: int = DEFAULT_BUDGET) -> List[T]:
    """The smallest sublist of ``items`` on which ``fails`` still holds.

    ``fails`` must be True for ``items`` itself (the caller observed
    the failure); raises ``ValueError`` otherwise, because "shrinking"
    a passing input silently would mask a flaky lane.
    """
    current = list(items)
    if not fails(current):
        raise ValueError("shrink() called with a passing input")
    calls = 0

    def try_fails(candidate: List[T]) -> bool:
        nonlocal calls
        calls += 1
        return fails(candidate)

    progress = True
    while progress and calls < budget:
        progress = False
        chunk = max(1, len(current) // 2)
        while chunk >= 1 and calls < budget:
            start = 0
            while start < len(current) and calls < budget:
                candidate = current[:start] + current[start + chunk:]
                if candidate and try_fails(candidate):
                    current = candidate
                    progress = True
                    # Same start now addresses the next chunk.
                else:
                    start += chunk
            if chunk == 1:
                break
            chunk //= 2
    return current
