"""Executable reference models: the simple way to compute each answer.

Each class here re-implements one optimized model with textbook data
structures and no hot-path tricks -- the form you would write on a
whiteboard.  The fuzz lanes (:mod:`repro.testing.fuzz`) drive the
optimized model and its reference over the same random input and
require the answers to agree exactly:

* :class:`ReferenceCache` vs. :class:`repro.mem.cache.Cache` (LRU):
  dict-of-lists recency order, per-set tag sets for dirty/pinned state;
  hits, victims, writebacks, refusals, and the final resident set must
  all match the columnar cache.
* :class:`ReferenceEngine` vs. :class:`repro.cpu.engine.TraceEngine`:
  a naive in-order interpreter with a plain-list outstanding-miss
  window (``min``/``remove`` instead of a heap).  Statistics must be
  bit-identical -- every arithmetic expression mirrors the engine, so
  float accumulation order is the same.
* :class:`ReferenceDram` vs. :class:`repro.dram.system.DramSystem`
  under FIFO issue: a naive open-row bank/channel timing model.
  Per-request (outcome, latency, completion) must match exactly.
* :class:`ToyMemory`: not an oracle but a seeded, deterministic memory
  stand-in for engine lanes -- two instances with the same seed give
  identical (completes_at, went_to_memory) streams, with enough long
  misses to saturate small windows.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.cpu.trace import MemAccess, PackedTrace, Trace, Work, XMemOp
from repro.dram.mapping import AddressMapping, DramGeometry, make_mapping
from repro.dram.timing import DramTiming, ddr3_1066


# ---------------------------------------------------------------------------
# Cache reference
# ---------------------------------------------------------------------------

class ReferenceCache:
    """Dict-of-lists LRU cache with write-back state and pinning.

    Per set: ``order`` is the recency list (LRU at the front, MRU at
    the back), ``dirty`` and ``pinned`` are tag sets.  The semantics
    deliberately restate :class:`repro.mem.cache.Cache` with
    ``policy="lru"``:

    * a hit promotes to MRU; a flag-merging :meth:`fill` of a resident
      line does **not** (the cache's resident-fill path skips the
      policy hook);
    * a fill into a non-full set evicts nothing;
    * the victim of a full set is the least-recent non-pinned line, or
      the least-recent line outright if every way is pinned (only
      reachable with ``pin_quota=1.0``);
    * pin requests beyond ``max(0, int(ways * pin_quota))`` pinned
      lines per set degrade to normal fills and count as refusals.
    """

    def __init__(self, num_sets: int, ways: int, line_bytes: int = 64,
                 pin_quota: float = 0.75) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.max_pinned_ways = max(0, int(ways * pin_quota))
        self.order: List[List[int]] = [[] for _ in range(num_sets)]
        self.dirty: List[Set[int]] = [set() for _ in range(num_sets)]
        self.pinned: List[Set[int]] = [set() for _ in range(num_sets)]
        self.evictions = 0
        self.writebacks = 0
        self.pin_refusals = 0

    def place(self, addr: int) -> Tuple[int, int]:
        """(set index, tag) of the line holding ``addr``."""
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def line_of(self, set_idx: int, tag: int) -> int:
        """Inverse of :meth:`place`: the line address."""
        return (tag * self.num_sets + set_idx) * self.line_bytes

    def access(self, addr: int, is_write: bool = False) -> bool:
        """One demand access; True on hit (with LRU promotion)."""
        set_idx, tag = self.place(addr)
        order = self.order[set_idx]
        if tag not in order:
            return False
        order.remove(tag)
        order.append(tag)
        if is_write:
            self.dirty[set_idx].add(tag)
        return True

    def fill(self, addr: int, *, dirty: bool = False,
             pinned: bool = False) -> Optional[int]:
        """Install (or flag-merge) a line; returns the writeback, if any."""
        set_idx, tag = self.place(addr)
        order = self.order[set_idx]
        if tag in order:
            # Resident: merge flags, recency untouched.
            if dirty:
                self.dirty[set_idx].add(tag)
            if pinned and tag not in self.pinned[set_idx] \
                    and len(self.pinned[set_idx]) < self.max_pinned_ways:
                self.pinned[set_idx].add(tag)
            return None
        writeback = None
        if len(order) >= self.ways:
            victims = [t for t in order if t not in self.pinned[set_idx]]
            victim = victims[0] if victims else order[0]
            order.remove(victim)
            self.evictions += 1
            if victim in self.dirty[set_idx]:
                self.dirty[set_idx].discard(victim)
                self.writebacks += 1
                writeback = self.line_of(set_idx, victim)
            self.pinned[set_idx].discard(victim)
        order.append(tag)
        if dirty:
            self.dirty[set_idx].add(tag)
        if pinned:
            if len(self.pinned[set_idx]) < self.max_pinned_ways:
                self.pinned[set_idx].add(tag)
            else:
                self.pin_refusals += 1
        return writeback

    def unpin_all(self) -> int:
        """Age every pin; returns how many lines were pinned."""
        count = sum(len(p) for p in self.pinned)
        for p in self.pinned:
            p.clear()
        return count

    def resident_set(self) -> Set[int]:
        """All resident line addresses."""
        return {
            self.line_of(s, t)
            for s, order in enumerate(self.order) for t in order
        }

    def pinned_lines(self) -> int:
        """Total pinned lines."""
        return sum(len(p) for p in self.pinned)


# ---------------------------------------------------------------------------
# Engine reference
# ---------------------------------------------------------------------------

class ReferenceEngine:
    """Naive in-order trace interpreter with a plain-list miss window.

    Mirrors the timing contract of :class:`repro.cpu.engine.TraceEngine`
    event for event -- same pipelined-hit threshold, same window-full
    stall rule, same end-of-trace drain -- but with none of the
    hot-path structure: object dispatch by ``isinstance``, the
    outstanding-miss window as a list scanned with ``min``.  Every
    arithmetic expression restates the engine's, so the returned
    :class:`~repro.cpu.engine.EngineStats` is bit-identical for any
    trace over the same memory behaviour.
    """

    PIPELINED_LATENCY = 4.0

    def __init__(self, memory, xmemlib=None, translate=None,
                 issue_width: int = 4, window: int = 32) -> None:
        self.memory = memory
        self.xmemlib = xmemlib
        self.translate = translate
        self.issue_width = issue_width
        self.window = window

    def run(self, trace: Trace):
        from repro.cpu.engine import EngineStats

        if isinstance(trace, PackedTrace):
            trace = trace.events()
        now = 0.0
        issue = self.issue_width
        slot = 1.0 / issue
        outstanding: List[float] = []
        stats = EngineStats()
        for ev in trace:
            if isinstance(ev, MemAccess):
                work = ev.work
                if work:
                    now += work / issue
                    stats.instructions += work
                stats.instructions += 1
                stats.mem_accesses += 1
                vaddr = ev.vaddr
                if self.translate is not None:
                    vaddr = self.translate(vaddr)
                completes_at, to_memory = self.memory.access(
                    vaddr, ev.is_write, now)
                if to_memory:
                    stats.misses_to_memory += 1
                if completes_at - now > self.PIPELINED_LATENCY:
                    # Retire everything that has completed, then stall
                    # on the oldest miss if the window is still full.
                    outstanding = [t for t in outstanding if t > now]
                    start = now
                    if len(outstanding) >= self.window:
                        start = min(outstanding)
                        outstanding.remove(start)
                    outstanding.append(completes_at)
                    if start > now:
                        stats.stall_cycles += start - now
                        now = start
                now += slot
            elif isinstance(ev, Work):
                now += ev.count / issue
                stats.instructions += ev.count
            elif isinstance(ev, XMemOp):
                stats.instructions += 1
                stats.xmem_instructions += 1
                now += slot
                if self.xmemlib is not None:
                    getattr(self.xmemlib, ev.method)(*ev.args)
            else:
                raise TypeError(f"not a trace event: {ev!r}")
        if outstanding:
            tail = max(outstanding)
            if tail > now:
                now = tail
        stats.cycles = now
        return stats


# ---------------------------------------------------------------------------
# DRAM reference
# ---------------------------------------------------------------------------

class ReferenceDram:
    """Naive FIFO open-row DRAM model.

    One dict entry per touched bank holding ``[open_row, busy_until]``,
    one free-time per channel, requests served strictly in the order
    presented.  Restates the
    :class:`~repro.dram.system.DramSystem`/:class:`~repro.dram.bank.Bank`
    arithmetic (classify, per-outcome overhead, bank busy advance,
    channel burst serialization) without the object structure.  Address
    decomposition is shared input, not model under test, so the same
    mapping scheme object is used.
    """

    def __init__(self, geometry: Optional[DramGeometry] = None,
                 timing: Optional[DramTiming] = None,
                 mapping: str = "scheme2") -> None:
        self.geometry = geometry or DramGeometry()
        self.timing = timing or ddr3_1066()
        self.mapping: AddressMapping = make_mapping(mapping, self.geometry)
        self.banks: Dict[Tuple[int, int, int], List] = {}
        self.channel_free = [0.0] * self.geometry.channels
        self.reads = 0
        self.writes = 0
        self.read_latency_sum = 0.0
        self.write_latency_sum = 0.0
        self.row_hits = 0
        self.row_closed = 0
        self.row_conflicts = 0

    def access(self, paddr: int, now: float,
               is_write: bool = False) -> Tuple[str, float, float]:
        """Serve one request; returns (outcome, latency, completes_at)."""
        t = self.timing
        addr = self.mapping.decompose(paddr)
        bank = self.banks.setdefault(addr.bank_key, [None, 0.0])
        start = now if now >= bank[1] else bank[1]
        if bank[0] is None:
            outcome = "closed"
            overhead = t.t_rcd
            self.row_closed += 1
        elif bank[0] == addr.row:
            outcome = "hit"
            overhead = 0.0
            self.row_hits += 1
        else:
            outcome = "conflict"
            overhead = t.t_rp + t.t_rcd
            self.row_conflicts += 1
        bank[0] = addr.row
        bank[1] = start + overhead + t.t_burst
        data_ready = start + overhead + t.t_cl
        chan = self.channel_free[addr.channel]
        burst_start = data_ready if data_ready >= chan else chan
        done = burst_start + t.t_burst
        self.channel_free[addr.channel] = done
        latency = done - now
        if is_write:
            self.writes += 1
            self.write_latency_sum += latency
        else:
            self.reads += 1
            self.read_latency_sum += latency
        return outcome, latency, done


# ---------------------------------------------------------------------------
# Seeded toy memory for engine lanes
# ---------------------------------------------------------------------------

class ToyMemory:
    """Deterministic seeded stand-in for a memory system.

    Engine lanes need two *identical* memory behaviours -- one for the
    optimized engine, one for the reference -- without sharing mutable
    state between the runs.  Two ``ToyMemory(seed)`` instances draw the
    same per-access pseudo-random (hit-or-miss, latency) stream, so the
    engines see the same machine.  Miss latencies are long enough to
    pile misses into small windows (MSHR saturation).
    """

    def __init__(self, seed: int, hit_latency: float = 2.0,
                 miss_rate: float = 0.35,
                 miss_latency: Tuple[float, float] = (40.0, 400.0)) -> None:
        self._rng = random.Random(seed)
        self.hit_latency = hit_latency
        self.miss_rate = miss_rate
        self.miss_latency = miss_latency
        self.accesses = 0

    def access(self, paddr: int, is_write: bool,
               now: float) -> Tuple[float, bool]:
        self.accesses += 1
        rng = self._rng
        if rng.random() < self.miss_rate:
            lo, hi = self.miss_latency
            return now + rng.uniform(lo, hi), True
        return now + self.hit_latency, False
