"""Differential fuzzing: optimized models vs. reference models.

Nine lanes, each pairing a hot-path implementation with its oracle
(:mod:`repro.testing.oracles`) over seeded random input
(:mod:`repro.testing.generators`):

* ``packed``  -- the same trace as an object stream and as a
  :class:`PackedTrace` through two identically built full systems
  (baseline or XMem, with atom churn): engine statistics and the full
  stats snapshot must be bit-identical.
* ``corun``   -- random multi-tenant mixes (2-3 cores, per-core
  generated streams, atom churn on the XMem tenant) through two
  identically built :class:`~repro.sim.corun.CorunSystem` machines:
  the legacy per-event interleaver vs. the heap-scheduled packed
  engine, per-core CoreStats and full snapshot bit-identical.  Items
  are ``(core, event)`` pairs, so shrinking drops events from any
  tenant.
* ``vector``  -- the same tri-way through the ``object``, ``packed``
  and ``vector`` engine tiers (:mod:`repro.cpu.tiers`): all three
  statistics and snapshots must be bit-identical, pinning the vector
  batch interpreter (and its scalar-fallback boundary handling)
  against both exact references.
* ``cache``   -- random access/fill/unpin op strings through the
  columnar :class:`~repro.mem.cache.Cache` (LRU) and the dict-of-lists
  :class:`~repro.testing.oracles.ReferenceCache`: per-op hits,
  writeback addresses, eviction/refusal counts, pinned totals, and the
  final resident set must match.
* ``engine``  -- MemAccess/Work streams against a seeded
  :class:`~repro.testing.oracles.ToyMemory`: the object loop, the
  zero-object packed loop, and the naive
  :class:`~repro.testing.oracles.ReferenceEngine` must return
  bit-identical :class:`EngineStats` (windows small enough to
  saturate the MSHR file).
* ``dram``    -- timed FIFO request streams through
  :class:`~repro.dram.system.DramSystem` and the naive
  :class:`~repro.testing.oracles.ReferenceDram`: per-request row
  outcome, latency, and completion time, plus the final counters.
* ``sched``   -- request lists through
  :class:`~repro.dram.scheduler.FRFCFSScheduler`: every request
  serviced exactly once, completions self-consistent, service never
  before arrival (starvation bounds are the scheduler's own
  ``REPRO_CHECK`` hook).
* ``serve``   -- random request sequences (including concurrent
  duplicate POSTs and deliberate junk) against a real in-process
  ``repro serve`` HTTP server (:mod:`repro.serve`): every response is
  JSON with the documented status, concurrent identical scenario
  requests share one build (build-once accounting), completed runs
  carry ``servepoint`` documents, and the final ``/debug/state``
  shows zero internal errors, zero failed points, a drained queue,
  and a memo within its bound.  Items are self-contained request
  descriptors, so shrinking drops whole requests.
* ``scenario`` -- random declarative workload specs
  (:mod:`repro.scenarios`) against the spec pipeline's own contract:
  canonicalization is idempotent and hash-stable through a JSON
  round-trip, compiling the same canonical spec twice yields
  bit-identical setup logs and packed columns, the recording survives
  its versioned payload round-trip, and the packed trace round-trips
  through the object event stream.  Items are raw phase dicts over a
  fixed base spec, so shrinking drops phases; sublists that are no
  longer valid specs are vacuously passing and ddmin converges on
  the smallest *valid* diverging spec.

A failing case is shrunk (:mod:`repro.testing.shrink`) against the
same lane predicate and written to the corpus directory as a JSON
reproducer; :func:`replay` re-runs a reproducer file, which is how a
checked-in corpus entry becomes a regression test.  Everything is
deterministic in (seed, case index).
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.cpu.trace import MemAccess, PackedTrace, TraceEvent, Work, XMemOp
from repro.testing import generators
from repro.testing.generators import GenConfig, setup_atoms
from repro.testing.oracles import (
    ReferenceCache,
    ReferenceDram,
    ReferenceEngine,
    ToyMemory,
)
from repro.testing.shrink import DEFAULT_BUDGET, shrink


# ---------------------------------------------------------------------------
# Event / item (de)serialization -- reproducers are plain JSON
# ---------------------------------------------------------------------------

def event_to_json(ev: TraceEvent) -> list:
    """One trace event as a JSON-ready list."""
    kind = type(ev)
    if kind is MemAccess:
        return ["M", ev.vaddr, int(ev.is_write), ev.work]
    if kind is Work:
        return ["W", ev.count]
    if kind is XMemOp:
        return ["X", ev.method, *ev.args]
    raise TypeError(f"not a trace event: {ev!r}")


def event_from_json(data: list) -> TraceEvent:
    """Inverse of :func:`event_to_json`."""
    tag = data[0]
    if tag == "M":
        return MemAccess(data[1], bool(data[2]), data[3])
    if tag == "W":
        return Work(data[1])
    if tag == "X":
        return XMemOp(data[1], *data[2:])
    raise ValueError(f"unknown event tag {tag!r}")


# ---------------------------------------------------------------------------
# Lanes
# ---------------------------------------------------------------------------

class Lane:
    """One differential lane: a generator, an oracle, a shrinker input.

    ``make(rng, length)`` draws (params, items); ``fail(params,
    items)`` re-runs the comparison and returns an error string (None
    when the models agree).  ``items`` must be a list the shrinker can
    take sublists of, and round-trip through ``to_json``/``from_json``.
    """

    name = "abstract"

    def make(self, rng: random.Random, length: int) -> Tuple[dict, list]:
        raise NotImplementedError

    def fail(self, params: dict, items: list) -> Optional[str]:
        raise NotImplementedError

    def to_json(self, items: list) -> list:
        return [list(item) for item in items]

    def from_json(self, data: list) -> list:
        return [tuple(item) for item in data]


class PackedLane(Lane):
    """Object stream vs. packed columns through identical full systems."""

    name = "packed"

    def make(self, rng: random.Random, length: int) -> Tuple[dict, list]:
        system = rng.choice(("baseline", "xmem", "xmem"))
        atoms = rng.randint(2, 6) if system == "xmem" else 0
        cfg = GenConfig(
            seed=rng.randrange(1 << 32),
            length=length,
            regions=rng.randint(2, 5),
            write_frac=rng.uniform(0.0, 0.6),
            atoms=atoms,
            churn=rng.uniform(0.1, 0.5) if atoms else 0.0,
        )
        events, _ = generators.generate_trace(cfg)
        params = {
            "system": system,
            "atoms": atoms,
            "window": rng.choice((2, 4, 8, 32)),
            "scale": rng.choice((32, 64)),
        }
        return params, events

    def _build(self, params: dict):
        import dataclasses as dc

        from repro.sim import build_baseline, build_xmem, scaled_config
        from repro.sim.config import CpuConfig

        cfg = scaled_config(params["scale"])
        cfg = dc.replace(cfg, cpu=CpuConfig(window=params["window"]))
        if params["system"] == "xmem":
            handle = build_xmem(cfg)
            setup_atoms(handle.xmemlib, GenConfig(atoms=params["atoms"]))
        else:
            handle = build_baseline(cfg)
        return handle

    def fail(self, params: dict, items: list) -> Optional[str]:
        obj_sys = self._build(params)
        packed_sys = self._build(params)
        stats_obj = obj_sys.run(list(items))
        stats_packed = packed_sys.run(PackedTrace.from_events(items))
        if stats_obj != stats_packed:
            return (f"engine stats diverged: object={stats_obj} "
                    f"packed={stats_packed}")
        snap_obj = obj_sys.stats_snapshot()
        snap_packed = packed_sys.stats_snapshot()
        if snap_obj != snap_packed:
            keys = _first_snapshot_delta(snap_obj, snap_packed)
            return f"stats snapshot diverged at {keys}"
        return None

    def to_json(self, items: list) -> list:
        return [event_to_json(ev) for ev in items]

    def from_json(self, data: list) -> list:
        return [event_from_json(item) for item in data]


class VectorLane(PackedLane):
    """Object vs. packed vs. vector engine tiers, tri-way.

    Same generator and system shapes as the ``packed`` lane (so the
    vector tier sees XMem side-tables, atom churn, and small windows);
    any pair diverging -- stats or full snapshot -- is a failure.  The
    vector tier legitimately falls back to the packed loop on shapes
    outside its domain; the comparison then still holds trivially, so
    the lane spends its cases where the fast path actually runs.
    """

    name = "vector"

    def fail(self, params: dict, items: list) -> Optional[str]:
        systems = {tier: self._build(params)
                   for tier in ("object", "packed", "vector")}
        stats = {}
        for tier, handle in systems.items():
            trace = (list(items) if tier == "object"
                     else PackedTrace.from_events(items))
            stats[tier] = handle.run(trace, engine_tier=tier)
        for tier in ("packed", "vector"):
            if stats[tier] != stats["object"]:
                return (f"{tier} tier stats diverged from object: "
                        f"object={stats['object']} "
                        f"{tier}={stats[tier]}")
        snaps = {tier: handle.stats_snapshot()
                 for tier, handle in systems.items()}
        for tier in ("packed", "vector"):
            if snaps[tier] != snaps["object"]:
                keys = _first_snapshot_delta(snaps["object"], snaps[tier])
                return (f"{tier} tier snapshot diverged from object "
                        f"at {keys}")
        return None


class CorunLane(Lane):
    """Legacy per-event co-run interleaver vs. the packed engine.

    The packed engine dispatches through ``run`` (so ineligible
    machine shapes legitimately fall back to the legacy loop and the
    comparison holds trivially, as in the vector lane); the oracle
    side always takes ``run_events``.  Core 0 optionally carries XMem
    semantics with atom churn, exercising yield-at-XMemOp scheduling
    and the shared pin controller under interleaving.
    """

    name = "corun"

    def make(self, rng: random.Random, length: int) -> Tuple[dict, list]:
        cores = rng.randint(2, 3)
        mode = rng.choice(("baseline", "xmem", "xmem"))
        atoms = rng.randint(2, 5) if mode == "xmem" else 0
        items: list = []
        for core in range(cores):
            cfg = GenConfig(
                seed=rng.randrange(1 << 32),
                length=max(1, length // cores),
                regions=rng.randint(2, 4),
                write_frac=rng.uniform(0.0, 0.6),
                atoms=atoms if core == 0 else 0,
                churn=rng.uniform(0.1, 0.4) if atoms and core == 0
                else 0.0,
            )
            events, _ = generators.generate_trace(cfg)
            items.extend((core, ev) for ev in events)
        params = {
            "cores": cores,
            "xmem": [0] if mode == "xmem" else [],
            "atoms": atoms,
            "scale": rng.choice((16, 32)),
        }
        return params, items

    def _build(self, params: dict):
        from repro.sim.config import scaled_config
        from repro.sim.corun import CorunSystem

        system = CorunSystem(scaled_config(params["scale"]),
                             params["cores"],
                             xmem_cores=tuple(params["xmem"]))
        for idx in params["xmem"]:
            setup_atoms(system.cores[idx].xmemlib,
                        GenConfig(atoms=params["atoms"]))
        return system

    def fail(self, params: dict, items: list) -> Optional[str]:
        streams: List[list] = [[] for _ in range(params["cores"])]
        for core, ev in items:
            streams[core].append(ev)
        obj_sys = self._build(params)
        stats_obj = obj_sys.run_events([list(s) for s in streams])
        packed_sys = self._build(params)
        stats_packed = packed_sys.run(
            [PackedTrace.from_events(s) for s in streams])
        if stats_obj != stats_packed:
            return (f"core stats diverged: object={stats_obj} "
                    f"packed={stats_packed}")
        snap_obj = obj_sys.stats_snapshot()
        snap_packed = packed_sys.stats_snapshot()
        if snap_obj != snap_packed:
            keys = _first_snapshot_delta(snap_obj, snap_packed)
            return f"stats snapshot diverged at {keys}"
        return None

    def to_json(self, items: list) -> list:
        return [[core, event_to_json(ev)] for core, ev in items]

    def from_json(self, data: list) -> list:
        return [(core, event_from_json(ev)) for core, ev in data]


class CacheLane(Lane):
    """Columnar LRU cache vs. the dict-of-lists reference."""

    name = "cache"

    def make(self, rng: random.Random, length: int) -> Tuple[dict, list]:
        sets = rng.choice((2, 4, 8))
        ways = rng.choice((1, 2, 4, 8))
        quota = rng.choice((0.0, 0.5, 0.75, 1.0))
        line = 64
        cfg = GenConfig(
            seed=rng.randrange(1 << 32),
            length=length,
            regions=1,
            # Tight region: ~4x the cache so sets see real contention.
            region_bytes=max(line * 8, sets * ways * line * 4),
            line_bytes=line,
        )
        items: list = []
        for addr in generators.generate_lines(cfg):
            r = rng.random()
            if r < 0.7:
                items.append(("acc", addr, int(rng.random() < 0.4),
                              int(rng.random() < 0.3)))
            elif r < 0.95:
                items.append(("fill", addr, int(rng.random() < 0.4),
                              int(rng.random() < 0.4)))
            else:
                items.append(("unpin",))
        params = {"sets": sets, "ways": ways, "line": line,
                  "quota": quota}
        return params, items

    def fail(self, params: dict, items: list) -> Optional[str]:
        from repro.mem.cache import Cache

        sets, ways, line = params["sets"], params["ways"], params["line"]
        cache = Cache("fuzz", sets * ways * line, ways, line,
                      policy="lru", pin_quota=params["quota"])
        ref = ReferenceCache(sets, ways, line, pin_quota=params["quota"])
        for step, item in enumerate(items):
            kind = item[0]
            if kind == "acc":
                _, addr, write, pin = item
                got = cache.access(addr, bool(write)).hit
                want = ref.access(addr, bool(write))
                if got != want:
                    return (f"step {step}: hit/miss diverged at "
                            f"{addr:#x} (cache={got} ref={want})")
                if not got:
                    got_wb = cache.fill(addr, dirty=bool(write),
                                        pinned=bool(pin))
                    want_wb = ref.fill(addr, dirty=bool(write),
                                       pinned=bool(pin))
                    if got_wb != want_wb:
                        return (f"step {step}: writeback diverged at "
                                f"{addr:#x} (cache={got_wb} "
                                f"ref={want_wb})")
            elif kind == "fill":
                _, addr, dirty, pin = item
                got_wb = cache.fill(addr, dirty=bool(dirty),
                                    pinned=bool(pin))
                want_wb = ref.fill(addr, dirty=bool(dirty),
                                   pinned=bool(pin))
                if got_wb != want_wb:
                    return (f"step {step}: direct-fill writeback "
                            f"diverged at {addr:#x} (cache={got_wb} "
                            f"ref={want_wb})")
            elif kind == "unpin":
                got_n = cache.unpin_all()
                want_n = ref.unpin_all()
                if got_n != want_n:
                    return (f"step {step}: unpin_all diverged "
                            f"(cache={got_n} ref={want_n})")
        seen = {item[1] for item in items if item[0] != "unpin"}
        got_resident = {a for a in seen if cache.probe(a)}
        want_resident = ref.resident_set()
        if got_resident != want_resident:
            return (f"resident sets diverged: only-cache="
                    f"{sorted(got_resident - want_resident)} only-ref="
                    f"{sorted(want_resident - got_resident)}")
        if cache.pinned_lines != ref.pinned_lines():
            return (f"pinned totals diverged: cache="
                    f"{cache.pinned_lines} ref={ref.pinned_lines()}")
        if (cache.stats.evictions, cache.stats.writebacks,
                cache.stats.pin_refusals) != (
                ref.evictions, ref.writebacks, ref.pin_refusals):
            return (f"counters diverged: cache=("
                    f"{cache.stats.evictions}, {cache.stats.writebacks},"
                    f" {cache.stats.pin_refusals}) ref=({ref.evictions},"
                    f" {ref.writebacks}, {ref.pin_refusals})")
        return None


class EngineLane(Lane):
    """Object loop vs. packed loop vs. naive reference engine."""

    name = "engine"

    def make(self, rng: random.Random, length: int) -> Tuple[dict, list]:
        cfg = GenConfig(
            seed=rng.randrange(1 << 32),
            length=length,
            work_frac=rng.uniform(0.0, 0.25),
            write_frac=rng.uniform(0.0, 0.6),
        )
        events, _ = generators.generate_trace(cfg)
        params = {
            "window": rng.choice((1, 2, 4, 8, 16)),
            "issue_width": rng.choice((1, 2, 4)),
            "mem_seed": rng.randrange(1 << 32),
            "miss_rate": round(rng.uniform(0.1, 0.9), 3),
        }
        return params, events

    def fail(self, params: dict, items: list) -> Optional[str]:
        from repro.cpu.engine import TraceEngine

        def toy() -> ToyMemory:
            return ToyMemory(params["mem_seed"],
                             miss_rate=params["miss_rate"])

        opt = TraceEngine(toy(), issue_width=params["issue_width"],
                          window=params["window"])
        got_obj = opt.run(list(items))
        opt_packed = TraceEngine(toy(), issue_width=params["issue_width"],
                                 window=params["window"])
        got_packed = opt_packed.run(PackedTrace.from_events(items))
        ref = ReferenceEngine(toy(), issue_width=params["issue_width"],
                              window=params["window"])
        want = ref.run(list(items))
        if got_obj != want:
            return f"object loop diverged: engine={got_obj} ref={want}"
        if got_packed != want:
            return f"packed loop diverged: engine={got_packed} ref={want}"
        return None

    def to_json(self, items: list) -> list:
        return [event_to_json(ev) for ev in items]

    def from_json(self, data: list) -> list:
        return [event_from_json(item) for item in data]


class DramLane(Lane):
    """FIFO-issued DramSystem vs. the naive open-row reference."""

    name = "dram"

    MAPPINGS = ("scheme1", "scheme2", "scheme3", "scheme5",
                "permutation", "xmem_interleaved")

    def make(self, rng: random.Random, length: int) -> Tuple[dict, list]:
        cfg = GenConfig(
            seed=rng.randrange(1 << 32),
            length=length,
            regions=rng.randint(1, 4),
            region_bytes=1 << rng.randint(14, 18),
            write_frac=rng.uniform(0.0, 0.5),
        )
        params = {"mapping": rng.choice(self.MAPPINGS)}
        return params, generators.generate_requests(cfg)

    def fail(self, params: dict, items: list) -> Optional[str]:
        from repro.dram.system import DramSystem

        dram = DramSystem(mapping=params["mapping"])
        ref = ReferenceDram(mapping=params["mapping"])
        for step, (paddr, arrival, is_write) in enumerate(items):
            res = dram.access(paddr, arrival, is_write=bool(is_write))
            outcome, latency, done = ref.access(paddr, arrival,
                                                bool(is_write))
            if (res.outcome.value, res.latency, res.completes_at) != (
                    outcome, latency, done):
                return (f"step {step}: {paddr:#x}@{arrival} diverged: "
                        f"dram=({res.outcome.value}, {res.latency}, "
                        f"{res.completes_at}) ref=({outcome}, {latency},"
                        f" {done})")
        s = dram.stats
        got = (s.reads, s.writes, s.row_hits, s.row_closed,
               s.row_conflicts, s.read_latency_sum, s.write_latency_sum)
        want = (ref.reads, ref.writes, ref.row_hits, ref.row_closed,
                ref.row_conflicts, ref.read_latency_sum,
                ref.write_latency_sum)
        if got != want:
            return f"final counters diverged: dram={got} ref={want}"
        return None


class SchedLane(Lane):
    """FR-FCFS service invariants over random request lists."""

    name = "sched"

    def make(self, rng: random.Random, length: int) -> Tuple[dict, list]:
        cfg = GenConfig(
            seed=rng.randrange(1 << 32),
            length=min(length, 200),     # service() is O(n^2)
            regions=rng.randint(1, 3),
            region_bytes=1 << rng.randint(13, 16),
        )
        params = {"mapping": rng.choice(DramLane.MAPPINGS)}
        return params, generators.generate_requests(cfg)

    def fail(self, params: dict, items: list) -> Optional[str]:
        from repro.dram.scheduler import FRFCFSScheduler, Request
        from repro.dram.system import DramSystem

        requests = [Request(paddr, arrival, bool(is_write), req_id=i)
                    for i, (paddr, arrival, is_write) in enumerate(items)]
        sched = FRFCFSScheduler(DramSystem(mapping=params["mapping"]))
        completions = sched.service(list(requests))
        if len(completions) != len(requests):
            return (f"{len(requests)} requests but "
                    f"{len(completions)} completions")
        served = sorted(c.request.req_id for c in completions)
        if served != list(range(len(requests))):
            return f"service multiset wrong: {served}"
        if sched.stats.serviced != len(requests):
            return (f"serviced counter {sched.stats.serviced} != "
                    f"{len(requests)}")
        if sched.stats.reordered > sched.stats.serviced:
            return "reordered exceeds serviced"
        for c in completions:
            if c.result.completes_at < c.request.arrival:
                return (f"request {c.request.req_id} completed at "
                        f"{c.result.completes_at} before arrival "
                        f"{c.request.arrival}")
            if c.latency < 0:
                return f"negative latency for request {c.request.req_id}"
        if sched.dram.stats.accesses != len(requests):
            return (f"dram serviced {sched.dram.stats.accesses} of "
                    f"{len(requests)} requests")
        return None


class ServeLane(Lane):
    """The ``repro serve`` HTTP surface under random and concurrent load.

    Each case boots a real in-process server (ephemeral port, disk
    trace cache off so cases are hermetic) and drives it with a random
    sequence of self-contained request descriptors: health/state
    probes, kernel and suite scenario builds, full run lifecycles, and
    deliberately malformed requests.  ``dup`` descriptors issue the
    same POST twice *concurrently* (barrier-synchronized threads), so
    the build-once and point-dedup paths are exercised under real
    races.  Cases drawn with the process executor also inject worker
    faults through the ``REPRO_SERVE_TEST_*`` hooks: ``crash`` ops run
    a scenario whose worker child exits mid-job (the point must fail,
    the server must stay healthy) and ``cancel`` ops DELETE a run
    whose point is stalled inside a worker (the child must die and the
    slot free).  The oracle is the server's own contract: documented
    status codes, JSON-only bodies, build-once accounting in
    ``/debug/state``, and a clean final state (no internal errors,
    failed points exactly matching the injected crashes, drained
    queue, bounded memo, healthy pool).
    """

    name = "serve"

    KERNEL_NAMES = ("mvt", "gemver", "jacobi2d")
    SUITE_NAMES = ("mcf", "libquantum", "milc")
    #: Every op runs real simulations; keep sequences short.
    MAX_OPS = 8
    #: Reserved fault-injection shapes -- ``n=10`` never appears in
    #: randomly drawn scenarios/runs, so the CRASH/SLOW env markers
    #: (one scenario hash each) cannot collide with normal ops.
    CRASH_SCENARIO = ("jacobi2d", 10, 4)
    SLOW_SCENARIO = ("gemver", 10, 4)

    def make(self, rng: random.Random, length: int) -> Tuple[dict, list]:
        executor = rng.choice(("thread", "process"))
        ops: list = []
        for _ in range(max(1, min(length // 50, self.MAX_OPS))):
            r = rng.random()
            dup = int(rng.random() < 0.5)
            if executor == "process" and r < 0.08:
                ops.append(("crash",))
            elif executor == "process" and r < 0.16:
                ops.append(("cancel",))
            elif r < 0.24:
                ops.append(("health",))
            elif r < 0.32:
                ops.append(("state",))
            elif r < 0.48:
                ops.append(("scenario", "kernel",
                            rng.choice(self.KERNEL_NAMES),
                            rng.choice((8, 12, 16)),
                            rng.choice((4, 8)), dup))
            elif r < 0.60:
                ops.append(("scenario", "suite",
                            rng.choice(self.SUITE_NAMES),
                            rng.choice((300, 500, 800)),
                            rng.choice((16, 64)), dup))
            elif r < 0.86:
                ops.append(("run", rng.choice(self.KERNEL_NAMES),
                            rng.choice((8, 12)), 4,
                            rng.choice((16, 32)), dup))
            else:
                ops.append(("bad", rng.randrange(6)))
        params = {"workers": rng.choice((1, 2)), "queue_limit": 32,
                  "executor": executor}
        return params, ops

    def fail(self, params: dict, items: list) -> Optional[str]:
        import http.client
        import os
        import threading
        import time

        from repro.serve.app import serve
        from repro.serve.pool import CRASH_ENV, SLOW_ENV

        executor = params.get("executor", "thread")
        crash_hash = _kernel_scenario_hash(*self.CRASH_SCENARIO)
        slow_hash = _kernel_scenario_hash(*self.SLOW_SCENARIO)
        # The markers must be in the environment before any worker
        # child spawns (children inherit it); scope them to this case.
        env_backup = {CRASH_ENV: os.environ.get(CRASH_ENV),
                      SLOW_ENV: os.environ.get(SLOW_ENV)}
        if executor == "process":
            os.environ[CRASH_ENV] = crash_hash
            os.environ[SLOW_ENV] = f"{slow_hash}:20"

        server = serve(port=0, workers=params["workers"],
                       queue_limit=params["queue_limit"], cache_dir="off",
                       executor=executor)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]

        def call(method: str, path: str, body: object = None,
                 raw: Optional[bytes] = None):
            payload = raw
            if payload is None and body is not None:
                payload = json.dumps(body).encode()
            conn = http.client.HTTPConnection(host, port, timeout=60)
            try:
                conn.request(method, path, body=payload,
                             headers={"Content-Type": "application/json"})
                resp = conn.getresponse()
                data = resp.read()
                status = resp.status
            finally:
                conn.close()
            try:
                return status, json.loads(data)
            except ValueError:
                return status, None

        def concurrent_pair(method: str, path: str, body: object):
            results: list = [None, None]
            barrier = threading.Barrier(2)

            def shoot(slot: int) -> None:
                barrier.wait()
                results[slot] = call(method, path, body)

            threads = [threading.Thread(target=shoot, args=(i,))
                       for i in (0, 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return results

        def post_scenario(body: object, dup: int):
            if dup:
                return concurrent_pair("POST", "/v1/scenarios", body)
            return [call("POST", "/v1/scenarios", body)]

        def wait_terminal(run_id: str):
            """The run's terminal document (with the ``running`` count
            drained -- a killed in-flight point lands asynchronously),
            or an error string."""
            deadline = time.monotonic() + 120
            doc = None
            while time.monotonic() < deadline:
                status, doc = call("GET", f"/v1/runs/{run_id}")
                if status != 200 or doc is None:
                    return f"poll {run_id}: HTTP {status}, doc {doc!r}"
                if doc["status"] in ("done", "failed", "cancelled") \
                        and doc["points"]["running"] == 0:
                    return doc
                time.sleep(0.02)
            return (f"{run_id} still "
                    f"{doc['status'] if doc else 'unpolled'} after "
                    f"120s")

        def wait_run(run_id: str) -> Optional[str]:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                status, doc = call("GET", f"/v1/runs/{run_id}")
                if status != 200 or doc is None:
                    return f"poll {run_id}: HTTP {status}, doc {doc!r}"
                if doc["status"] in ("done", "failed", "cancelled"):
                    if doc["status"] != "done":
                        return (f"{run_id} ended {doc['status']}: "
                                f"{doc.get('errors')}")
                    for name, d in (doc.get("documents") or {}).items():
                        kind = (d or {}).get("manifest", {}).get("kind")
                        if kind != "servepoint":
                            return (f"{run_id} doc {name}: kind "
                                    f"{kind!r} != 'servepoint'")
                        if "stats" not in d:
                            return f"{run_id} doc {name}: no stats"
                    return None
                time.sleep(0.02)
            return f"{run_id} still {doc['status']} after 120s"

        # Per-hash count of created=True responses: build-once says
        # the whole session sees exactly one per distinct scenario.
        created: Dict[str, int] = {}
        #: Injected worker crashes; the only tolerated failed points.
        expected_crashes = 0

        def check_scenario(results, want_hash_of=None) -> Optional[str]:
            hashes = set()
            for status, doc in results:
                if status not in (200, 201) or doc is None:
                    return (f"scenario POST: HTTP {status}, "
                            f"doc {doc!r}")
                hashes.add(doc["scenario"])
                if doc["created"]:
                    created[doc["scenario"]] = (
                        created.get(doc["scenario"], 0) + 1)
                else:
                    created.setdefault(doc["scenario"], 0)
            if len(hashes) != 1:
                return f"duplicate POSTs returned hashes {hashes}"
            return None

        bad_cases = (
            ("POST", "/v1/scenarios", {"kernel": "nope"}, None, 400),
            ("POST", "/v1/scenarios", {"kernel": "mvt", "n": -3},
             None, 400),
            ("POST", "/v1/runs",
             {"scenario": "0" * 16, "configs": [{}]}, None, 404),
            ("POST", "/v1/runs", {}, None, 400),
            ("GET", "/v1/runs/run-999999", None, None, 404),
            ("POST", "/v1/scenarios", None, b"not json", 400),
        )

        try:
            for step, item in enumerate(items):
                op = item[0]
                where = f"step {step} [{op}]"
                if op == "health":
                    status, doc = call("GET", "/health")
                    if status != 200 or doc is None:
                        return (f"{where}: HTTP {status}, doc {doc!r}")
                    missing = {"status", "queue_depth", "workers",
                               "engine_tier"} - set(doc)
                    if missing:
                        return f"{where}: missing keys {sorted(missing)}"
                elif op == "state":
                    status, doc = call("GET", "/debug/state")
                    if status != 200 or doc is None:
                        return f"{where}: HTTP {status}, doc {doc!r}"
                    missing = {"serve", "queue", "workers", "pool",
                               "memo", "scenarios", "runs"} - set(doc)
                    if missing:
                        return f"{where}: missing keys {sorted(missing)}"
                elif op == "scenario":
                    _, kind, workload, n, tile, dup = item
                    if kind == "kernel":
                        body = {"kernel": workload, "n": n, "tile": tile}
                    else:
                        body = {"workload": workload, "accesses": n,
                                "footprint_div": tile}
                    error = check_scenario(post_scenario(body, dup))
                    if error:
                        return f"{where}: {error}"
                elif op == "run":
                    _, kernel, n, tile, scale, dup = item
                    error = check_scenario(post_scenario(
                        {"kernel": kernel, "n": n, "tile": tile}, 0))
                    if error:
                        return f"{where}: {error}"
                    run_body = {"scenario": _kernel_scenario_hash(
                        kernel, n, tile), "configs": [{"scale": scale}]}
                    if dup:
                        results = concurrent_pair("POST", "/v1/runs",
                                                  run_body)
                    else:
                        results = [call("POST", "/v1/runs", run_body)]
                    new_total = 0
                    for status, doc in results:
                        if status != 202 or doc is None:
                            return (f"{where}: HTTP {status}, "
                                    f"doc {doc!r}")
                        if doc["new"] + doc["deduped"] != doc["points"]:
                            return (f"{where}: new {doc['new']} + "
                                    f"deduped {doc['deduped']} != "
                                    f"points {doc['points']}")
                        new_total += doc["new"]
                    if new_total > results[0][1]["points"]:
                        # The point table must hand each (scenario,
                        # config) pair to exactly one submission.
                        return (f"{where}: {new_total} creations for "
                                f"{results[0][1]['points']} point(s)")
                    for _, doc in results:
                        error = wait_run(doc["run"])
                        if error:
                            return f"{where}: {error}"
                elif op == "bad":
                    method, path, body, raw, want = bad_cases[item[1]]
                    status, doc = call(method, path, body, raw=raw)
                    if status != want or doc is None:
                        return (f"{where}: {method} {path} gave HTTP "
                                f"{status} (doc {doc!r}), want {want}")
                    if "error" not in doc:
                        return f"{where}: {want} body without error key"
                elif op == "crash":
                    kernel, n, tile = self.CRASH_SCENARIO
                    error = check_scenario(post_scenario(
                        {"kernel": kernel, "n": n, "tile": tile}, 0))
                    if error:
                        return f"{where}: {error}"
                    status, doc = call("POST", "/v1/runs",
                                       {"scenario": crash_hash,
                                        "configs": [{}]})
                    if status != 202 or doc is None:
                        return f"{where}: HTTP {status}, doc {doc!r}"
                    expected_crashes += 1
                    final = wait_terminal(doc["run"])
                    if not isinstance(final, dict):
                        return f"{where}: {final}"
                    if final["status"] != "failed":
                        return (f"{where}: crash run ended "
                                f"{final['status']!r}, want 'failed'")
                    errors = " ".join((final.get("errors")
                                       or {}).values())
                    if "worker crashed" not in errors:
                        return (f"{where}: crash run errors "
                                f"{final.get('errors')!r} do not "
                                f"mention the worker crash")
                    status, doc = call("GET", "/health")
                    if status != 200:
                        return (f"{where}: health {status} after a "
                                f"worker crash -- not isolated")
                elif op == "cancel":
                    kernel, n, tile = self.SLOW_SCENARIO
                    error = check_scenario(post_scenario(
                        {"kernel": kernel, "n": n, "tile": tile}, 0))
                    if error:
                        return f"{where}: {error}"
                    status, doc = call("POST", "/v1/runs",
                                       {"scenario": slow_hash,
                                        "configs": [{}]})
                    if status != 202 or doc is None:
                        return f"{where}: HTTP {status}, doc {doc!r}"
                    run_id = doc["run"]
                    # Let the point reach a worker (it stalls there
                    # for 20 s) -- or cancel it while still queued;
                    # both must leave clean state.
                    deadline = time.monotonic() + 15
                    while time.monotonic() < deadline:
                        status, doc = call("GET", f"/v1/runs/{run_id}")
                        if status != 200 or doc is None:
                            return (f"{where}: poll HTTP {status}, "
                                    f"doc {doc!r}")
                        if doc["points"]["running"]:
                            break
                        time.sleep(0.02)
                    status, doc = call("DELETE", f"/v1/runs/{run_id}")
                    if status != 200:
                        return (f"{where}: DELETE gave {status}, "
                                f"doc {doc!r}")
                    final = wait_terminal(run_id)
                    if not isinstance(final, dict):
                        return f"{where}: {final}"
                    if final["status"] != "cancelled":
                        return (f"{where}: cancelled run ended "
                                f"{final['status']!r}")
                else:
                    return f"{where}: unknown op {op!r}"

            status, doc = call("GET", "/debug/state")
            if status != 200 or doc is None:
                return f"final state: HTTP {status}, doc {doc!r}"
            counters = doc["serve"]
            if counters["internal_errors"]:
                return (f"final state: {counters['internal_errors']} "
                        f"internal error(s)")
            if counters["points_failed"] != expected_crashes:
                return (f"final state: {counters['points_failed']} "
                        f"failed point(s), want exactly the "
                        f"{expected_crashes} injected crash(es)")
            if counters["workers_crashed"] != expected_crashes:
                return (f"final state: workers_crashed "
                        f"{counters['workers_crashed']} != "
                        f"{expected_crashes} injected crash(es)")
            over = [h for h, c in created.items() if c > 1]
            if over:
                return f"build-once violated for scenarios {over}"
            if created and counters["scenarios_built"] != len(created):
                return (f"scenarios_built {counters['scenarios_built']}"
                        f" != {len(created)} distinct scenario(s)")
            if doc["queue"]["depth"] != 0:
                return (f"final state: queue depth "
                        f"{doc['queue']['depth']} after all runs done")
            if doc["memo"]["entries"] > doc["memo"]["limit"]:
                return (f"final state: memo {doc['memo']['entries']} "
                        f"entries over limit {doc['memo']['limit']}")
            if doc["pool"]["executor"] != executor:
                return (f"final state: pool executor "
                        f"{doc['pool']['executor']!r} != {executor!r}")
            status, health = call("GET", "/health")
            if status != 200 or health is None \
                    or health["status"] != "ok":
                return (f"final health: HTTP {status}, "
                        f"doc {health!r} -- pool not healthy after "
                        f"the case")
            return None
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=10)
            for var, old in env_backup.items():
                if old is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = old


class ScenarioLane(Lane):
    """Workload-spec canonicalization and compile determinism.

    The generator draws a random but *valid* base spec (regions,
    atoms, global knobs) into ``params`` and a list of raw phase
    dicts as the shrinkable ``items``.  There is no second
    implementation to diff against; the oracle is the scenario
    pipeline's own contract, every clause of which the trace cache
    and the manifest hashes depend on.  A shrunk sublist can stop
    being a valid spec (e.g. zero phases); ``fail`` treats
    :class:`~repro.core.errors.ScenarioError` on a candidate as
    vacuously passing so ddmin only explores real specs.
    """

    name = "scenario"

    PATTERNS = ("regular", "irregular", "non_det")
    RW = ("read_only", "read_write", "write_heavy")
    MAX_PHASES = 8

    def make(self, rng: random.Random, length: int) -> Tuple[dict, list]:
        regions = [{"name": f"r{i}",
                    "bytes": rng.choice((4096, 8192, 16384))}
                   for i in range(rng.randint(1, 3))]
        atoms = []
        for i in range(rng.randint(0, 2)):
            pattern = rng.choice(self.PATTERNS)
            atom = {"name": f"a{i}",
                    "region": rng.choice(regions)["name"],
                    "pattern": pattern,
                    "rw": rng.choice(self.RW),
                    "intensity": rng.randrange(256),
                    "reuse": rng.randrange(256)}
            if pattern == "regular":
                atom["stride_bytes"] = rng.choice((64, 128, 256))
            atoms.append(atom)
        base = {"kind": "workload", "name": "fuzzspec",
                "seed": rng.randrange(1 << 16), "line_bytes": 64,
                "work_per_access": rng.choice((0, 1, 2)),
                "regions": regions, "atoms": atoms}
        items = [self._phase(rng, regions)
                 for _ in range(max(1, min(length // 50,
                                           self.MAX_PHASES)))]
        return {"base": base}, items

    def _phase(self, rng: random.Random, regions: list) -> dict:
        region = rng.choice(regions)
        lines = region["bytes"] // 64
        kind = rng.choice(("strided", "pointer_chase", "hot_set",
                           "mix"))
        accesses = rng.randint(50, 400)
        wf = round(rng.uniform(0.0, 0.8), 3)
        if kind == "strided":
            return {"kind": kind, "region": region["name"],
                    "accesses": accesses,
                    "stride_lines": rng.choice((1, 2, 3, 8, 16)),
                    "start_line": rng.randrange(lines),
                    "write_frac": wf}
        if kind == "pointer_chase":
            return {"kind": kind, "region": region["name"],
                    "accesses": accesses, "write_frac": wf}
        if kind == "hot_set":
            return {"kind": kind, "region": region["name"],
                    "accesses": accesses,
                    "hot_lines": rng.randint(1, min(64, lines)),
                    "hot_frac": round(rng.uniform(0.3, 0.95), 3),
                    "write_frac": wf}
        min_lines = min(r["bytes"] // 64 for r in regions)
        lo = rng.randint(1, 8)
        return {"kind": "mix",
                "regions": [r["name"] for r in regions],
                "accesses": accesses,
                "weights": [rng.randint(1, 4) for _ in range(3)],
                "run_len": [lo, lo + rng.randint(0, 24)],
                "hot_lines": rng.randint(1, min(64, min_lines)),
                "write_frac": wf}

    def fail(self, params: dict, items: list) -> Optional[str]:
        from repro.core.errors import ScenarioError
        from repro.scenarios import (
            canonical_json,
            canonicalize,
            compile_canonical,
            spec_hash,
        )
        from repro.sim.runner import TraceRecording

        if not items:
            return None
        body = dict(params["base"])
        body["phases"] = [dict(p) for p in items]
        try:
            canonical = canonicalize(body)
        except ScenarioError:
            return None    # shrunk candidate is not a valid spec
        again = canonicalize(json.loads(canonical_json(canonical)))
        if again != canonical:
            return "canonicalize is not idempotent over its own output"
        if spec_hash(again) != spec_hash(canonical):
            return (f"spec hash unstable through JSON round-trip: "
                    f"{spec_hash(canonical)} != {spec_hash(again)}")
        rec_a = compile_canonical(canonical)
        rec_b = compile_canonical(json.loads(canonical_json(canonical)))
        if rec_a.setup != rec_b.setup:
            return "setup logs diverged between identical compiles"
        if rec_a.packed != rec_b.packed:
            ca, cb = rec_a.packed.counts(), rec_b.packed.counts()
            return (f"packed traces diverged between identical "
                    f"compiles: counts {ca} vs {cb}")
        back = TraceRecording.from_payload(rec_a.to_payload())
        if back.packed != rec_a.packed or back.setup != rec_a.setup:
            return "recording diverged through payload round-trip"
        if PackedTrace.from_events(list(rec_a.packed.events())) \
                != rec_a.packed:
            return "packed trace diverged through object event stream"
        return None

    def to_json(self, items: list) -> list:
        return [dict(p) for p in items]

    def from_json(self, data: list) -> list:
        return [dict(p) for p in data]


def _kernel_scenario_hash(kernel: str, n: int, tile: int) -> str:
    """Client-side scenario hash, for addressing runs in the lane."""
    from repro.serve.scenarios import ScenarioSpec

    return ScenarioSpec(kind="kernel", workload=kernel, n=n,
                        tile=tile).scenario_hash


LANES: Dict[str, Lane] = {
    lane.name: lane
    for lane in (PackedLane(), VectorLane(), CorunLane(), CacheLane(),
                 EngineLane(), DramLane(), SchedLane(), ServeLane(),
                 ScenarioLane())
}


def _first_snapshot_delta(a: dict, b: dict, prefix: str = "") -> str:
    """The first differing key path between two nested snapshots."""
    for key in sorted(set(a) | set(b)):
        path = f"{prefix}{key}"
        va, vb = a.get(key), b.get(key)
        if isinstance(va, dict) and isinstance(vb, dict):
            if va != vb:
                return _first_snapshot_delta(va, vb, f"{path}.")
        elif va != vb:
            return f"{path}: {va!r} != {vb!r}"
    return "<no delta>"


# ---------------------------------------------------------------------------
# The fuzz loop
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class FuzzFailure:
    """One diverging case, after shrinking."""

    lane: str
    case_index: int
    params: dict
    items: list
    error: str
    original_size: int

    def reproducer(self) -> dict:
        """The JSON document written to the corpus."""
        return {
            "lane": self.lane,
            "case_index": self.case_index,
            "params": self.params,
            "items": LANES[self.lane].to_json(self.items),
            "error": self.error,
            "original_size": self.original_size,
        }


@dataclasses.dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` sweep."""

    cases: int
    per_lane: Dict[str, int]
    failures: List[FuzzFailure]
    corpus_paths: List[Path]

    @property
    def ok(self) -> bool:
        return not self.failures


def case_rng(seed: int, case_index: int) -> random.Random:
    """The per-case RNG: deterministic in (sweep seed, case index)."""
    return random.Random((seed << 24) ^ (case_index * 0x9E3779B1))


def run_case(lane: Lane, seed: int, case_index: int,
             length: int) -> Optional[FuzzFailure]:
    """Generate and run one case; None when the models agree."""
    rng = case_rng(seed, case_index)
    params, items = lane.make(rng, length)
    error = lane.fail(params, items)
    if error is None:
        return None
    return FuzzFailure(lane=lane.name, case_index=case_index,
                       params=params, items=items, error=error,
                       original_size=len(items))


def shrink_failure(failure: FuzzFailure,
                   budget: int = DEFAULT_BUDGET) -> FuzzFailure:
    """Shrink a failure's items against its own lane predicate."""
    lane = LANES[failure.lane]

    def still_fails(candidate: list) -> bool:
        return lane.fail(failure.params, candidate) is not None

    small = shrink(failure.items, still_fails, budget=budget)
    error = lane.fail(failure.params, small)
    return dataclasses.replace(failure, items=small,
                               error=error or failure.error)


def write_reproducer(corpus_dir: Path, failure: FuzzFailure) -> Path:
    """One JSON reproducer file per failure, name keyed by the case."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"{failure.lane}-case{failure.case_index:05d}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(failure.reproducer(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def run_fuzz(cases: int, seed: int = 0, length: int = 400,
             lanes: Optional[List[str]] = None,
             corpus_dir: Optional[Path] = None,
             shrink_budget: int = DEFAULT_BUDGET,
             log: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """The ``repro fuzz`` engine: N cases round-robin over the lanes.

    Failing cases are shrunk and (when ``corpus_dir`` is given) written
    as reproducers.  Fuzzing continues past failures so one sweep
    reports every diverging lane.
    """
    names = list(lanes) if lanes else list(LANES)
    unknown = [n for n in names if n not in LANES]
    if unknown:
        raise ValueError(
            f"unknown lanes {unknown}; choices: {sorted(LANES)}")
    per_lane: Dict[str, int] = {n: 0 for n in names}
    failures: List[FuzzFailure] = []
    paths: List[Path] = []
    for i in range(cases):
        lane = LANES[names[i % len(names)]]
        per_lane[lane.name] += 1
        failure = run_case(lane, seed, i, length)
        if failure is None:
            continue
        if log:
            log(f"case {i} [{lane.name}]: FAILED ({failure.error}); "
                f"shrinking {len(failure.items)} items...")
        failure = shrink_failure(failure, budget=shrink_budget)
        failures.append(failure)
        if log:
            log(f"case {i} [{lane.name}]: shrunk to "
                f"{len(failure.items)} items: {failure.error}")
        if corpus_dir is not None:
            paths.append(write_reproducer(corpus_dir, failure))
    return FuzzReport(cases=cases, per_lane=per_lane,
                      failures=failures, corpus_paths=paths)


# ---------------------------------------------------------------------------
# Reproducer replay
# ---------------------------------------------------------------------------

def load_reproducer(path: Path) -> Tuple[Lane, dict, list]:
    """(lane, params, items) from a corpus JSON document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    lane = LANES[doc["lane"]]
    return lane, doc["params"], lane.from_json(doc["items"])


def replay(path: Path) -> Optional[str]:
    """Re-run one reproducer; the lane's error, or None when fixed."""
    lane, params, items = load_reproducer(path)
    return lane.fail(params, items)
