"""Seeded random workload generators for the differential lanes.

Real workloads (the 12 polybench kernels, the 27 suite models) cover a
narrow, well-behaved slice of input space.  These generators produce
adversarial mixes from a seed, deterministically:

* :func:`generate_trace` -- a phased stream of
  :class:`~repro.cpu.trace.MemAccess`/:class:`~repro.cpu.trace.Work`
  events: strided runs, pointer-chase-like runs (an LCG walk inside a
  region), and hot-set runs (a small set hammered with occasional cold
  lines), optionally interleaved with
  :class:`~repro.cpu.trace.XMemOp` atom churn
  (map/unmap/remap/activate/deactivate over pre-created atoms).  Both
  the object stream and the equivalent :class:`PackedTrace` come from
  the same emission, so the pair is a ready-made packed-vs-object
  differential input.
* :func:`generate_lines` -- a raw line-address stream with the same
  phase structure, for cache-level lanes.
* :func:`generate_requests` -- timed (paddr, arrival, is_write)
  request tuples for the DRAM/scheduler lanes, arrival-sorted, with
  bank-conflict-prone address clustering.
* :func:`setup_atoms` -- the deterministic ``create_atom`` prologue a
  trace with churn expects; call it on each fresh system before
  running, with the same config, to recreate identical atom IDs.

Everything is a pure function of its :class:`GenConfig`; no global
RNG state is touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cpu.trace import (
    MemAccess,
    PackedTrace,
    TraceBuilder,
    TraceEvent,
    Work,
    XMemOp,
)

#: AAM chunk granularity -- atom map/unmap ranges are chunk-aligned so
#: pinning decisions see clean spans.
CHUNK = 512


@dataclass(frozen=True)
class GenConfig:
    """Shape of one generated workload (a pure function of these)."""

    seed: int = 0
    length: int = 400               # dense (MemAccess/Work) events
    regions: int = 4                # distinct address regions
    region_bytes: int = 1 << 15     # bytes per region
    base: int = 0x4_0000            # first region's base address
    line_bytes: int = 64
    write_frac: float = 0.3
    work_frac: float = 0.08         # probability of a Work event
    max_work: int = 12
    run_len: Tuple[int, int] = (4, 40)   # accesses per phase run
    hot_lines: int = 8              # hot-set size, in lines
    #: Phase weights: (strided, pointer-chase, hot-set).
    mix: Tuple[float, float, float] = (1.0, 1.0, 1.0)
    #: Atoms available for churn ops (0 = pure MemAccess/Work trace).
    atoms: int = 0
    #: Probability of an XMemOp burst between phase runs.
    churn: float = 0.25

    def region_base(self, idx: int) -> int:
        """Base address of region ``idx``."""
        return self.base + idx * self.region_bytes


def setup_atoms(lib, cfg: GenConfig) -> List[int]:
    """Create ``cfg.atoms`` atoms on ``lib``, deterministically.

    Attributes vary by index (alternating reuse/pattern) so the cache
    controller pins some atoms and ignores others.  Returns the IDs in
    creation order -- the IDs the generated ``XMemOp`` events name.
    """
    from repro.core.attributes import PatternType

    ids: List[int] = []
    for i in range(cfg.atoms):
        ids.append(lib.create_atom(
            f"fuzz{i}",
            pattern=(PatternType.REGULAR if i % 2 == 0
                     else PatternType.IRREGULAR),
            stride_bytes=8 if i % 2 == 0 else None,
            reuse=(255 - 16 * i) if i % 3 != 2 else 0,
            access_intensity=i % 8,
        ))
    return ids


class _Churn:
    """Tracks per-atom mapped ranges so unmaps stay structurally valid."""

    def __init__(self, cfg: GenConfig, rng: random.Random) -> None:
        self.cfg = cfg
        self.rng = rng
        self.mapped: List[List[Tuple[int, int]]] = [
            [] for _ in range(cfg.atoms)
        ]
        self.active = [False] * cfg.atoms

    def _span(self) -> Tuple[int, int]:
        cfg, rng = self.cfg, self.rng
        region = rng.randrange(cfg.regions)
        size = CHUNK * rng.randint(1, max(1, cfg.region_bytes // CHUNK // 4))
        start = cfg.region_base(region) + CHUNK * rng.randrange(
            max(1, (cfg.region_bytes - size) // CHUNK + 1))
        return start, size

    def ops(self) -> List[XMemOp]:
        """One churn burst: 1-3 ops over the atom pool."""
        cfg, rng = self.cfg, self.rng
        out: List[XMemOp] = []
        for _ in range(rng.randint(1, 3)):
            atom = rng.randrange(cfg.atoms)
            kind = rng.random()
            if kind < 0.35:
                start, size = self._span()
                self.mapped[atom].append((start, size))
                out.append(XMemOp("atom_map", atom, start, size))
            elif kind < 0.55 and self.mapped[atom]:
                start, size = self.mapped[atom].pop(
                    rng.randrange(len(self.mapped[atom])))
                out.append(XMemOp("atom_unmap", atom, start, size))
            elif kind < 0.75:
                start, size = self._span()
                self.mapped[atom] = [(start, size)]
                out.append(XMemOp("atom_remap", atom, start, size))
            elif kind < 0.9 or not self.active[atom]:
                self.active[atom] = True
                out.append(XMemOp("atom_activate", atom))
            else:
                self.active[atom] = False
                out.append(XMemOp("atom_deactivate", atom))
        return out


def _phase_addrs(cfg: GenConfig, rng: random.Random,
                 count: int) -> List[int]:
    """One phase run of ``count`` line-aligned addresses."""
    line = cfg.line_bytes
    lines_per_region = cfg.region_bytes // line
    total = cfg.mix[0] + cfg.mix[1] + cfg.mix[2]
    pick = rng.random() * total
    region_base = cfg.region_base(rng.randrange(cfg.regions))
    out: List[int] = []
    if pick < cfg.mix[0]:
        # Strided run: fixed stride from a random start, wrapped.
        stride = rng.choice((1, 1, 2, 3, 5, 8, 16)) * line
        pos = rng.randrange(lines_per_region) * line
        for _ in range(count):
            out.append(region_base + pos % cfg.region_bytes)
            pos += stride
    elif pick < cfg.mix[0] + cfg.mix[1]:
        # Pointer-chase-like: an LCG walk -- every address depends on
        # the previous one, defeating stride prefetchers.
        pos = rng.randrange(lines_per_region)
        for _ in range(count):
            out.append(region_base + pos * line)
            pos = (pos * 1103515245 + 12345) % lines_per_region
    else:
        # Hot set with occasional cold lines.
        hot = [rng.randrange(lines_per_region) * line
               for _ in range(cfg.hot_lines)]
        for _ in range(count):
            if rng.random() < 0.85:
                out.append(region_base + rng.choice(hot))
            else:
                out.append(region_base
                           + rng.randrange(lines_per_region) * line)
    return out


def generate_trace(cfg: GenConfig
                   ) -> Tuple[List[TraceEvent], PackedTrace]:
    """The (object stream, packed trace) pair for one config.

    Both come from one emission pass, so they are equivalent by
    construction *of the generator*; whether the engine agrees is what
    the packed lane tests.
    """
    rng = random.Random(cfg.seed)
    events: List[TraceEvent] = []
    builder = TraceBuilder()
    churn = _Churn(cfg, rng) if cfg.atoms else None
    dense = 0
    while dense < cfg.length:
        if churn is not None and rng.random() < cfg.churn:
            for op in churn.ops():
                events.append(op)
                builder.op(op)
        count = min(rng.randint(*cfg.run_len), cfg.length - dense)
        for addr in _phase_addrs(cfg, rng, count):
            if rng.random() < cfg.work_frac:
                work = rng.randint(1, cfg.max_work)
                events.append(Work(work))
                builder.work(work)
                dense += 1
                if dense >= cfg.length:
                    break
            is_write = rng.random() < cfg.write_frac
            inline_work = rng.randint(0, 3)
            events.append(MemAccess(addr, is_write, inline_work))
            builder.access(addr, is_write, inline_work)
            dense += 1
            if dense >= cfg.length:
                break
    return events, builder.build()


def generate_lines(cfg: GenConfig, count: Optional[int] = None
                   ) -> List[int]:
    """A phased line-address stream (cache-lane input)."""
    rng = random.Random(cfg.seed)
    want = count if count is not None else cfg.length
    out: List[int] = []
    while len(out) < want:
        run = min(rng.randint(*cfg.run_len), want - len(out))
        out.extend(_phase_addrs(cfg, rng, run))
    return out[:want]


def generate_requests(cfg: GenConfig, count: Optional[int] = None
                      ) -> List[Tuple[int, float, bool]]:
    """Timed (paddr, arrival, is_write) tuples, arrival-sorted.

    Addresses reuse the phase generator (clustered runs make row hits
    and bank conflicts both likely); inter-arrival gaps are a seeded
    mix of bursts (0) and idle gaps, quantized to 0.25 cycles so
    arrival arithmetic stays exact in binary floating point.
    """
    rng = random.Random(cfg.seed + 0x5EED)
    addrs = generate_lines(cfg, count)
    out: List[Tuple[int, float, bool]] = []
    arrival = 0.0
    for addr in addrs:
        if rng.random() < 0.4:
            arrival += rng.randrange(0, 200) / 4.0
        out.append((addr, arrival, rng.random() < cfg.write_frac))
    return out
