"""Property/differential testing for the optimized memory system.

The hot paths of this reproduction (packed traces, the zero-object
engine loop, the columnar cache, the flattened MSHR/scheduler paths)
each have a second, simpler way to compute the same answer.  This
package holds that second way and the machinery to compare the two:

* :mod:`repro.testing.checks` -- the ``REPRO_CHECK=1`` runtime
  invariant hooks the engine/cache/MSHR/scheduler install on
  themselves (zero-cost when disabled);
* :mod:`repro.testing.oracles` -- executable reference models: a
  dict-of-lists LRU cache, a naive in-order miss engine, a FIFO
  open-row DRAM model, and a seeded toy memory for engine lanes;
* :mod:`repro.testing.generators` -- seeded random trace/request
  generators (strided, pointer-chase-like, hot-set, atom churn);
* :mod:`repro.testing.shrink` -- the greedy delta-debugging shrinker;
* :mod:`repro.testing.fuzz` -- the differential lanes behind
  ``repro fuzz``: optimized vs. reference, failing cases shrunk to
  minimal reproducers and written to a corpus directory.

This ``__init__`` is deliberately import-light: production modules
import :mod:`repro.testing.checks` at module load, and anything
heavier here would create an import cycle back into ``repro.mem``.
"""

from __future__ import annotations

_SUBMODULES = ("checks", "oracles", "generators", "shrink", "fuzz")


def __getattr__(name: str):
    if name in _SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.testing.{name}")
    raise AttributeError(f"module 'repro.testing' has no attribute {name!r}")
