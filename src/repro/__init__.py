"""repro: a full-system reproduction of XMem (Expressive Memory, ISCA 2018).

The package is organized as the paper's system stack:

* :mod:`repro.core` -- the XMem contribution: the Atom abstraction,
  XMemLib, and the AAM/AST/GAT/PAT/AMU machinery.
* :mod:`repro.mem` -- cache-hierarchy substrate (caches, replacement
  policies, prefetchers, MSHRs).
* :mod:`repro.dram` -- DRAM substrate (banks, row buffers, FR-FCFS,
  address-mapping schemes).
* :mod:`repro.xos` -- OS substrate (page tables, allocators, the
  program loader, and the Use-Case-2 page-placement policy).
* :mod:`repro.cpu` -- trace events and the window-limited timing engine.
* :mod:`repro.policies` -- the two evaluated use cases (Section 5 cache
  management, Section 6 DRAM placement).
* :mod:`repro.workloads` -- Polybench kernels with PLUTO-style tiling
  and the 27-workload suite for Use Case 2.
* :mod:`repro.sim` -- full-system composition and experiment runners.

Quickstart::

    from repro import XMemLib, PatternType

    xmem = XMemLib()
    tile = xmem.create_atom("tile", pattern=PatternType.REGULAR,
                            stride_bytes=8, reuse=255)
    xmem.atom_map(tile, start=0x10000, size=64 * 1024)
    xmem.atom_activate(tile)

See ``examples/quickstart.py`` for the end-to-end version with a
simulated memory hierarchy attached.
"""

from repro.core import (
    AddressRange,
    Atom,
    AtomAttributes,
    DataProperty,
    DataType,
    PatternType,
    RWChar,
    XMemError,
    XMemLib,
    XMemProcess,
    make_attributes,
)

__version__ = "1.0.0"

__all__ = [
    "AddressRange",
    "Atom",
    "AtomAttributes",
    "DataProperty",
    "DataType",
    "PatternType",
    "RWChar",
    "XMemError",
    "XMemLib",
    "XMemProcess",
    "make_attributes",
    "__version__",
]
