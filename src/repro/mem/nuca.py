"""NUCA slice placement from atom semantics (Table 1, row 9).

A non-uniform cache architecture exposes multiple LLC slices with
distance-dependent latency from each core.  Blind designs hash
addresses across slices (uniform but always average-distance);
reactive designs migrate hot lines.  With atoms, the paper's row-9
benefits are (i) different policies per data pool and (ii) no reactive
detection of sharing/RW behaviour: placement can be decided up front
from access intensity and private/shared semantics.

The model: ``NucaMachine`` gives per-(core, slice) latencies on a ring;
``plan_nuca_placement`` assigns each atom a home slice -- hot private
data next to its core, shared data at the distance-minimizing slice,
cold data wherever capacity remains -- against per-slice capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.attributes import AtomAttributes
from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class NucaMachine:
    """Ring of cores, one LLC slice adjacent to each core."""

    slices: int = 8
    base_latency: float = 12.0
    hop_latency: float = 4.0
    slice_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.slices <= 0:
            raise ConfigurationError("need at least one slice")

    def latency(self, core: int, slice_idx: int) -> float:
        """Access latency from ``core`` to ``slice_idx`` on the ring."""
        if not (0 <= core < self.slices and 0 <= slice_idx < self.slices):
            raise ConfigurationError("core/slice out of range")
        dist = abs(core - slice_idx)
        hops = min(dist, self.slices - dist)
        return self.base_latency + hops * self.hop_latency


@dataclass(frozen=True)
class NucaCandidate:
    """One data pool with its per-core access shares."""

    atom_id: int
    attributes: AtomAttributes
    size_bytes: int
    accesses_by_core: Tuple[float, ...]

    @property
    def total_accesses(self) -> float:
        """Summed access weight across cores."""
        return sum(self.accesses_by_core)


def _best_slice(cand: NucaCandidate, machine: NucaMachine,
                free: List[int]) -> Optional[int]:
    """The feasible slice minimizing the candidate's mean latency."""
    best, best_cost = None, float("inf")
    for s in range(machine.slices):
        if free[s] < cand.size_bytes:
            continue
        total = cand.total_accesses or 1.0
        cost = sum(share * machine.latency(core, s)
                   for core, share in enumerate(cand.accesses_by_core)
                   ) / total
        if cost < best_cost:
            best, best_cost = s, cost
    return best


def plan_nuca_placement(candidates: Sequence[NucaCandidate],
                        machine: NucaMachine) -> Dict[int, int]:
    """atom id -> home slice; hottest pools choose first."""
    for cand in candidates:
        if len(cand.accesses_by_core) != machine.slices:
            raise ConfigurationError(
                f"atom {cand.atom_id}: access vector length mismatch"
            )
    free = [machine.slice_bytes] * machine.slices
    out: Dict[int, int] = {}
    ranked = sorted(candidates, key=lambda c: c.total_accesses,
                    reverse=True)
    for cand in ranked:
        slice_idx = _best_slice(cand, machine, free)
        if slice_idx is None:
            # Capacity exhausted near the ideal spot: take the least
            # loaded slice (data still has to live somewhere).
            slice_idx = max(range(machine.slices), key=lambda s: free[s])
        free[slice_idx] -= cand.size_bytes
        out[cand.atom_id] = slice_idx
    return out


def hashed_placement(candidates: Sequence[NucaCandidate],
                     machine: NucaMachine) -> Dict[int, int]:
    """The blind baseline: address-hash striping (round-robin here)."""
    return {c.atom_id: i % machine.slices
            for i, c in enumerate(candidates)}


def mean_latency(candidates: Sequence[NucaCandidate],
                 placement: Mapping[int, int],
                 machine: NucaMachine) -> float:
    """Access-weighted mean LLC latency under a placement."""
    weighted = 0.0
    weight = 0.0
    for cand in candidates:
        home = placement[cand.atom_id]
        for core, share in enumerate(cand.accesses_by_core):
            weighted += share * machine.latency(core, home)
            weight += share
    return weighted / weight if weight else 0.0
