"""Set-associative cache model.

Write-back, write-allocate, physically addressed.  The model tracks
tags, dirty bits, and a per-line ``pinned`` flag used by Use Case 1:
the cache never selects a pinned line as victim while a non-pinned
candidate exists, and the cache controller (``repro.policies.
cache_mgmt``) bounds pinning to 75% of the ways per set and ages pins
when the active-atom list changes (Section 5.2(3)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import ConfigurationError
from repro.mem.replacement import DRRIPPolicy, ReplacementPolicy, make_policy


@dataclass
class CacheLine:
    """One cache line's bookkeeping state."""

    tag: int = -1
    valid: bool = False
    dirty: bool = False
    pinned: bool = False


@dataclass
class CacheStats:
    """Per-cache counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0
    pinned_fills: int = 0
    pin_refusals: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit fraction over demand accesses."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Miss fraction over demand accesses."""
        return 1.0 - self.hit_rate if self.accesses else 0.0


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: Physical line address written back to the next level (if any).
    writeback_addr: Optional[int] = None
    #: True when the hit line had been brought in by a prefetch.
    was_prefetched: bool = False


#: Shared immutable results for the three demand-access outcomes --
#: one access per trace event makes per-access allocation measurable.
_HIT = AccessResult(hit=True)
_HIT_PREFETCHED = AccessResult(hit=True, was_prefetched=True)
_MISS = AccessResult(hit=False)


class Cache:
    """A single cache level.

    ``pin_quota`` is the maximum fraction of ways per set that may hold
    pinned lines; fills requesting ``pinned=True`` beyond the quota
    degrade to normal fills (counted in ``stats.pin_refusals``).  The
    paper pins at most 75% of the cache (Section 5.2(2)).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        policy: str = "lru",
        pin_quota: float = 0.75,
    ) -> None:
        if size_bytes % (ways * line_bytes):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by "
                f"{ways} ways x {line_bytes}B lines"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigurationError(
                f"{name}: number of sets ({self.num_sets}) must be a "
                f"power of two"
            )
        self.policy: ReplacementPolicy = make_policy(
            policy, self.num_sets, ways
        )
        self._policy_is_drrip = isinstance(self.policy, DRRIPPolicy)
        # Address decomposition is on every access path: precompute
        # shift/mask forms (line_bytes is a power of two in every
        # shipped configuration; num_sets is asserted above).
        if line_bytes & (line_bytes - 1):
            self._line_shift = None
            self._set_mask = self.num_sets - 1
        else:
            self._line_shift = line_bytes.bit_length() - 1
            self._set_mask = self.num_sets - 1
            self._tag_shift = (self._line_shift
                               + self.num_sets.bit_length() - 1)
        self.pin_quota = pin_quota
        self._max_pinned_ways = max(0, int(ways * pin_quota))
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(ways)] for _ in range(self.num_sets)
        ]
        # Per-set occupancy caches so the allocate path need not scan:
        # number of valid lines (skip the free-way search once a set is
        # full -- the steady state) and number of pinned lines (skip
        # building a candidate list while nothing is pinned).
        self._valid_counts: List[int] = [0] * self.num_sets
        self._pinned_counts: List[int] = [0] * self.num_sets
        self._all_ways: List[int] = list(range(ways))
        #: Prefetch tags remembered until first demand hit, for stats.
        self._prefetched_tags = set()
        self.stats = CacheStats()

    # -- Address helpers ---------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """The line-aligned address containing ``addr``."""
        return addr - (addr % self.line_bytes)

    def _index(self, addr: int) -> int:
        if self._line_shift is not None:
            return (addr >> self._line_shift) & self._set_mask
        return (addr // self.line_bytes) % self.num_sets

    def _tag(self, addr: int) -> int:
        if self._line_shift is not None:
            return addr >> self._tag_shift
        return addr // (self.line_bytes * self.num_sets)

    # -- Lookup / fill ------------------------------------------------------

    def _find(self, set_idx: int, tag: int) -> Optional[int]:
        for way, line in enumerate(self._sets[set_idx]):
            if line.valid and line.tag == tag:
                return way
        return None

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no stats, no policy update)."""
        return self._find(self._index(addr), self._tag(addr)) is not None

    def access(self, addr: int, is_write: bool) -> AccessResult:
        """A demand access.  On a miss the caller is responsible for
        fetching the line from the next level and calling :meth:`fill`.

        The returned :class:`AccessResult` is a shared immutable
        instance on the common paths -- callers must treat it as
        read-only (they all do: it is consumed immediately).
        """
        stats = self.stats
        stats.accesses += 1
        if self._line_shift is not None:
            set_idx = (addr >> self._line_shift) & self._set_mask
            tag = addr >> self._tag_shift
        else:
            set_idx = self._index(addr)
            tag = self._tag(addr)
        lines = self._sets[set_idx]
        way = 0
        for line in lines:
            if line.valid and line.tag == tag:
                stats.hits += 1
                if is_write:
                    line.dirty = True
                self.policy.on_hit(set_idx, way)
                if self._prefetched_tags:
                    key = (set_idx, tag)
                    if key in self._prefetched_tags:
                        stats.prefetch_hits += 1
                        self._prefetched_tags.discard(key)
                        return _HIT_PREFETCHED
                return _HIT
            way += 1
        stats.misses += 1
        if self._policy_is_drrip:
            self.policy.record_miss(set_idx)
        return _MISS

    def fill(self, addr: int, *, dirty: bool = False,
             pinned: bool = False, prefetch: bool = False
             ) -> Optional[int]:
        """Install the line holding ``addr``.

        Returns the line address of a dirty victim that must be written
        back to the next level, or None.  If the line is already
        present, the flags are merged instead (a prefetch racing a
        demand fill).
        """
        if self._line_shift is not None:
            set_idx = (addr >> self._line_shift) & self._set_mask
            tag = addr >> self._tag_shift
        else:
            set_idx = self._index(addr)
            tag = self._tag(addr)
        way = self._find(set_idx, tag)
        if way is not None:
            line = self._sets[set_idx][way]
            line.dirty = line.dirty or dirty
            if pinned and not line.pinned and self._pin_ok(set_idx):
                line.pinned = True
                self._pinned_counts[set_idx] += 1
            return None

        way, writeback = self._allocate(set_idx)
        line = self._sets[set_idx][way]
        line.tag = tag
        line.valid = True
        line.dirty = dirty
        want_pin = pinned and self._pin_ok(set_idx)
        if pinned and not want_pin:
            self.stats.pin_refusals += 1
        line.pinned = want_pin
        if want_pin:
            self.stats.pinned_fills += 1
            self._pinned_counts[set_idx] += 1
        if prefetch:
            self.stats.prefetch_fills += 1
            self._prefetched_tags.add((set_idx, tag))
        self.policy.on_fill(set_idx, way, high_priority=want_pin)
        return writeback

    def _pin_ok(self, set_idx: int) -> bool:
        return self._pinned_counts[set_idx] < self._max_pinned_ways

    def _allocate(self, set_idx: int):
        lines = self._sets[set_idx]
        if self._valid_counts[set_idx] < self.ways:
            for way, line in enumerate(lines):
                if not line.valid:
                    # The caller installs into this way immediately.
                    self._valid_counts[set_idx] += 1
                    return way, None
        if self._pinned_counts[set_idx]:
            candidates = [w for w, l in enumerate(lines) if not l.pinned]
            if not candidates:
                # Quota guarantees this cannot happen with quota < 1.0,
                # but a controller bug must degrade gracefully, not
                # deadlock.
                candidates = self._all_ways
        else:
            candidates = self._all_ways
        victim = self.policy.victim(set_idx, candidates)
        line = lines[victim]
        self.stats.evictions += 1
        writeback = None
        if line.dirty:
            self.stats.writebacks += 1
            writeback = self._victim_addr(set_idx, line.tag)
        if self._prefetched_tags:
            self._prefetched_tags.discard((set_idx, line.tag))
        line.valid = False
        if line.pinned:
            line.pinned = False
            self._pinned_counts[set_idx] -= 1
        line.dirty = False
        self.policy.on_invalidate(set_idx, victim)
        return victim, writeback

    def _victim_addr(self, set_idx: int, tag: int) -> int:
        return (tag * self.num_sets + set_idx) * self.line_bytes

    # -- Pinning control (Use Case 1 controller hooks) ----------------------

    def unpin_all(self) -> int:
        """Age every pinned line back to normal priority.

        Called when the active-atom list changes (Section 5.2(3): "only
        then does the cache age the high-priority lines so they can be
        evicted by the default replacement policy").  Returns the number
        of lines unpinned.
        """
        count = 0
        for set_idx, lines in enumerate(self._sets):
            for way, line in enumerate(lines):
                if line.valid and line.pinned:
                    line.pinned = False
                    count += 1
            self._pinned_counts[set_idx] = 0
        return count

    @property
    def pinned_lines(self) -> int:
        """Number of currently pinned lines."""
        return sum(1 for lines in self._sets for l in lines
                   if l.valid and l.pinned)

    # -- Maintenance ---------------------------------------------------------

    def invalidate_all(self) -> int:
        """Drop every line (no writebacks -- test helper)."""
        count = 0
        for set_idx, lines in enumerate(self._sets):
            for way, line in enumerate(lines):
                if line.valid:
                    line.valid = False
                    line.dirty = False
                    line.pinned = False
                    self.policy.on_invalidate(set_idx, way)
                    count += 1
            self._valid_counts[set_idx] = 0
            self._pinned_counts[set_idx] = 0
        self._prefetched_tags.clear()
        return count

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently resident."""
        return sum(1 for lines in self._sets for l in lines if l.valid)

    def __repr__(self) -> str:
        return (f"Cache({self.name}, {self.size_bytes // 1024}KB, "
                f"{self.ways}w, {self.policy.name})")
