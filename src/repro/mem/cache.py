"""Set-associative cache model.

Write-back, write-allocate, physically addressed.  The model tracks
tags, dirty bits, and a per-line ``pinned`` flag used by Use Case 1:
the cache never selects a pinned line as victim while a non-pinned
candidate exists, and the cache controller (``repro.policies.
cache_mgmt``) bounds pinning to 75% of the ways per set and ages pins
when the active-atom list changes (Section 5.2(3)).

Line state is stored columnar -- per-set parallel lists of tags, dirty
bits, and pin bits -- rather than as per-line objects.  The tag match
on the access path is then a single C-speed ``list.index`` instead of
a Python loop over line objects; with one access per trace event this
is the difference between the cache model and the interpreter loop
dominating a run.  An invalid way holds tag ``-1`` (physical tags are
non-negative), so validity needs no separate column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import ConfigurationError
from repro.mem.replacement import (
    DRRIPPolicy,
    LRUPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.testing import checks as _checks

#: Tag stored in an invalid way (no physical tag is negative).
INVALID_TAG = -1


@dataclass
class CacheStats:
    """Per-cache counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0
    pinned_fills: int = 0
    pin_refusals: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit fraction over demand accesses."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Miss fraction over demand accesses."""
        return 1.0 - self.hit_rate if self.accesses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched fills that saw a demand hit (0.0
        when nothing was prefetched -- guarded for empty runs)."""
        if not self.prefetch_fills:
            return 0.0
        return self.prefetch_hits / self.prefetch_fills

    @property
    def writeback_rate(self) -> float:
        """Writebacks per demand access (0.0 for an untouched cache)."""
        if not self.accesses:
            return 0.0
        return self.writebacks / self.accesses


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: Physical line address written back to the next level (if any).
    writeback_addr: Optional[int] = None
    #: True when the hit line had been brought in by a prefetch.
    was_prefetched: bool = False


#: Shared immutable results for the three demand-access outcomes --
#: one access per trace event makes per-access allocation measurable.
_HIT = AccessResult(hit=True)
_HIT_PREFETCHED = AccessResult(hit=True, was_prefetched=True)
_MISS = AccessResult(hit=False)


class Cache:
    """A single cache level.

    ``pin_quota`` is the maximum fraction of ways per set that may hold
    pinned lines; fills requesting ``pinned=True`` beyond the quota
    degrade to normal fills (counted in ``stats.pin_refusals``).  The
    paper pins at most 75% of the cache (Section 5.2(2)).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        policy: str = "lru",
        pin_quota: float = 0.75,
    ) -> None:
        if size_bytes % (ways * line_bytes):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by "
                f"{ways} ways x {line_bytes}B lines"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigurationError(
                f"{name}: number of sets ({self.num_sets}) must be a "
                f"power of two"
            )
        self.policy: ReplacementPolicy = make_policy(
            policy, self.num_sets, ways
        )
        self._policy_is_drrip = isinstance(self.policy, DRRIPPolicy)
        # Bound-method hoists for the per-access hooks (the policy is
        # fixed after construction).
        self._policy_on_hit = self.policy.on_hit
        self._policy_on_fill = self.policy.on_fill
        self._policy_victim = self.policy.victim
        self._policy_on_invalidate = self.policy.on_invalidate
        # Address decomposition is on every access path: precompute
        # shift/mask forms (line_bytes is a power of two in every
        # shipped configuration; num_sets is asserted above).
        if line_bytes & (line_bytes - 1):
            self._line_shift = None
            self._set_mask = self.num_sets - 1
        else:
            self._line_shift = line_bytes.bit_length() - 1
            self._set_mask = self.num_sets - 1
            self._tag_shift = (self._line_shift
                               + self.num_sets.bit_length() - 1)
        self.pin_quota = pin_quota
        self._max_pinned_ways = max(0, int(ways * pin_quota))
        # Columnar line state: parallel per-set lists.
        self._tags: List[List[int]] = [
            [INVALID_TAG] * ways for _ in range(self.num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * ways for _ in range(self.num_sets)
        ]
        self._pinned: List[List[bool]] = [
            [False] * ways for _ in range(self.num_sets)
        ]
        # Per-set occupancy caches so the allocate path need not scan:
        # number of valid lines (skip the free-way search once a set is
        # full -- the steady state) and number of pinned lines (skip
        # building a candidate list while nothing is pinned).
        self._valid_counts: List[int] = [0] * self.num_sets
        self._pinned_counts: List[int] = [0] * self.num_sets
        self._all_ways: List[int] = list(range(ways))
        #: Prefetch tags remembered until first demand hit, for stats.
        self._prefetched_tags = set()
        self.stats = CacheStats()
        if _checks.enabled():
            self._install_checks()

    def _install_checks(self) -> None:
        """``REPRO_CHECK=1``: shadow the mutating entry points with
        checked wrappers that re-derive the maintained occupancy state
        after every operation.  Instance attributes win over bound
        methods, and the hierarchy's ``c.access`` hoists happen after
        construction, so every caller picks the wrappers up; a disabled
        run never reaches this method and pays nothing per access.
        """
        access_inner = self.access
        fill_inner = self.fill
        fill_absent_inner = self.fill_absent
        unpin_inner = self.unpin_all
        invalidate_inner = self.invalidate_all

        def access(addr: int, is_write: bool) -> "AccessResult":
            result = access_inner(addr, is_write)
            _checks.check_cache_set(self, self._index(addr))
            return result

        def fill(addr: int, *, dirty: bool = False, pinned: bool = False,
                 prefetch: bool = False) -> Optional[int]:
            result = fill_inner(addr, dirty=dirty, pinned=pinned,
                                prefetch=prefetch)
            _checks.check_cache_set(self, self._index(addr))
            return result

        def fill_absent(addr: int, *, dirty: bool = False,
                        pinned: bool = False, prefetch: bool = False
                        ) -> Optional[int]:
            result = fill_absent_inner(addr, dirty=dirty, pinned=pinned,
                                       prefetch=prefetch)
            _checks.check_cache_set(self, self._index(addr))
            return result

        apply_hit_run_inner = self.apply_hit_run

        def apply_hit_run(n_hits, replay, written) -> None:
            replay = list(replay)
            apply_hit_run_inner(n_hits, replay, written)
            for set_idx, _ in replay:
                _checks.check_cache_set(self, set_idx)

        def unpin_all() -> int:
            result = unpin_inner()
            _checks.check_cache_all(self)
            return result

        def invalidate_all() -> int:
            result = invalidate_inner()
            _checks.check_cache_all(self)
            return result

        self.access = access            # type: ignore[method-assign]
        self.fill = fill                # type: ignore[method-assign]
        self.fill_absent = fill_absent  # type: ignore[method-assign]
        self.apply_hit_run = apply_hit_run  # type: ignore[method-assign]
        self.unpin_all = unpin_all      # type: ignore[method-assign]
        self.invalidate_all = invalidate_all  # type: ignore[method-assign]

    def stat_groups(self):
        """StatGroup protocol: this level under its own (lower) name."""
        yield self.name.lower(), self.stats

    # -- Address helpers ---------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """The line-aligned address containing ``addr``."""
        return addr - (addr % self.line_bytes)

    def _index(self, addr: int) -> int:
        if self._line_shift is not None:
            return (addr >> self._line_shift) & self._set_mask
        return (addr // self.line_bytes) % self.num_sets

    def _tag(self, addr: int) -> int:
        if self._line_shift is not None:
            return addr >> self._tag_shift
        return addr // (self.line_bytes * self.num_sets)

    # -- Lookup / fill ------------------------------------------------------

    def _find(self, set_idx: int, tag: int) -> Optional[int]:
        try:
            return self._tags[set_idx].index(tag)
        except ValueError:
            return None

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no stats, no policy update)."""
        return self._tag(addr) in self._tags[self._index(addr)]

    def access(self, addr: int, is_write: bool) -> AccessResult:
        """A demand access.  On a miss the caller is responsible for
        fetching the line from the next level and calling :meth:`fill`.

        The returned :class:`AccessResult` is a shared immutable
        instance on the common paths -- callers must treat it as
        read-only (they all do: it is consumed immediately).
        """
        stats = self.stats
        stats.accesses += 1
        if self._line_shift is not None:
            set_idx = (addr >> self._line_shift) & self._set_mask
            tag = addr >> self._tag_shift
        else:
            set_idx = self._index(addr)
            tag = self._tag(addr)
        tags = self._tags[set_idx]
        # Membership test before index: both scans run in C, and the
        # miss path (the majority at L2/L3) avoids raising ValueError.
        if tag not in tags:
            stats.misses += 1
            if self._policy_is_drrip:
                self.policy.record_miss(set_idx)
            return _MISS
        way = tags.index(tag)
        stats.hits += 1
        if is_write:
            self._dirty[set_idx][way] = True
        self._policy_on_hit(set_idx, way)
        if self._prefetched_tags:
            key = (set_idx, tag)
            if key in self._prefetched_tags:
                stats.prefetch_hits += 1
                self._prefetched_tags.discard(key)
                return _HIT_PREFETCHED
        return _HIT

    def fill(self, addr: int, *, dirty: bool = False,
             pinned: bool = False, prefetch: bool = False
             ) -> Optional[int]:
        """Install the line holding ``addr``.

        Returns the line address of a dirty victim that must be written
        back to the next level, or None.  If the line is already
        present, the flags are merged instead (a prefetch racing a
        demand fill, or a writeback landing on a resident copy).
        """
        if self._line_shift is not None:
            set_idx = (addr >> self._line_shift) & self._set_mask
            tag = addr >> self._tag_shift
        else:
            set_idx = self._index(addr)
            tag = self._tag(addr)
        way = self._find(set_idx, tag)
        if way is not None:
            if dirty:
                self._dirty[set_idx][way] = True
            if pinned and not self._pinned[set_idx][way] \
                    and self._pin_ok(set_idx):
                self._pinned[set_idx][way] = True
                self._pinned_counts[set_idx] += 1
            return None
        return self.fill_absent(addr, dirty=dirty, pinned=pinned,
                                prefetch=prefetch)

    def fill_absent(self, addr: int, *, dirty: bool = False,
                    pinned: bool = False, prefetch: bool = False
                    ) -> Optional[int]:
        """:meth:`fill` for a line the caller knows is not resident.

        The demand-fill path always qualifies: the hierarchy only fills
        a level after that level reported a miss for the same line, so
        the presence re-scan :meth:`fill` starts with is pure overhead
        there.  Behaviour is otherwise identical to :meth:`fill`, and
        :meth:`fill` delegates here once absence is established.
        """
        if self._line_shift is not None:
            set_idx = (addr >> self._line_shift) & self._set_mask
            tag = addr >> self._tag_shift
        else:
            set_idx = self._index(addr)
            tag = self._tag(addr)
        # Allocation is fused in (one call per miss adds up): free way
        # first, else evict a victim among the non-pinned ways.
        tags = self._tags[set_idx]
        writeback = None
        if self._valid_counts[set_idx] < self.ways:
            # First invalid way, exactly like the historical scan.
            way = tags.index(INVALID_TAG)
            self._valid_counts[set_idx] += 1
        else:
            pinned_row = self._pinned[set_idx]
            if self._pinned_counts[set_idx]:
                candidates = [w for w in self._all_ways
                              if not pinned_row[w]]
                if not candidates:
                    # Quota guarantees this cannot happen with quota
                    # < 1.0, but a controller bug must degrade
                    # gracefully, not deadlock.
                    candidates = self._all_ways
            else:
                candidates = self._all_ways
            way = self._policy_victim(set_idx, candidates)
            self.stats.evictions += 1
            victim_tag = tags[way]
            if self._dirty[set_idx][way]:
                self.stats.writebacks += 1
                writeback = self._victim_addr(set_idx, victim_tag)
            if self._prefetched_tags:
                self._prefetched_tags.discard((set_idx, victim_tag))
            if pinned_row[way]:
                pinned_row[way] = False
                self._pinned_counts[set_idx] -= 1
            self._policy_on_invalidate(set_idx, way)
        tags[way] = tag
        self._dirty[set_idx][way] = dirty
        want_pin = pinned and self._pin_ok(set_idx)
        if pinned and not want_pin:
            self.stats.pin_refusals += 1
        self._pinned[set_idx][way] = want_pin
        if want_pin:
            self.stats.pinned_fills += 1
            self._pinned_counts[set_idx] += 1
        if prefetch:
            self.stats.prefetch_fills += 1
            self._prefetched_tags.add((set_idx, tag))
        self._policy_on_fill(set_idx, way, high_priority=want_pin)
        return writeback

    def _pin_ok(self, set_idx: int) -> bool:
        return self._pinned_counts[set_idx] < self._max_pinned_ways

    # -- Batched probe / hit application (vector-engine support) ------------

    def resident_snapshot(self) -> List[List[int]]:
        """A copy of the per-set tag table (``INVALID_TAG`` = empty way).

        The batch interpreter probes whole trace chunks against this
        snapshot with vectorized compares; it stays valid until the
        next fill or invalidation (demand hits never change residency).
        """
        return [list(row) for row in self._tags]

    def apply_hit_run(self, n_hits, replay, written) -> None:
        """Account a run of ``n_hits`` demand hits in one call.

        ``replay`` is the run's unique ``(set_idx, tag)`` pairs in
        order of **last** occurrence; ``written`` is the unique pairs
        that saw at least one write.  Every line must be resident.

        Equivalent to ``n_hits`` sequential hit-path :meth:`access`
        calls up to replacement-clock granularity: one ``on_hit`` per
        unique line, in last-occurrence order, leaves every policy in a
        state with identical future behaviour (for LRU only the per-set
        recency *order* is observable, and it is reproduced; RRIP's
        promotion to RRPV 0 is idempotent), while counters and dirty
        bits match exactly.  Callers must ensure no run line is awaited
        from a prefetch (``_prefetched_tags`` bookkeeping is skipped).
        """
        stats = self.stats
        stats.accesses += n_hits
        stats.hits += n_hits
        tags = self._tags
        for set_idx, tag in written:
            self._dirty[set_idx][tags[set_idx].index(tag)] = True
        pol = self.policy
        if type(pol) is LRUPolicy:
            # The dominant replay target: inline the stamp update
            # (one bound-method call per pair otherwise dominates the
            # whole batch commit).
            clock = pol._clock
            stamp = pol._stamp
            for set_idx, tag in replay:
                clock += 1
                stamp[set_idx][tags[set_idx].index(tag)] = clock
            pol._clock = clock
            return
        on_hit = self._policy_on_hit
        for set_idx, tag in replay:
            on_hit(set_idx, tags[set_idx].index(tag))

    def _victim_addr(self, set_idx: int, tag: int) -> int:
        return (tag * self.num_sets + set_idx) * self.line_bytes

    # -- Pinning control (Use Case 1 controller hooks) ----------------------

    def unpin_all(self) -> int:
        """Age every pinned line back to normal priority.

        Called when the active-atom list changes (Section 5.2(3): "only
        then does the cache age the high-priority lines so they can be
        evicted by the default replacement policy").  Returns the number
        of lines unpinned.
        """
        count = 0
        for set_idx, pinned_count in enumerate(self._pinned_counts):
            if pinned_count:
                self._pinned[set_idx] = [False] * self.ways
                self._pinned_counts[set_idx] = 0
                count += pinned_count
        return count

    @property
    def pinned_lines(self) -> int:
        """Number of currently pinned lines (maintained count)."""
        return sum(self._pinned_counts)

    # -- Maintenance ---------------------------------------------------------

    def invalidate_all(self) -> int:
        """Drop every line (no writebacks -- test helper)."""
        count = 0
        for set_idx, tags in enumerate(self._tags):
            for way in range(self.ways):
                if tags[way] != INVALID_TAG:
                    tags[way] = INVALID_TAG
                    self.policy.on_invalidate(set_idx, way)
                    count += 1
            self._dirty[set_idx] = [False] * self.ways
            self._pinned[set_idx] = [False] * self.ways
            self._valid_counts[set_idx] = 0
            self._pinned_counts[set_idx] = 0
        self._prefetched_tags.clear()
        return count

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently resident (maintained count)."""
        return sum(self._valid_counts)

    def __repr__(self) -> str:
        return (f"Cache({self.name}, {self.size_bytes // 1024}KB, "
                f"{self.ways}w, {self.policy.name})")
