"""Cache replacement policies.

The baseline system of the paper (Table 3) uses DRRIP [83] at L2/L3 and
LRU at L1; this module implements those plus the building blocks
(SRRIP, BRRIP) and simple policies for testing.

A policy manages per-set metadata and exposes four hooks the cache
calls:

* ``on_hit(set_idx, way)``       -- a lookup hit way ``way``;
* ``on_fill(set_idx, way, ...)`` -- a new line was installed;
* ``victim(set_idx, candidates)``-- choose a way to evict among
  ``candidates`` (the cache excludes pinned ways before calling);
* ``on_invalidate(set_idx, way)``-- a line was removed.

Policies are deliberately ignorant of pinning: Use Case 1's pinning is a
*cache-controller* behaviour (Section 5.2(3)) layered on top, in
:mod:`repro.policies.cache_mgmt` and the cache's candidate filtering.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.errors import ConfigurationError

#: RRIP counter width used by SRRIP/BRRIP/DRRIP (2 bits, as in [83]).
RRPV_BITS = 2
RRPV_MAX = (1 << RRPV_BITS) - 1          # 3: re-reference far in future
RRPV_LONG = RRPV_MAX - 1                 # 2: long re-reference interval


class ReplacementPolicy:
    """Interface; concrete policies subclass and fill in the hooks."""

    name = "abstract"

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ConfigurationError(
                f"bad geometry: {num_sets} sets x {ways} ways"
            )
        self.num_sets = num_sets
        self.ways = ways

    def on_hit(self, set_idx: int, way: int) -> None:
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int,
                high_priority: bool = False) -> None:
        raise NotImplementedError

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        raise NotImplementedError

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """Default: nothing to clean up."""


class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used, as in the paper's L1 (Table 3)."""

    name = "lru"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        # Per-set recency stamp per way; larger = more recent.
        self._stamp = [[0] * ways for _ in range(num_sets)]
        self._clock = 0

    # on_hit/on_fill run once per cache access/fill: the stamp update
    # is written out in both rather than shared through a helper call.

    def on_hit(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def on_fill(self, set_idx: int, way: int,
                high_priority: bool = False) -> None:
        self._clock += 1
        self._stamp[set_idx][way] = self._clock

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        # list.__getitem__ as the key stays in C; a lambda here shows
        # up as the single most-called Python frame of a whole run.
        return min(candidates, key=self._stamp[set_idx].__getitem__)

    def on_invalidate(self, set_idx: int, way: int) -> None:
        self._stamp[set_idx][way] = 0


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection (a testing baseline)."""

    name = "random"

    def __init__(self, num_sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, ways)
        self._rng = random.Random(seed)

    def on_hit(self, set_idx: int, way: int) -> None:
        pass

    def on_fill(self, set_idx: int, way: int,
                high_priority: bool = False) -> None:
        pass

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        return self._rng.choice(list(candidates))


class _RRIPBase(ReplacementPolicy):
    """Shared RRPV machinery for the RRIP family [83].

    Each line carries a 2-bit re-reference prediction value (RRPV).
    Victims are lines with RRPV == 3; if none, all RRPVs age up until
    one reaches 3.  Hits promote to RRPV 0.  ``high_priority`` fills
    insert at RRPV 0 (the XMem pinned-insertion path); default fills
    insert per the concrete policy.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._rrpv = [[RRPV_MAX] * ways for _ in range(num_sets)]

    def on_hit(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = 0

    def victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        # One aging step per candidate instead of per (gap x candidate):
        # the historical scan-and-increment loop always terminates after
        # aging every candidate by the same shared deficiency, so the
        # deficiency is applied in one pass.  Victim choice and final
        # RRPV values are identical.
        rrpv = self._rrpv[set_idx]
        highest = max(map(rrpv.__getitem__, candidates))
        if highest < RRPV_MAX:
            bump = RRPV_MAX - highest
            for way in candidates:
                rrpv[way] += bump
        for way in candidates:
            if rrpv[way] >= RRPV_MAX:
                return way

    def on_invalidate(self, set_idx: int, way: int) -> None:
        self._rrpv[set_idx][way] = RRPV_MAX

    def _insert_rrpv(self, set_idx: int) -> int:
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int,
                high_priority: bool = False) -> None:
        self._rrpv[set_idx][way] = (
            0 if high_priority else self._insert_rrpv(set_idx)
        )


class SRRIPPolicy(_RRIPBase):
    """Static RRIP: insert at a long re-reference interval (RRPV 2)."""

    name = "srrip"

    def _insert_rrpv(self, set_idx: int) -> int:
        return RRPV_LONG


class BRRIPPolicy(_RRIPBase):
    """Bimodal RRIP: insert at RRPV 3 mostly, RRPV 2 rarely (1/32).

    Thrash-resistant: most lines are immediately evictable, so a
    too-large working set cannot flush the whole cache.
    """

    name = "brrip"
    LONG_INTERVAL_PERIOD = 32

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._fill_count = 0

    def _insert_rrpv(self, set_idx: int) -> int:
        self._fill_count += 1
        if self._fill_count % self.LONG_INTERVAL_PERIOD == 0:
            return RRPV_LONG
        return RRPV_MAX


class DRRIPPolicy(_RRIPBase):
    """Dynamic RRIP: set-dueling between SRRIP and BRRIP [83].

    A few leader sets always use SRRIP, a few always BRRIP; a saturating
    counter (PSEL) tracks which leader group misses less, and follower
    sets adopt the winner.  This is the paper's baseline policy for L2
    and L3 (Table 3).
    """

    name = "drrip"
    #: One leader set of each flavour every DUEL_PERIOD sets.
    DUEL_PERIOD = 32
    PSEL_BITS = 10

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._psel = (1 << self.PSEL_BITS) // 2
        self._psel_max = (1 << self.PSEL_BITS) - 1
        self._psel_half = self._psel_max // 2
        self._brrip = BRRIPPolicy(num_sets, ways)

    def _leader(self, set_idx: int) -> Optional[str]:
        phase = set_idx % self.DUEL_PERIOD
        if phase == 0:
            return "srrip"
        if phase == 1:
            return "brrip"
        return None

    # record_miss and _insert_rrpv fire on every miss/fill of an L2/L3
    # access: both spell out the leader phase instead of going through
    # _leader/_use_brrip (kept above as the readable specification).

    def record_miss(self, set_idx: int) -> None:
        """Called by the cache on a miss, to train the duel."""
        phase = set_idx % self.DUEL_PERIOD
        if phase == 0:
            # SRRIP leader missed: vote toward BRRIP.
            if self._psel < self._psel_max:
                self._psel += 1
        elif phase == 1:
            if self._psel > 0:
                self._psel -= 1

    def _use_brrip(self, set_idx: int) -> bool:
        leader = self._leader(set_idx)
        if leader == "srrip":
            return False
        if leader == "brrip":
            return True
        return self._psel > self._psel_half

    def _insert_rrpv(self, set_idx: int) -> int:
        phase = set_idx % self.DUEL_PERIOD
        if phase == 1 or (phase != 0 and self._psel > self._psel_half):
            brrip = self._brrip
            brrip._fill_count += 1
            if brrip._fill_count % brrip.LONG_INTERVAL_PERIOD == 0:
                return RRPV_LONG
            return RRPV_MAX
        return RRPV_LONG


POLICIES = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
}


def make_policy(name: str, num_sets: int, ways: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; "
            f"choices: {sorted(POLICIES)}"
        ) from None
    return cls(num_sets, ways)
