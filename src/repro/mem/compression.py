"""Memory-compression substrate (Table 1, row 3).

The paper lists cache/memory compression as a beneficiary of XMem:
knowing the data type and data properties of each pool, the engine can
use "a different compression algorithm for each data structure based
on data type and data properties, e.g., sparse data encodings,
FP-specific compression, delta-based compression for pointers".

This module implements the algorithms as real byte-level compressors
(operating on 64 B cache lines, like hardware):

* :class:`ZeroLineCompressor`  -- all-zero/uniform line detection (the
  type-agnostic baseline every scheme falls back to);
* :class:`BaseDeltaCompressor` -- BDI-style base+delta for integers
  and pointers (delta width chosen per line);
* :class:`FloatCompressor`     -- exponent dictionary for IEEE floats;
* :class:`SparseCompressor`    -- bitmap + packed non-zero elements.

:class:`SemanticCompressionEngine` is the XMem-aware policy: it reads
an atom's :class:`CompressionPrimitives` from the PAT and dispatches to
the algorithm the semantics suggest; without an atom it uses the
baseline only.  Every compressor is exact (lossless) and paired with a
decompressor so tests can assert round-trips.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.core.pat import CompressionPrimitives
from repro.core.attributes import DataType

LINE_BYTES = 64


@dataclass(frozen=True)
class CompressedLine:
    """One compressed cache line: scheme tag + payload size + payload.

    The payload keeps enough information to reconstruct the original
    bytes; ``size_bytes`` is what the hardware would store (payload
    plus per-line metadata), never more than the raw line.
    """

    scheme: str
    size_bytes: int
    payload: tuple

    @property
    def ratio(self) -> float:
        """Compression ratio for this line (>= 1.0)."""
        return LINE_BYTES / self.size_bytes if self.size_bytes else \
            float("inf")


class LineCompressor:
    """Interface: compress/decompress one 64 B line."""

    name = "abstract"

    def compress(self, line: bytes) -> Optional[CompressedLine]:
        """Compressed form, or None when this scheme cannot win."""
        raise NotImplementedError

    def decompress(self, comp: CompressedLine) -> bytes:
        raise NotImplementedError

    @staticmethod
    def _check(line: bytes) -> None:
        if len(line) != LINE_BYTES:
            raise ConfigurationError(
                f"compressors work on {LINE_BYTES}B lines, "
                f"got {len(line)}"
            )


class ZeroLineCompressor(LineCompressor):
    """Uniform-byte lines store as (byte, count): 2 B + tag."""

    name = "zero"

    def compress(self, line: bytes) -> Optional[CompressedLine]:
        """Compress a uniform line; None otherwise."""
        self._check(line)
        if len(set(line)) == 1:
            return CompressedLine(self.name, 2, (line[0],))
        return None

    def decompress(self, comp: CompressedLine) -> bytes:
        """Rebuild the uniform line."""
        return bytes([comp.payload[0]]) * LINE_BYTES


class BaseDeltaCompressor(LineCompressor):
    """BDI-style base + narrow deltas over 8-byte words.

    Works well for pointers and indices, whose values cluster near a
    common base.  Tries delta widths 1, 2, and 4 bytes.
    """

    name = "base_delta"
    DELTA_WIDTHS = (1, 2, 4)

    def compress(self, line: bytes) -> Optional[CompressedLine]:
        """Try base+delta encodings; None when values scatter."""
        self._check(line)
        words = struct.unpack("<8Q", line)
        base = words[0]
        # Deltas are signed modulo 2^64 so values that wrap around the
        # base (e.g., base 0 with value 2^64-1 = "-1") stay narrow.
        half = 1 << 63
        deltas = [((w - base + half) & ((1 << 64) - 1)) - half
                  for w in words]
        for width in self.DELTA_WIDTHS:
            limit = 1 << (8 * width - 1)
            if all(-limit <= d < limit for d in deltas):
                size = 8 + 8 * width + 1  # base + deltas + width tag
                if size < LINE_BYTES:
                    return CompressedLine(
                        self.name, size, (base, width, tuple(deltas))
                    )
        return None

    def decompress(self, comp: CompressedLine) -> bytes:
        """Rebuild the words from base + deltas."""
        base, _width, deltas = comp.payload
        words = [(base + d) & ((1 << 64) - 1) for d in deltas]
        return struct.pack("<8Q", *words)


class FloatCompressor(LineCompressor):
    """Exponent-dictionary compression for float64 lines.

    Scientific data's exponents cluster tightly: store the distinct
    (sign+exponent) patterns once, then a small index plus the mantissa
    per value.  Lossless.
    """

    name = "float_dict"
    MAX_EXPONENTS = 4

    def compress(self, line: bytes) -> Optional[CompressedLine]:
        """Try the exponent dictionary; None when exponents scatter."""
        self._check(line)
        words = struct.unpack("<8Q", line)
        # sign+exponent = top 12 bits; mantissa = low 52 bits.
        exps = [(w >> 52) & 0xFFF for w in words]
        mants = [w & ((1 << 52) - 1) for w in words]
        table = sorted(set(exps))
        if len(table) > self.MAX_EXPONENTS:
            return None
        # Bit-packed: 52-bit mantissas (52 B total), 2-bit indices
        # (2 B), 12-bit table entries, 1 B scheme metadata.
        size = 52 + 2 + (12 * len(table) + 7) // 8 + 1
        if size >= LINE_BYTES:
            return None
        idx = [table.index(e) for e in exps]
        return CompressedLine(self.name, size,
                              (tuple(table), tuple(idx), tuple(mants)))

    def decompress(self, comp: CompressedLine) -> bytes:
        """Rebuild the floats from the exponent table."""
        table, idx, mants = comp.payload
        words = [(table[i] << 52) | m for i, m in zip(idx, mants)]
        return struct.pack("<8Q", *words)


class SparseCompressor(LineCompressor):
    """Bitmap + packed non-zero elements.

    ``elem_bytes`` is the element width the atom's data type implies;
    a line with few non-zero elements stores a presence bitmap plus
    only those elements.
    """

    name = "sparse"

    def __init__(self, elem_bytes: int = 8) -> None:
        if elem_bytes not in (1, 2, 4, 8):
            raise ConfigurationError(
                f"unsupported element width {elem_bytes}"
            )
        self.elem_bytes = elem_bytes

    def compress(self, line: bytes) -> Optional[CompressedLine]:
        """Bitmap-pack the non-zeros; None when the line is dense."""
        self._check(line)
        n = LINE_BYTES // self.elem_bytes
        elems = [line[i * self.elem_bytes:(i + 1) * self.elem_bytes]
                 for i in range(n)]
        nonzero = [(i, e) for i, e in enumerate(elems) if any(e)]
        size = (n + 7) // 8 + len(nonzero) * self.elem_bytes
        if size >= LINE_BYTES:
            return None
        return CompressedLine(
            self.name, size,
            (self.elem_bytes, n, tuple((i, bytes(e)) for i, e in nonzero)),
        )

    def decompress(self, comp: CompressedLine) -> bytes:
        """Rebuild the line from the packed non-zero elements."""
        elem_bytes, n, nonzero = comp.payload
        out = bytearray(LINE_BYTES)
        for i, e in nonzero:
            out[i * elem_bytes:(i + 1) * elem_bytes] = e
        return bytes(out)


@dataclass
class CompressionStats:
    """Aggregate results over many lines."""

    lines: int = 0
    raw_bytes: int = 0
    stored_bytes: int = 0
    by_scheme: Dict[str, int] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Overall compression ratio."""
        return self.raw_bytes / self.stored_bytes if self.stored_bytes \
            else 1.0

    def record(self, scheme: str, stored: int) -> None:
        """Account one compressed line."""
        self.lines += 1
        self.raw_bytes += LINE_BYTES
        self.stored_bytes += stored
        self.by_scheme[scheme] = self.by_scheme.get(scheme, 0) + 1


class SemanticCompressionEngine:
    """Pick a compressor per line using the atom's semantics.

    ``lookup_primitives`` resolves a physical address to the
    :class:`CompressionPrimitives` of the active atom covering it (via
    AMU + compression PAT), or None.
    """

    def __init__(self, lookup_primitives) -> None:
        self._lookup = lookup_primitives
        self._zero = ZeroLineCompressor()
        self._delta = BaseDeltaCompressor()
        self._float = FloatCompressor()
        self.stats = CompressionStats()
        self._by_name = {
            c.name: c for c in (self._zero, self._delta, self._float)
        }

    def _candidates(self, prims: Optional[CompressionPrimitives]
                    ) -> List[LineCompressor]:
        if prims is None:
            return [self._zero]
        out: List[LineCompressor] = [self._zero]
        if prims.sparse:
            width = prims.data_type.size_bytes or 8
            sparse = SparseCompressor(width)
            self._by_name[sparse.name] = sparse
            out.append(sparse)
        if prims.pointer or prims.data_type in (
                DataType.INT32, DataType.INT64):
            out.append(self._delta)
        if prims.data_type in (DataType.FLOAT32, DataType.FLOAT64):
            out.append(self._float)
        return out

    def compress_line(self, paddr: int, line: bytes) -> CompressedLine:
        """Best available encoding for one line (raw as fallback)."""
        prims = self._lookup(paddr)
        best: Optional[CompressedLine] = None
        for comp in self._candidates(prims):
            cand = comp.compress(line)
            if cand is not None and (best is None
                                     or cand.size_bytes < best.size_bytes):
                best = cand
        if best is None:
            best = CompressedLine("raw", LINE_BYTES, (bytes(line),))
        self.stats.record(best.scheme, best.size_bytes)
        return best

    def decompress_line(self, comp: CompressedLine) -> bytes:
        """Reconstruct the original 64 bytes."""
        if comp.scheme == "raw":
            return comp.payload[0]
        return self._by_name[comp.scheme].decompress(comp)

    def compress_region(self, paddr: int, data: bytes
                        ) -> List[CompressedLine]:
        """Compress a whole buffer, line by line."""
        if len(data) % LINE_BYTES:
            raise ConfigurationError(
                f"region must be a multiple of {LINE_BYTES}B"
            )
        return [
            self.compress_line(paddr + off, data[off:off + LINE_BYTES])
            for off in range(0, len(data), LINE_BYTES)
        ]
