"""Die-stacked DRAM cache with semantics-guided management (Table 1,
row 5).

A giga-scale cache in front of main memory.  Two failure modes make
blind management hard, and both are exactly what atom semantics fix:

* **thrashing** -- a working set larger than the cache evicts itself;
  knowing the *working-set size* up front lets the controller bypass
  oversized pools instead of churning ("helps avoid cache thrashing by
  knowing working set size");
* **dead fills** -- zero-reuse streaming data occupies capacity that
  reusable data needs; the *reuse* attribute identifies it at fill
  time.

:class:`DramCache` is the device: set-associative, 64 B lines, with a
miss path the caller services from main memory.
:class:`SemanticDramCachePolicy` produces the insert/bypass decision
from the cache PAT + the atom's currently mapped footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.errors import ConfigurationError
from repro.mem.cache import Cache


@dataclass
class DramCacheStats:
    """Hit/bypass accounting."""

    accesses: int = 0
    hits: int = 0
    bypassed_fills: int = 0
    fills: int = 0

    @property
    def hit_rate(self) -> float:
        """Demand hit fraction."""
        return self.hits / self.accesses if self.accesses else 0.0


class DramCache:
    """The stacked-DRAM cache array.

    ``hit_latency`` and the main-memory ``miss_latency`` are supplied
    by the composition (stacked DRAM is ~half the latency and several
    times the bandwidth of off-package DRAM).
    """

    def __init__(self, size_bytes: int, ways: int = 8,
                 line_bytes: int = 64,
                 hit_latency: float = 60.0,
                 miss_latency: float = 140.0) -> None:
        if hit_latency >= miss_latency:
            raise ConfigurationError(
                "a DRAM cache must be faster than main memory"
            )
        self._array = Cache("dram$", size_bytes, ways, line_bytes,
                            policy="lru")
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self.stats = DramCacheStats()
        #: Insert/bypass decision; default inserts everything.
        self.insert_predicate: Callable[[int], bool] = lambda addr: True

    @property
    def size_bytes(self) -> int:
        """Cache capacity."""
        return self._array.size_bytes

    def access(self, addr: int) -> float:
        """One read; returns its latency."""
        self.stats.accesses += 1
        line = self._array.line_addr(addr)
        if self._array.access(line, is_write=False).hit:
            self.stats.hits += 1
            return self.hit_latency
        if self.insert_predicate(line):
            self.stats.fills += 1
            self._array.fill(line)
        else:
            self.stats.bypassed_fills += 1
        return self.miss_latency

    @property
    def resident_lines(self) -> int:
        """Lines currently cached."""
        return self._array.resident_lines


class SemanticDramCachePolicy:
    """Bypass/insert from atom semantics.

    ``lookup_atom`` resolves an address to the active
    :class:`repro.core.atom.Atom` (or None).  Decision rules:

    * no atom -> insert (default behaviour, hint-free data);
    * reuse == 0 -> bypass (streaming data never pays back a fill);
    * working set > ``thrash_factor`` x cache -> bypass (the fill would
      thrash; serve it from memory and keep the cache for data that
      fits).
    """

    def __init__(self, cache: DramCache, lookup_atom,
                 thrash_factor: float = 1.0) -> None:
        self.cache = cache
        self._lookup_atom = lookup_atom
        self.thrash_factor = thrash_factor
        cache.insert_predicate = self.should_insert

    def should_insert(self, addr: int) -> bool:
        """The fill-path decision."""
        atom = self._lookup_atom(addr)
        if atom is None:
            return True
        if atom.reuse == 0:
            return False
        ws = atom.working_set_bytes
        if ws > self.thrash_factor * self.cache.size_bytes:
            return False
        return True
