"""Prefetchers.

Two engines:

* :class:`MultiStridePrefetcher` -- the baseline's L3 prefetcher
  (Table 3: "Multi-stride prefetcher [33] at L3, 16 strides").  It
  tracks up to 16 concurrent streams, detects a stable stride after two
  confirmations, and issues ``degree`` line prefetches ahead.
* :class:`XMemPrefetcher` -- Use Case 1's semantic prefetcher (Section
  5.2(4)): it holds the translated access pattern and the mapped ranges
  of every *pinned* atom in its PAT, and on a demand miss to a pinned
  atom prefetches the next line(s) along the expressed stride, never
  crossing the atom's mapped range.

Both return lists of line addresses to fetch; the memory system decides
what to do with them (fill L3, consume bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.pat import PrefetcherPrimitives
from repro.core.attributes import PatternType


@dataclass(slots=True)
class _Stream:
    """One tracked access stream of the multi-stride engine."""

    last_addr: int
    stride: int = 0
    confirmations: int = 0
    last_used: int = 0


@dataclass
class PrefetchStats:
    """Issue counters for a prefetcher."""

    issued: int = 0
    stream_allocations: int = 0


@dataclass
class XMemPrefetchStats(PrefetchStats):
    """Issue counters plus PAT coverage for the semantic prefetcher."""

    #: LLC-miss lookups presented to the PAT.
    pat_lookups: int = 0
    #: Lookups that resolved to a PAT-resident pinned atom.
    pat_hits: int = 0

    @property
    def pat_hit_rate(self) -> float:
        """Fraction of miss lookups the PAT could act on (0.0 when no
        lookup happened -- guarded for empty runs)."""
        if not self.pat_lookups:
            return 0.0
        return self.pat_hits / self.pat_lookups


class MultiStridePrefetcher:
    """Stride detector with a fixed number of stream slots.

    Streams are keyed by 4 KB region (a common PC-less organization).
    A slot confirms a stride when two consecutive deltas match; once
    confirmed, each access issues up to ``degree`` prefetches ahead.
    """

    def __init__(self, streams: int = 16, degree: int = 2,
                 line_bytes: int = 64, region_bytes: int = 4096) -> None:
        self.max_streams = streams
        self.degree = degree
        self.line_bytes = line_bytes
        self.region_bytes = region_bytes
        # Shift form of the per-access region split (None when
        # region_bytes is not a power of two).
        self._region_shift = (region_bytes.bit_length() - 1
                              if not (region_bytes & (region_bytes - 1))
                              else None)
        self._streams: Dict[int, _Stream] = {}
        self._clock = 0
        self.stats = PrefetchStats()

    def observe(self, addr: int) -> List[int]:
        """Train on a demand access; return line addresses to prefetch."""
        self._clock += 1
        region = (addr >> self._region_shift
                  if self._region_shift is not None
                  else addr // self.region_bytes)
        stream = self._streams.get(region)
        if stream is None:
            self._allocate(region, addr)
            return []
        delta = addr - stream.last_addr
        stream.last_used = self._clock
        if delta == 0:
            return []
        if delta == stream.stride:
            stream.confirmations += 1
        else:
            stream.stride = delta
            stream.confirmations = 1
        stream.last_addr = addr
        if stream.confirmations < 2:
            return []
        out = []
        for i in range(1, self.degree + 1):
            target = addr + stream.stride * i
            if target < 0:
                break
            line = target - (target % self.line_bytes)
            if line not in out:
                out.append(line)
        self.stats.issued += len(out)
        return out

    def _allocate(self, region: int, addr: int) -> None:
        if len(self._streams) >= self.max_streams:
            lru = min(self._streams, key=lambda r: self._streams[r].last_used)
            del self._streams[lru]
        self._streams[region] = _Stream(last_addr=addr, last_used=self._clock)
        self.stats.stream_allocations += 1

    @property
    def active_streams(self) -> int:
        """Number of currently tracked streams."""
        return len(self._streams)


@dataclass
class _PinnedAtomEntry:
    """PAT-resident state for one pinned atom (Section 5.2(4))."""

    primitives: PrefetcherPrimitives
    #: (start, end) physical spans of the atom's mapping.
    spans: List[tuple]


class XMemPrefetcher:
    """Semantic prefetcher driven by atom attributes.

    "The prefetcher uses a PAT to keep the access pattern (stride) and
    address ranges for all pinned atoms.  When an access to one of these
    atoms misses the cache, it prefetches the next cache line(s) based
    on the access pattern."

    ``lookup_atom`` is the AMU hook mapping a physical address to an
    active atom ID (or None).
    """

    def __init__(self, lookup_atom: Callable[[int], Optional[int]],
                 degree: int = 4, line_bytes: int = 64) -> None:
        self._lookup_atom = lookup_atom
        self.degree = degree
        self.line_bytes = line_bytes
        self._pat: Dict[int, _PinnedAtomEntry] = {}
        self.stats = XMemPrefetchStats()

    # -- Controller interface ------------------------------------------------

    def set_pinned_atoms(self, entries: Dict[int, _PinnedAtomEntry]) -> None:
        """Replace the pinned-atom PAT (on active-atom changes)."""
        self._pat = dict(entries)

    @staticmethod
    def entry(primitives: PrefetcherPrimitives,
              spans: List[tuple]) -> _PinnedAtomEntry:
        """Build a PAT entry (exposed for the cache controller)."""
        return _PinnedAtomEntry(primitives=primitives, spans=list(spans))

    # -- Miss hook -------------------------------------------------------------

    def on_demand_miss(self, addr: int) -> List[int]:
        """Demand miss at the LLC: prefetch along the atom's pattern."""
        self.stats.pat_lookups += 1
        atom_id = self._lookup_atom(addr)
        if atom_id is None:
            return []
        entry = self._pat.get(atom_id)
        if entry is None:
            return []
        self.stats.pat_hits += 1
        prims = entry.primitives
        if prims.pattern is PatternType.REGULAR and prims.stride_bytes:
            step = prims.stride_bytes
            # Prefetch whole lines: advance at least one line per step.
            step = max(abs(step), self.line_bytes) * (1 if step > 0 else -1)
            out = []
            for i in range(1, self.degree + 1):
                target = addr + step * i
                if not self._inside(entry, target):
                    break
                line = target - (target % self.line_bytes)
                if line not in out:
                    out.append(line)
            self.stats.issued += len(out)
            return out
        if prims.pattern is PatternType.IRREGULAR:
            # Irregular-but-repeated data (e.g., graph edge lists): stream
            # sequential lines within the mapped range.
            out = []
            for i in range(1, self.degree + 1):
                target = addr + self.line_bytes * i
                if not self._inside(entry, target):
                    break
                out.append(target - (target % self.line_bytes))
            self.stats.issued += len(out)
            return out
        return []

    @staticmethod
    def _inside(entry: _PinnedAtomEntry, addr: int) -> bool:
        # Hot on the LLC miss path; a plain loop avoids the generator
        # frame per call.
        for s, e in entry.spans:
            if s <= addr < e:
                return True
        return False
