"""Miss-status holding registers (MSHRs).

MSHRs bound the number of outstanding misses a core can have in
flight -- the hardware limit on miss-level parallelism.  The timing
engine (:mod:`repro.cpu.engine`) uses this structure to decide when a
new miss must stall until an older one completes.

The model keeps completion times, not request payloads: ``reserve``
registers a miss that completes at time ``t``; when full, ``reserve``
reports the earliest completion time the caller must wait for.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import List, Optional

from repro.core.errors import ConfigurationError
from repro.testing import checks as _checks


@dataclass
class MSHRStats:
    """Occupancy counters."""

    reservations: int = 0
    full_stalls: int = 0

    @property
    def full_stall_rate(self) -> float:
        """Fraction of reservations that found the file full (0.0 for
        an idle file -- guarded against zero reservations)."""
        if not self.reservations:
            return 0.0
        return self.full_stalls / self.reservations


class MSHRFile:
    """A fixed-size pool of outstanding-miss slots."""

    def __init__(self, entries: int = 16) -> None:
        if entries <= 0:
            raise ConfigurationError(f"MSHR entries must be > 0: {entries}")
        self.entries = entries
        self._completions: List[float] = []
        self.stats = MSHRStats()
        if _checks.enabled():
            self._install_checks()

    def _install_checks(self) -> None:
        """``REPRO_CHECK=1``: shadow :meth:`reserve` with a checked
        wrapper.  An instance attribute wins over the bound method, so
        callers (including the engine's ``reserve = mshr.reserve``
        hoist, which runs after construction) pick it up transparently;
        a disabled run never reaches this method and pays nothing.
        """
        inner = self.reserve

        def checked_reserve(now: float, completes_at: float) -> float:
            start = inner(now, completes_at)
            _checks.check_mshr(self, now, start)
            return start

        self.reserve = checked_reserve  # type: ignore[method-assign]

    def drain_until(self, now: float) -> None:
        """Retire every miss that has completed by ``now``."""
        while self._completions and self._completions[0] <= now:
            heapq.heappop(self._completions)

    def reserve(self, now: float, completes_at: float) -> float:
        """Register a miss completing at ``completes_at``.

        Returns the time at which the reservation could actually be
        made: ``now`` if a slot was free, otherwise the completion time
        of the oldest outstanding miss (the stall the core experiences).
        """
        completions = self._completions
        while completions and completions[0] <= now:   # drain_until
            heappop(completions)
        start = now
        if len(completions) >= self.entries:
            start = heappop(completions)
            self.stats.full_stalls += 1
        heappush(completions, completes_at)
        self.stats.reservations += 1
        return start

    @property
    def outstanding(self) -> int:
        """Number of misses currently in flight."""
        return len(self._completions)

    def oldest_completion(self) -> Optional[float]:
        """Completion time of the oldest in-flight miss, if any."""
        return self._completions[0] if self._completions else None

    def latest_completion(self) -> Optional[float]:
        """Completion time of the youngest in-flight miss, if any."""
        return max(self._completions) if self._completions else None

    def flush(self) -> None:
        """Drop all reservations (end of simulation)."""
        self._completions.clear()
