"""Approximation in memory, gated by atom semantics (Table 1, row 6).

Approximate-memory techniques (lowered DRAM refresh, voltage scaling,
lossy compression) trade occasional bit errors for latency/energy.
They are only safe on data the *application* declared tolerant -- the
``APPROXIMABLE`` data property -- and the paper's row-6 benefit is
precisely that "each memory component [can] track how approximable
data is (at a fine granularity) to inform approximation techniques".

:class:`ApproximateMemory` models a memory with a fast-but-lossy mode:
accesses to APPROXIMABLE atoms use the fast timing and accrue a
bounded error probability; everything else uses reliable timing.  The
critical invariant -- **never approximate unannotated data** -- is what
the tests pin down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.attributes import DataProperty
from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class ApproxConfig:
    """Timing/error trade-off of the approximate mode."""

    reliable_latency: float = 140.0
    approx_latency: float = 90.0
    #: Per-access probability of a (tolerated) bit flip.
    error_rate: float = 1e-4

    def __post_init__(self) -> None:
        if self.approx_latency >= self.reliable_latency:
            raise ConfigurationError(
                "approximate mode must be faster than reliable mode"
            )
        if not 0 <= self.error_rate < 1:
            raise ConfigurationError("error_rate must be in [0, 1)")


@dataclass
class ApproxStats:
    """Traffic split and injected-error count."""

    reliable_accesses: int = 0
    approx_accesses: int = 0
    injected_errors: int = 0

    @property
    def approx_share(self) -> float:
        """Fraction of accesses served by the approximate path."""
        total = self.reliable_accesses + self.approx_accesses
        return self.approx_accesses / total if total else 0.0


class ApproximateMemory:
    """Route accesses to the reliable or approximate path by atom.

    ``lookup_atom`` resolves a physical address to the active atom (or
    None).  Only atoms carrying ``DataProperty.APPROXIMABLE`` take the
    fast path.
    """

    def __init__(self, lookup_atom: Callable[[int], Optional[object]],
                 config: Optional[ApproxConfig] = None,
                 seed: int = 0) -> None:
        self._lookup_atom = lookup_atom
        self.config = config or ApproxConfig()
        self._rng = random.Random(seed)
        self.stats = ApproxStats()

    def is_approximable(self, paddr: int) -> bool:
        """Whether the data at ``paddr`` tolerates approximation."""
        atom = self._lookup_atom(paddr)
        if atom is None:
            return False
        return atom.attributes.data.has(DataProperty.APPROXIMABLE)

    def access(self, paddr: int) -> float:
        """One read; returns its latency (and may inject an error)."""
        if self.is_approximable(paddr):
            self.stats.approx_accesses += 1
            if self._rng.random() < self.config.error_rate:
                self.stats.injected_errors += 1
            return self.config.approx_latency
        self.stats.reliable_accesses += 1
        return self.config.reliable_latency

    @property
    def mean_latency_saved(self) -> float:
        """Cycles saved so far by the approximate path."""
        return self.stats.approx_accesses * (
            self.config.reliable_latency - self.config.approx_latency
        )
