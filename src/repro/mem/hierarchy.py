"""Multi-level cache hierarchy (Table 3: L1 / L2 / L3).

The hierarchy is functional: it decides hits, fills, evictions, and
writebacks, and reports which level satisfied each access.  Timing
(latencies, DRAM service) is layered on top by :mod:`repro.sim.system`
so the same functional model serves both use cases.

Policy hooks:

* ``pin_predicate(line_addr) -> bool`` -- consulted on LLC fills; when
  True the line is installed pinned/high-priority (Use Case 1).  The
  default pins nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.mem.cache import Cache


@dataclass(frozen=True)
class LevelConfig:
    """Geometry + latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int                  # lookup latency, CPU cycles
    policy: str = "lru"


@dataclass
class HierarchyOutcome:
    """Functional outcome of one demand access."""

    #: Index of the level that hit (0 = L1); None = missed everywhere.
    hit_level: Optional[int]
    #: Line addresses evicted dirty from the LLC (DRAM writes).
    memory_writebacks: List[int] = field(default_factory=list)
    #: Cycles spent traversing cache lookups (excl. DRAM).
    lookup_latency: int = 0
    #: The LLC access missed but hit a prefetched line further probing.
    llc_prefetch_hit: bool = False

    @property
    def memory_read(self) -> bool:
        """True when the access had to be fetched from DRAM."""
        return self.hit_level is None


def _never_pin(addr: int) -> bool:
    """Default pin predicate: nothing is pinned.

    A module-level function (not a per-instance lambda) so fast paths
    can recognize the default by identity and skip the call entirely.
    """
    return False


class CacheHierarchy:
    """An inclusive-by-fill (non-enforced) write-back hierarchy."""

    def __init__(self, levels: Sequence[LevelConfig],
                 line_bytes: int = 64) -> None:
        if not levels:
            raise ConfigurationError("hierarchy needs at least one level")
        self.line_bytes = line_bytes
        #: Mask form of line alignment (None when line_bytes is not a
        #: power of two and the modulo fallback must be used).
        self._line_mask = (~(line_bytes - 1)
                           if not (line_bytes & (line_bytes - 1))
                           else None)
        self.levels: List[Cache] = [
            Cache(cfg.name, cfg.size_bytes, cfg.ways,
                  line_bytes=line_bytes, policy=cfg.policy)
            for cfg in levels
        ]
        self.latencies: List[int] = [cfg.latency for cfg in levels]
        self.pin_predicate: Callable[[int], bool] = _never_pin
        # Hot-path hoists (the level list is fixed after construction):
        # bound per-level access methods and the level count, so
        # access_flat does no len()/getattr work per trace event.
        self._num_levels = len(self.levels)
        self._last_level = self._num_levels - 1
        self._level_access = [c.access for c in self.levels]

    @property
    def llc(self) -> Cache:
        """The last-level cache."""
        return self.levels[-1]

    def stat_groups(self):
        """StatGroup protocol: every level under ``cache.<name>``."""
        for cache in self.levels:
            for sub, group in cache.stat_groups():
                yield f"cache.{sub}", group

    def line_addr(self, addr: int) -> int:
        """Line-align an address."""
        if self._line_mask is not None:
            return addr & self._line_mask
        return addr - (addr % self.line_bytes)

    # -- Demand path ----------------------------------------------------

    def access(self, addr: int, is_write: bool) -> HierarchyOutcome:
        """One demand access, with all fills and writebacks applied."""
        hit_level, lookup, llc_prefetch_hit, wbs = self.access_flat(
            addr, is_write)
        return HierarchyOutcome(
            hit_level=hit_level,
            memory_writebacks=wbs if wbs is not None else [],
            lookup_latency=lookup,
            llc_prefetch_hit=llc_prefetch_hit,
        )

    def access_flat(self, addr: int, is_write: bool):
        """:meth:`access` without the outcome object -- the engine's
        zero-object fast path.

        Returns ``(hit_level, lookup_latency, llc_prefetch_hit,
        memory_writebacks)`` where the writeback list is None unless a
        dirty LLC victim was produced, so the dominant hit path
        allocates nothing at all.
        """
        # Hot path: every trace event lands here.
        line = (addr & self._line_mask if self._line_mask is not None
                else addr - (addr % self.line_bytes))
        latencies = self.latencies
        level_access = self._level_access
        num_levels = self._num_levels
        last = self._last_level
        lookup = 0
        hit_level: Optional[int] = None
        llc_prefetch_hit = False
        for i in range(num_levels):
            lookup += latencies[i]
            result = level_access[i](line, is_write and i == 0)
            if result.hit:
                hit_level = i
                if i == last:
                    llc_prefetch_hit = result.was_prefetched
                break
        if hit_level == 0:
            return 0, lookup, llc_prefetch_hit, None
        # Fill the levels above the hit point (or all levels on a full
        # miss -- the caller charges the DRAM read).  L1 gets the dirty
        # bit on a write (write-allocate); inner copies stay clean.
        # Every level above the hit point just missed in the lookup
        # scan, so the fills use :meth:`Cache.fill_absent`; the
        # downward victim ripple -- which may land on a resident
        # line -- pays for the presence check via :meth:`Cache.fill`.
        # Dirty LLC victims are collected for the caller (None when
        # there are none -- the common case, kept allocation-free).
        levels = self.levels
        top = hit_level if hit_level is not None else num_levels
        pin_predicate = self.pin_predicate
        mem_wbs: Optional[List[int]] = None
        for i in range(top - 1, -1, -1):
            pinned = i == last and pin_predicate(line)
            wb = levels[i].fill_absent(line, dirty=(is_write and i == 0),
                                       pinned=pinned)
            if wb is not None:
                j = i + 1
                while True:
                    if j > last:
                        if mem_wbs is None:
                            mem_wbs = []
                        mem_wbs.append(wb)
                        break
                    wb = levels[j].fill(wb, dirty=True)
                    if wb is None:
                        break
                    j += 1
        return hit_level, lookup, llc_prefetch_hit, mem_wbs

    # -- Prefetch path ----------------------------------------------------

    def fill_prefetch(self, line: int) -> HierarchyOutcome:
        """Install a prefetched line into the LLC only.

        Returns an outcome whose ``memory_read`` indicates whether the
        line actually had to be fetched (False if already resident).
        """
        memory_read, wb = self.fill_prefetch_flat(line)
        outcome = HierarchyOutcome(
            hit_level=None if memory_read else self._last_level)
        if wb is not None:
            outcome.memory_writebacks.append(wb)
        return outcome

    def fill_prefetch_flat(self, line: int):
        """:meth:`fill_prefetch` without the outcome object.

        Returns ``(memory_read, dirty_victim_line_or_None)``.  One tag
        scan decides residency (``probe`` followed by ``fill`` scanned
        the set twice), and nothing is allocated on the already-resident
        path -- the common case once a stream's lead lines are in.
        """
        llc = self.llc
        if llc._find(llc._index(line), llc._tag(line)) is not None:
            return False, None
        wb = llc.fill_absent(line, pinned=self.pin_predicate(line),
                             prefetch=True)
        return True, wb

    # -- Maintenance ---------------------------------------------------------

    def invalidate_all(self) -> None:
        """Flush every level without writebacks (test helper)."""
        for cache in self.levels:
            cache.invalidate_all()

    def total_hits(self) -> int:
        """Demand hits summed over all levels."""
        return sum(c.stats.hits for c in self.levels)

    def __repr__(self) -> str:
        return "CacheHierarchy(" + ", ".join(map(repr, self.levels)) + ")"
