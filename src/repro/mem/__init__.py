"""Cache-hierarchy substrate: caches, replacement, prefetchers, MSHRs,
plus the Table-1 component models (compression, DRAM cache, NUCA,
approximate memory)."""

from repro.mem.approx import ApproxConfig, ApproximateMemory
from repro.mem.cache import AccessResult, Cache, CacheStats
from repro.mem.compression import (
    BaseDeltaCompressor,
    CompressedLine,
    CompressionStats,
    FloatCompressor,
    SemanticCompressionEngine,
    SparseCompressor,
    ZeroLineCompressor,
)
from repro.mem.dram_cache import DramCache, SemanticDramCachePolicy
from repro.mem.nuca import (
    NucaCandidate,
    NucaMachine,
    hashed_placement,
    mean_latency,
    plan_nuca_placement,
)
from repro.mem.hierarchy import (
    CacheHierarchy,
    HierarchyOutcome,
    LevelConfig,
)
from repro.mem.mshr import MSHRFile, MSHRStats
from repro.mem.prefetch import (
    MultiStridePrefetcher,
    PrefetchStats,
    XMemPrefetcher,
)
from repro.mem.replacement import (
    BRRIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    POLICIES,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    make_policy,
)

__all__ = [
    "AccessResult",
    "ApproxConfig",
    "ApproximateMemory",
    "BRRIPPolicy",
    "BaseDeltaCompressor",
    "CompressedLine",
    "CompressionStats",
    "DramCache",
    "FloatCompressor",
    "NucaCandidate",
    "NucaMachine",
    "SemanticCompressionEngine",
    "SemanticDramCachePolicy",
    "SparseCompressor",
    "ZeroLineCompressor",
    "hashed_placement",
    "mean_latency",
    "plan_nuca_placement",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "DRRIPPolicy",
    "HierarchyOutcome",
    "LRUPolicy",
    "LevelConfig",
    "MSHRFile",
    "MSHRStats",
    "MultiStridePrefetcher",
    "POLICIES",
    "PrefetchStats",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "XMemPrefetcher",
    "make_policy",
]
