"""Scenario factory: declarative workload specs + trace ingestion.

Hundreds of scenarios as data, not code.  A *scenario spec* is a JSON
dict that either describes a synthetic workload (phases over the
promoted generator primitives -- strided, pointer-chase, hot-set, mix
-- plus footprint regions and atom annotations) or imports a foreign
address stream (valgrind-lackey-style text or CSV), and compiles into
the same :class:`~repro.cpu.trace.PackedTrace` +
:class:`~repro.sim.runner.TraceRecording` the hand-written kernels
produce.  The canonical spec's content hash keys the trace cache and
lands in run manifests as provenance, so a scenario's identity is its
bytes.

Layer map (strictly one-directional):

* :mod:`repro.scenarios.spec` -- validate/canonicalize/hash/compile
  workload specs (pure; raises
  :class:`~repro.core.errors.ScenarioError`).
* :mod:`repro.scenarios.importer` -- the versioned lackey/CSV
  ingestion path with sha256 integrity checks.
* :mod:`repro.scenarios.registry` -- shipped examples and spec-file
  loading; the only layer that reads the filesystem.

Wiring into the harness lives in :mod:`repro.sim.runner`
(``ScenarioPoint``, ``scenario_trace_key``), :mod:`repro.cli`
(``sweep --scenarios``, ``scenario:`` corun tenants), and
:mod:`repro.serve` (a spec is just another scenario body).
"""

from repro.core.errors import ScenarioError
from repro.scenarios.spec import (
    SCENARIO_SPEC_VERSION,
    canonical_json,
    canonicalize,
    compile_canonical,
    spec_hash,
)
from repro.scenarios.registry import (
    example_names,
    get_example,
    load_spec_file,
    resolve,
)

__all__ = [
    "SCENARIO_SPEC_VERSION",
    "ScenarioError",
    "canonical_json",
    "canonicalize",
    "compile_canonical",
    "spec_hash",
    "example_names",
    "get_example",
    "load_spec_file",
    "resolve",
]
