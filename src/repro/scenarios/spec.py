"""The declarative workload-spec DSL: validate, canonicalize, compile.

A *scenario spec* is a plain JSON/dict description of a synthetic
workload -- footprint regions, atom annotations, and a phase list
drawn from the seeded generator primitives (strided, pointer-chase,
hot-set, and a weighted mix of the three).  The spec promotes what
:mod:`repro.testing.generators` does in code to data: hundreds of new
scenarios are JSON files, not Python.

The pipeline has exactly three stages, each a pure function:

* :func:`canonicalize` -- validate a raw spec dict and return its
  canonical form: every default materialized, every field
  range-checked, keys at every level rejected when unknown.  Raises
  :class:`~repro.core.errors.ScenarioError` on anything malformed.
* :func:`spec_hash` -- the 16-hex-char content hash of the canonical
  form (compact sorted JSON).  Identical specs hash identically; any
  single-field change rehashes.  This hash keys the trace cache (see
  :func:`repro.sim.runner.scenario_trace_key`) and lands in run
  manifests as scenario provenance.
* :func:`compile_canonical` -- walk the canonical spec into a
  :class:`~repro.sim.runner.TraceRecording`: atoms become a recorded
  ``create_atom`` setup log plus ``atom_map``/``atom_activate``
  :class:`~repro.cpu.trace.XMemOp` events at the head of the stream
  (the same discipline as suite tenants), phases emit straight into a
  :class:`~repro.cpu.trace.TraceBuilder`.  Deterministic: each phase
  draws from its own RNG seeded by (spec seed, phase index), so
  recompiling a spec is bit-identical, serial or parallel, cold or
  hot cache.

Import specs (``"format": "lackey" | "csv"``) are dispatched to
:mod:`repro.scenarios.importer` from the same two entry points, so a
foreign address stream is just another scenario body.
"""

from __future__ import annotations

import hashlib
import json
import random
import re
from typing import Dict, List, Optional

from repro.core.errors import ScenarioError
from repro.cpu.trace import TraceBuilder, XMemOp

#: Bump when the canonical schema changes incompatibly; canonical
#: specs carry it, so old hashes cannot collide with new semantics.
SCENARIO_SPEC_VERSION = 1

#: Structure bases are page-aligned, like suite tenants.
PAGE_BYTES = 4096

#: Auto-laid regions start here (clear of address 0 so a zero vaddr
#: in a trace is visibly wrong, matching the generators' discipline).
LAYOUT_BASE = 0x10000

PHASE_KINDS = ("strided", "pointer_chase", "hot_set", "mix")
PATTERNS = ("regular", "irregular", "non_det")
RW_CHARS = ("read_only", "read_write", "write_heavy", "write_only")

MAX_REGIONS = 64
MAX_ATOMS = 64
MAX_PHASES = 256
MAX_REGION_BYTES = 1 << 30
MAX_ACCESSES_PER_PHASE = 1_000_000
MAX_TOTAL_ACCESSES = 4_000_000
MAX_WORK_PER_ACCESS = 1 << 20

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.\-]{0,47}$")

#: The generators' strided-phase stride menu, reused by ``mix``.
_MIX_STRIDES = (1, 1, 2, 3, 5, 8, 16)
#: The generators' hot-set hit fraction, reused by ``mix``.
_MIX_HOT_FRAC = 0.85


def _err(path: str, message: str) -> ScenarioError:
    return ScenarioError(f"{path}: {message}")


def _require_dict(value: object, path: str) -> dict:
    if not isinstance(value, dict):
        raise _err(path, f"must be an object, got {type(value).__name__}")
    return value


def _check_keys(body: dict, allowed: Dict[str, object], path: str) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise _err(path, f"unknown keys {unknown}; "
                         f"allowed: {sorted(allowed)}")


def _get_int(body: dict, key: str, path: str, default: Optional[int],
             lo: int, hi: int) -> int:
    value = body.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _err(f"{path}.{key}",
                   f"must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise _err(f"{path}.{key}",
                   f"must be in [{lo}, {hi}], got {value}")
    return value


def _get_frac(body: dict, key: str, path: str, default: float) -> float:
    value = body.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _err(f"{path}.{key}", f"must be a number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise _err(f"{path}.{key}",
                   f"must be in [0.0, 1.0], got {value}")
    return value


def _get_name(body: dict, key: str, path: str) -> str:
    value = body.get(key)
    if not isinstance(value, str) or not _NAME_RE.match(value):
        raise _err(f"{path}.{key}",
                   f"must be an identifier matching "
                   f"{_NAME_RE.pattern!r}, got {value!r}")
    return value


def _get_choice(body: dict, key: str, path: str, default: str,
                choices) -> str:
    value = body.get(key, default)
    if value not in choices:
        raise _err(f"{path}.{key}",
                   f"must be one of {list(choices)}, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------

def canonicalize(body: object) -> Dict[str, object]:
    """Validate a raw spec dict; return its fully defaulted canonical
    form (what :func:`spec_hash` hashes and :func:`compile_canonical`
    compiles).  Idempotent: canonicalizing a canonical spec returns an
    equal dict.  Raises :class:`ScenarioError` on anything malformed.
    """
    body = _require_dict(body, "spec")
    if "format" in body:
        from repro.scenarios.importer import canonicalize_import
        return canonicalize_import(body)
    return _canonicalize_workload(body)


def _canonicalize_workload(body: dict) -> Dict[str, object]:
    path = "spec"
    allowed = {"kind": None, "version": None, "name": None,
               "seed": None, "line_bytes": None,
               "work_per_access": None, "regions": None,
               "atoms": None, "phases": None}
    _check_keys(body, allowed, path)
    kind = body.get("kind", "workload")
    if kind != "workload":
        raise _err(f"{path}.kind",
                   f"must be 'workload' for a phase spec, got {kind!r}")
    version = _get_int(body, "version", path, SCENARIO_SPEC_VERSION, 1,
                       SCENARIO_SPEC_VERSION)
    name = _get_name(body, "name", path)
    seed = _get_int(body, "seed", path, 0, 0, (1 << 63) - 1)
    line_bytes = _get_int(body, "line_bytes", path, 64, 8, 4096)
    if line_bytes & (line_bytes - 1):
        raise _err(f"{path}.line_bytes",
                   f"must be a power of two, got {line_bytes}")
    work = _get_int(body, "work_per_access", path, 0, 0,
                    MAX_WORK_PER_ACCESS)

    raw_regions = body.get("regions")
    if not isinstance(raw_regions, list) or not raw_regions:
        raise _err(f"{path}.regions",
                   f"must be a non-empty list, got {raw_regions!r}")
    if len(raw_regions) > MAX_REGIONS:
        raise _err(f"{path}.regions",
                   f"at most {MAX_REGIONS} regions, got "
                   f"{len(raw_regions)}")
    regions: List[dict] = []
    region_names: Dict[str, int] = {}
    for i, raw in enumerate(raw_regions):
        rpath = f"{path}.regions[{i}]"
        raw = _require_dict(raw, rpath)
        _check_keys(raw, {"name": None, "bytes": None, "base": None},
                    rpath)
        rname = _get_name(raw, "name", rpath)
        if rname in region_names:
            raise _err(rpath, f"duplicate region name {rname!r}")
        nbytes = _get_int(raw, "bytes", rpath, None, line_bytes,
                          MAX_REGION_BYTES)
        base = raw.get("base")
        if base is not None:
            if isinstance(base, bool) or not isinstance(base, int):
                raise _err(f"{rpath}.base",
                           f"must be an integer or null, got {base!r}")
            if base < 0 or base % line_bytes:
                raise _err(f"{rpath}.base",
                           f"must be >= 0 and {line_bytes}-byte "
                           f"aligned, got {base}")
        region_names[rname] = len(regions)
        regions.append({"name": rname, "bytes": nbytes, "base": base})

    raw_atoms = body.get("atoms", [])
    if not isinstance(raw_atoms, list):
        raise _err(f"{path}.atoms",
                   f"must be a list, got {raw_atoms!r}")
    if len(raw_atoms) > MAX_ATOMS:
        raise _err(f"{path}.atoms",
                   f"at most {MAX_ATOMS} atoms, got {len(raw_atoms)}")
    atoms: List[dict] = []
    atom_names = set()
    for i, raw in enumerate(raw_atoms):
        apath = f"{path}.atoms[{i}]"
        raw = _require_dict(raw, apath)
        _check_keys(raw, {"name": None, "region": None, "pattern": None,
                          "stride_bytes": None, "rw": None,
                          "intensity": None, "reuse": None}, apath)
        aname = _get_name(raw, "name", apath)
        if aname in atom_names:
            raise _err(apath, f"duplicate atom name {aname!r}")
        atom_names.add(aname)
        region = raw.get("region")
        if region not in region_names:
            raise _err(f"{apath}.region",
                       f"unknown region {region!r}; "
                       f"regions: {sorted(region_names)}")
        pattern = _get_choice(raw, "pattern", apath, "regular", PATTERNS)
        stride = raw.get("stride_bytes",
                         line_bytes if pattern == "regular" else None)
        if stride is not None:
            if isinstance(stride, bool) or not isinstance(stride, int) \
                    or stride <= 0:
                raise _err(f"{apath}.stride_bytes",
                           f"must be a positive integer or null, "
                           f"got {stride!r}")
        atoms.append({
            "name": aname, "region": region, "pattern": pattern,
            "stride_bytes": stride,
            "rw": _get_choice(raw, "rw", apath, "read_write", RW_CHARS),
            "intensity": _get_int(raw, "intensity", apath, 128, 0, 255),
            "reuse": _get_int(raw, "reuse", apath, 128, 0, 255),
        })

    raw_phases = body.get("phases")
    if not isinstance(raw_phases, list) or not raw_phases:
        raise _err(f"{path}.phases",
                   f"must be a non-empty list, got {raw_phases!r}")
    if len(raw_phases) > MAX_PHASES:
        raise _err(f"{path}.phases",
                   f"at most {MAX_PHASES} phases, got "
                   f"{len(raw_phases)}")
    phases: List[dict] = []
    total_accesses = 0
    for i, raw in enumerate(raw_phases):
        ppath = f"{path}.phases[{i}]"
        phase = _canonicalize_phase(raw, ppath, regions, region_names,
                                    line_bytes)
        total_accesses += phase["accesses"]
        phases.append(phase)
    if total_accesses > MAX_TOTAL_ACCESSES:
        raise _err(f"{path}.phases",
                   f"total accesses {total_accesses} over the "
                   f"{MAX_TOTAL_ACCESSES} bound")

    return {
        "kind": "workload",
        "version": version,
        "name": name,
        "seed": seed,
        "line_bytes": line_bytes,
        "work_per_access": work,
        "regions": regions,
        "atoms": atoms,
        "phases": phases,
    }


def _region_lines(region: dict, line_bytes: int) -> int:
    return region["bytes"] // line_bytes


def _canonicalize_phase(raw: object, path: str, regions: List[dict],
                        region_names: Dict[str, int],
                        line_bytes: int) -> dict:
    raw = _require_dict(raw, path)
    kind = raw.get("kind")
    if kind not in PHASE_KINDS:
        raise _err(f"{path}.kind",
                   f"must be one of {list(PHASE_KINDS)}, got {kind!r}")
    accesses = _get_int(raw, "accesses", path, None, 1,
                        MAX_ACCESSES_PER_PHASE)
    write_frac = _get_frac(raw, "write_frac", path, 0.0)

    def one_region() -> dict:
        rname = raw.get("region")
        if rname not in region_names:
            raise _err(f"{path}.region",
                       f"unknown region {rname!r}; "
                       f"regions: {sorted(region_names)}")
        return regions[region_names[rname]]

    if kind == "strided":
        _check_keys(raw, {"kind": None, "region": None, "accesses": None,
                          "stride_lines": None, "start_line": None,
                          "write_frac": None}, path)
        region = one_region()
        lines = _region_lines(region, line_bytes)
        stride = _get_int(raw, "stride_lines", path, 1, 1, lines)
        start = _get_int(raw, "start_line", path, 0, 0, lines - 1)
        return {"kind": kind, "region": region["name"],
                "accesses": accesses, "stride_lines": stride,
                "start_line": start, "write_frac": write_frac}
    if kind == "pointer_chase":
        _check_keys(raw, {"kind": None, "region": None, "accesses": None,
                          "write_frac": None}, path)
        region = one_region()
        return {"kind": kind, "region": region["name"],
                "accesses": accesses, "write_frac": write_frac}
    if kind == "hot_set":
        _check_keys(raw, {"kind": None, "region": None, "accesses": None,
                          "hot_lines": None, "hot_frac": None,
                          "write_frac": None}, path)
        region = one_region()
        lines = _region_lines(region, line_bytes)
        hot_lines = _get_int(raw, "hot_lines", path, min(8, lines), 1,
                             lines)
        hot_frac = _get_frac(raw, "hot_frac", path, _MIX_HOT_FRAC)
        return {"kind": kind, "region": region["name"],
                "accesses": accesses, "hot_lines": hot_lines,
                "hot_frac": hot_frac, "write_frac": write_frac}
    # mix
    _check_keys(raw, {"kind": None, "regions": None, "accesses": None,
                      "weights": None, "run_len": None,
                      "hot_lines": None, "write_frac": None}, path)
    rnames = raw.get("regions", [r["name"] for r in regions])
    if not isinstance(rnames, list) or not rnames:
        raise _err(f"{path}.regions",
                   f"must be a non-empty list of region names, "
                   f"got {rnames!r}")
    min_lines = None
    for rname in rnames:
        if rname not in region_names:
            raise _err(f"{path}.regions",
                       f"unknown region {rname!r}; "
                       f"regions: {sorted(region_names)}")
        lines = _region_lines(regions[region_names[rname]], line_bytes)
        min_lines = lines if min_lines is None else min(min_lines, lines)
    weights = raw.get("weights", [1.0, 1.0, 1.0])
    if (not isinstance(weights, list) or len(weights) != 3
            or any(isinstance(w, bool)
                   or not isinstance(w, (int, float)) or w < 0
                   for w in weights)):
        raise _err(f"{path}.weights",
                   f"must be three non-negative numbers "
                   f"(strided, pointer_chase, hot_set), got {weights!r}")
    weights = [float(w) for w in weights]
    if sum(weights) <= 0:
        raise _err(f"{path}.weights", "must sum to > 0")
    run_len = raw.get("run_len", [4, 40])
    if (not isinstance(run_len, list) or len(run_len) != 2
            or any(isinstance(v, bool) or not isinstance(v, int)
                   for v in run_len)
            or not 1 <= run_len[0] <= run_len[1]):
        raise _err(f"{path}.run_len",
                   f"must be [lo, hi] with 1 <= lo <= hi, "
                   f"got {run_len!r}")
    hot_lines = _get_int(raw, "hot_lines", path, min(8, min_lines), 1,
                         min_lines)
    return {"kind": kind, "regions": list(rnames), "accesses": accesses,
            "weights": weights, "run_len": list(run_len),
            "hot_lines": hot_lines, "write_frac": write_frac}


# ---------------------------------------------------------------------------
# Hashing
# ---------------------------------------------------------------------------

def canonical_json(canonical: Dict[str, object]) -> str:
    """The canonical spec as compact sorted JSON (the hashed bytes;
    also the picklable form a :class:`~repro.sim.runner.ScenarioPoint`
    carries into worker processes)."""
    return json.dumps(canonical, sort_keys=True, separators=(",", ":"))


def spec_hash(canonical: Dict[str, object]) -> str:
    """Content hash of one canonical spec (16 hex chars)."""
    return hashlib.sha256(
        canonical_json(canonical).encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def _phase_rng(seed: int, index: int) -> random.Random:
    """One RNG per phase, deterministic in (spec seed, phase index).

    Per-phase streams mean editing one phase leaves every other
    phase's addresses untouched -- spec diffs map to trace diffs.
    """
    return random.Random(((seed + 1) * 0x9E3779B97F4A7C15)
                         ^ (index * 0xBF58476D1CE4E5B9))


def layout_regions(canonical: Dict[str, object]) -> Dict[str, dict]:
    """Region name -> ``{"base", "bytes"}`` with auto bases laid out.

    Explicit bases are honored; ``null`` bases are assigned
    page-aligned, in declaration order, from :data:`LAYOUT_BASE`
    (past the end of any explicit region seen so far).  Deterministic
    -- the layout is part of the compiled trace's identity.
    """
    cursor = LAYOUT_BASE
    out: Dict[str, dict] = {}
    for region in canonical["regions"]:
        base = region["base"]
        if base is None:
            base = cursor
        span = -(-region["bytes"] // PAGE_BYTES) * PAGE_BYTES
        cursor = max(cursor, base + span)
        out[region["name"]] = {"base": base, "bytes": region["bytes"]}
    return out


def _setup_atoms(canonical: Dict[str, object], recorder,
                 builder: TraceBuilder,
                 layout: Dict[str, dict]) -> None:
    """Create the spec's atoms and head the stream with their
    map/activate ops (the suite-tenant discipline)."""
    from repro.core.attributes import PatternType, RWChar

    for atom in canonical["atoms"]:
        region = layout[atom["region"]]
        atom_id = recorder.create_atom(
            f"{canonical['name']}.{atom['name']}",
            pattern=PatternType(atom["pattern"]),
            stride_bytes=atom["stride_bytes"],
            rw=RWChar(atom["rw"]),
            access_intensity=atom["intensity"],
            reuse=atom["reuse"],
        )
        builder.op(XMemOp("atom_map", atom_id, region["base"],
                          region["bytes"]))
        builder.op(XMemOp("atom_activate", atom_id))


def _emit_strided(builder: TraceBuilder, rng: random.Random,
                  base: int, lines: int, line: int, accesses: int,
                  stride_lines: int, start_line: int,
                  write_frac: float, work: int) -> None:
    pos = start_line
    for _ in range(accesses):
        builder.access(base + (pos % lines) * line,
                       rng.random() < write_frac, work)
        pos += stride_lines


def _emit_chase(builder: TraceBuilder, rng: random.Random,
                base: int, lines: int, line: int, accesses: int,
                write_frac: float, work: int) -> None:
    # The generators' LCG walk: every address depends on the previous
    # one, defeating stride prefetchers.
    pos = rng.randrange(lines)
    for _ in range(accesses):
        builder.access(base + pos * line, rng.random() < write_frac,
                       work)
        pos = (pos * 1103515245 + 12345) % lines


def _emit_hot_set(builder: TraceBuilder, rng: random.Random,
                  base: int, lines: int, line: int, accesses: int,
                  hot_lines: int, hot_frac: float,
                  write_frac: float, work: int) -> None:
    hot = [rng.randrange(lines) * line for _ in range(hot_lines)]
    for _ in range(accesses):
        if rng.random() < hot_frac:
            addr = base + rng.choice(hot)
        else:
            addr = base + rng.randrange(lines) * line
        builder.access(addr, rng.random() < write_frac, work)


def _emit_mix(builder: TraceBuilder, rng: random.Random, phase: dict,
              layout: Dict[str, dict], line: int, work: int) -> None:
    remaining = phase["accesses"]
    weights = phase["weights"]
    total = sum(weights)
    lo, hi = phase["run_len"]
    write_frac = phase["write_frac"]
    while remaining:
        count = min(rng.randint(lo, hi), remaining)
        remaining -= count
        region = layout[rng.choice(phase["regions"])]
        base, lines = region["base"], region["bytes"] // line
        pick = rng.random() * total
        if pick < weights[0]:
            stride = rng.choice(_MIX_STRIDES)
            _emit_strided(builder, rng, base, lines, line, count,
                          stride, rng.randrange(lines), write_frac,
                          work)
        elif pick < weights[0] + weights[1]:
            _emit_chase(builder, rng, base, lines, line, count,
                        write_frac, work)
        else:
            _emit_hot_set(builder, rng, base, lines, line, count,
                          phase["hot_lines"], _MIX_HOT_FRAC,
                          write_frac, work)


def compile_canonical(canonical: Dict[str, object]):
    """Compile one canonical spec into a
    :class:`~repro.sim.runner.TraceRecording`.

    Pure function of the canonical dict: identical specs compile to
    bit-identical recordings (packed columns, side-table, and setup
    log alike), which is what lets the content hash key the trace
    cache.
    """
    from repro.sim.runner import SetupRecorder, TraceRecording

    if canonical.get("kind") == "import":
        from repro.scenarios.importer import compile_import
        return compile_import(canonical)

    line = canonical["line_bytes"]
    work = canonical["work_per_access"]
    layout = layout_regions(canonical)
    recorder = SetupRecorder()
    builder = TraceBuilder()
    _setup_atoms(canonical, recorder, builder, layout)
    for index, phase in enumerate(canonical["phases"]):
        rng = _phase_rng(canonical["seed"], index)
        if phase["kind"] == "mix":
            _emit_mix(builder, rng, phase, layout, line, work)
            continue
        region = layout[phase["region"]]
        base, lines = region["base"], region["bytes"] // line
        if phase["kind"] == "strided":
            _emit_strided(builder, rng, base, lines, line,
                          phase["accesses"], phase["stride_lines"],
                          phase["start_line"], phase["write_frac"],
                          work)
        elif phase["kind"] == "pointer_chase":
            _emit_chase(builder, rng, base, lines, line,
                        phase["accesses"], phase["write_frac"], work)
        else:
            _emit_hot_set(builder, rng, base, lines, line,
                          phase["accesses"], phase["hot_lines"],
                          phase["hot_frac"], phase["write_frac"], work)
    packed = builder.build()
    return TraceRecording(
        kernel=f"scenario:{spec_hash(canonical)}",
        n=len(packed), tile=0, instrumented=True,
        setup=recorder.log, packed=packed,
    )
