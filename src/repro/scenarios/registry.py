"""The shipped-example registry and spec-file loading.

This is the *only* layer that touches the filesystem.  Everything
below it (:func:`~repro.scenarios.spec.canonicalize`, the importer,
``repro serve``) works on fully inlined dicts -- a spec that names a
trace file has the file's text substituted in here, so server-side
request bodies can never read server paths.

Shipped examples live in ``repro/scenarios/examples/`` as JSON files
and are addressable by bare name everywhere a scenario reference is
accepted: ``repro sweep --scenarios streamgrid``, a
``scenario:streamgrid`` corun tenant, ``repro list``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.core.errors import ScenarioError
from repro.scenarios.spec import canonicalize

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "examples")


def example_names() -> List[str]:
    """Sorted names of the shipped example specs."""
    names = []
    for entry in os.listdir(EXAMPLES_DIR):
        if entry.endswith(".json"):
            names.append(entry[:-len(".json")])
    return sorted(names)


def load_spec_file(path: str) -> Dict[str, object]:
    """Read, inline, and canonicalize one spec file.

    Import specs may carry ``"path": "relative/to/spec.trace"``
    instead of embedded ``"text"``; the referenced file is read here
    (relative to the spec file) and inlined, so the canonical form is
    always self-contained.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            body = json.load(fh)
    except OSError as exc:
        raise ScenarioError(f"cannot read spec file {path!r}: {exc}")
    except ValueError as exc:
        raise ScenarioError(f"spec file {path!r} is not JSON: {exc}")
    if isinstance(body, dict) and "path" in body:
        if "text" in body:
            raise ScenarioError(
                f"spec file {path!r}: give 'path' or 'text', not both")
        rel = body.pop("path")
        if not isinstance(rel, str) or not rel:
            raise ScenarioError(
                f"spec file {path!r}: 'path' must be a relative "
                f"filename, got {rel!r}")
        trace_path = os.path.join(os.path.dirname(os.path.abspath(path)),
                                  rel)
        try:
            with open(trace_path, "r", encoding="utf-8") as fh:
                body["text"] = fh.read()
        except OSError as exc:
            raise ScenarioError(
                f"cannot read trace file {trace_path!r} referenced by "
                f"{path!r}: {exc}")
    return canonicalize(body)


def get_example(name: str) -> Dict[str, object]:
    """Canonical form of one shipped example, by bare name."""
    if name not in example_names():
        raise ScenarioError(
            f"unknown example scenario {name!r}; "
            f"shipped: {example_names()}")
    return load_spec_file(os.path.join(EXAMPLES_DIR, f"{name}.json"))


def resolve(ref: str) -> Dict[str, object]:
    """A scenario reference -> canonical spec.

    ``ref`` is a file path when it looks like one (contains a path
    separator or ends in ``.json``), otherwise a shipped-example name.
    """
    if os.sep in ref or "/" in ref or ref.endswith(".json"):
        return load_spec_file(ref)
    return get_example(ref)
