"""External-trace ingestion: pack foreign address streams.

Two versioned text formats come in, one :class:`PackedTrace` comes
out, with optional atom-mapping rules so an imported stream rides the
same atom-annotated pipeline as the synthetic suite:

* ``lackey-v1`` -- valgrind ``lackey --trace-mem=yes`` style lines::

      I 0x4000a0,4        # instruction fetch (coalesced into Work)
       L 0x1fff0010,8     # data load
       S 0x1fff0018,8     # data store
       M 0x1fff0020,4     # modify (load+store; packed as a write)

  Consecutive ``I`` lines coalesce into one pending instruction count
  flushed as a :class:`~repro.cpu.trace.Work`-style block before the
  next data access (scaled by ``work_per_instr``).

* ``csv-v1`` -- ``addr,rw[,size[,work]]`` rows; ``addr`` is 0x-hex or
  decimal, ``rw`` is ``R``/``W`` (also ``r/w/0/1``), ``size`` defaults
  to 1 byte, ``work`` prefixes the access with ALU instructions.
  Lines starting with ``#`` and an optional ``addr...`` header are
  skipped.

Both parsers are strict: every malformed line (truncated, bad hex,
size out of range) raises :class:`~repro.core.errors.ScenarioError`
naming the line number.  Nothing is skipped silently -- a short trace
from a corrupt input would poison the content-addressed cache forever,
so refusal is the only safe behavior.

Integrity: the canonical import spec embeds the trace text alongside
its full sha256.  A user-supplied ``sha256`` field is verified against
the text at canonicalization (and again at compile), the same
end-to-end check ``pack_trace_v1``-style packers apply, so a spec that
traveled through mail/paste/git detects corruption instead of packing
it.  Accesses wider than one cache line split into one access per
touched line, matching the line-granular synthetic generators.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ScenarioError
from repro.cpu.trace import TraceBuilder, XMemOp
from repro.scenarios.spec import (
    PATTERNS,
    RW_CHARS,
    SCENARIO_SPEC_VERSION,
    _check_keys,
    _err,
    _get_choice,
    _get_int,
    _get_name,
    _require_dict,
)

#: Accepted ``format`` values -> canonical versioned name.
FORMATS = {
    "lackey": "lackey-v1",
    "lackey-v1": "lackey-v1",
    "csv": "csv-v1",
    "csv-v1": "csv-v1",
}

#: One access may touch at most this many bytes (a lackey size field
#: beyond it is corrupt input, not a wide vector access).
MAX_ACCESS_SIZE = 512
#: Virtual addresses above 2^48 are rejected (no real stream has them;
#: a parse that produced one mis-read the line).
MAX_ADDR = 1 << 48
MAX_TEXT_BYTES = 8 << 20
MAX_IMPORT_ATOMS = 64


def canonicalize_import(body: dict) -> Dict[str, object]:
    """Validate a raw import spec; return its canonical form.

    Mirrors :func:`repro.scenarios.spec.canonicalize` for workload
    specs: defaults materialized, unknown keys rejected, the embedded
    text parsed once up front so a malformed stream is refused at
    submission time, not at first compile.
    """
    path = "spec"
    _check_keys(body, {"kind": None, "version": None, "name": None,
                       "format": None, "line_bytes": None,
                       "work_per_instr": None, "atoms": None,
                       "text": None, "sha256": None}, path)
    kind = body.get("kind", "import")
    if kind != "import":
        raise _err(f"{path}.kind",
                   f"must be 'import' for a trace import, got {kind!r}")
    version = _get_int(body, "version", path, SCENARIO_SPEC_VERSION, 1,
                       SCENARIO_SPEC_VERSION)
    name = _get_name(body, "name", path)
    fmt = body.get("format")
    if fmt not in FORMATS:
        raise _err(f"{path}.format",
                   f"must be one of {sorted(set(FORMATS))}, got {fmt!r}")
    fmt = FORMATS[fmt]
    line_bytes = _get_int(body, "line_bytes", path, 64, 8, 4096)
    if line_bytes & (line_bytes - 1):
        raise _err(f"{path}.line_bytes",
                   f"must be a power of two, got {line_bytes}")
    work_per_instr = _get_int(body, "work_per_instr", path, 1, 0, 64)

    text = body.get("text")
    if not isinstance(text, str) or not text:
        raise _err(f"{path}.text",
                   "must be the non-empty trace text (file loading "
                   "happens in the registry layer, never here)")
    if len(text.encode()) > MAX_TEXT_BYTES:
        raise _err(f"{path}.text",
                   f"over the {MAX_TEXT_BYTES}-byte bound")
    digest = hashlib.sha256(text.encode()).hexdigest()
    claimed = body.get("sha256")
    if claimed is not None and claimed != digest:
        raise _err(f"{path}.sha256",
                   f"integrity check failed: claimed {claimed!r}, "
                   f"text hashes to {digest}")

    raw_atoms = body.get("atoms", [])
    if not isinstance(raw_atoms, list):
        raise _err(f"{path}.atoms",
                   f"must be a list, got {raw_atoms!r}")
    if len(raw_atoms) > MAX_IMPORT_ATOMS:
        raise _err(f"{path}.atoms",
                   f"at most {MAX_IMPORT_ATOMS} atoms, got "
                   f"{len(raw_atoms)}")
    atoms: List[dict] = []
    atom_names = set()
    for i, raw in enumerate(raw_atoms):
        apath = f"{path}.atoms[{i}]"
        raw = _require_dict(raw, apath)
        _check_keys(raw, {"name": None, "start": None, "bytes": None,
                          "pattern": None, "stride_bytes": None,
                          "rw": None, "intensity": None, "reuse": None},
                    apath)
        aname = _get_name(raw, "name", apath)
        if aname in atom_names:
            raise _err(apath, f"duplicate atom name {aname!r}")
        atom_names.add(aname)
        start = _get_int(raw, "start", apath, None, 0, MAX_ADDR)
        nbytes = _get_int(raw, "bytes", apath, None, 1, MAX_ADDR)
        pattern = _get_choice(raw, "pattern", apath, "non_det", PATTERNS)
        stride = raw.get("stride_bytes",
                         line_bytes if pattern == "regular" else None)
        if stride is not None:
            if isinstance(stride, bool) or not isinstance(stride, int) \
                    or stride <= 0:
                raise _err(f"{apath}.stride_bytes",
                           f"must be a positive integer or null, "
                           f"got {stride!r}")
        atoms.append({
            "name": aname, "start": start, "bytes": nbytes,
            "pattern": pattern, "stride_bytes": stride,
            "rw": _get_choice(raw, "rw", apath, "read_write", RW_CHARS),
            "intensity": _get_int(raw, "intensity", apath, 128, 0, 255),
            "reuse": _get_int(raw, "reuse", apath, 128, 0, 255),
        })

    canonical = {
        "kind": "import",
        "version": version,
        "name": name,
        "format": fmt,
        "line_bytes": line_bytes,
        "work_per_instr": work_per_instr,
        "atoms": atoms,
        "text": text,
        "sha256": digest,
    }
    # Parse now: a malformed stream must be refused at submission.
    parse_text(fmt, text, line_bytes, work_per_instr)
    return canonical


# ---------------------------------------------------------------------------
# Parsers
# ---------------------------------------------------------------------------

#: Parsed access: (line-aligned vaddr, is_write, preceding work).
_Access = Tuple[int, bool, int]


def _parse_addr(field: str, lineno: int, what: str) -> int:
    field = field.strip()
    try:
        addr = int(field, 16) if field.lower().startswith("0x") \
            else int(field, 16 if what == "lackey" else 10)
    except ValueError:
        raise _err(f"line {lineno}",
                   f"bad {what} address {field!r}") from None
    if not 0 <= addr < MAX_ADDR:
        raise _err(f"line {lineno}",
                   f"address {addr:#x} out of range [0, 2^48)")
    return addr


def _parse_size(field: str, lineno: int) -> int:
    try:
        size = int(field.strip())
    except ValueError:
        raise _err(f"line {lineno}",
                   f"bad size {field!r}") from None
    if not 1 <= size <= MAX_ACCESS_SIZE:
        raise _err(f"line {lineno}",
                   f"size {size} out of range [1, {MAX_ACCESS_SIZE}]")
    return size


def _split_lines(addr: int, size: int, is_write: bool, work: int,
                 line_bytes: int, out: List[_Access]) -> None:
    """One raw access -> one access per touched cache line; the
    pending work rides on the first."""
    first = (addr // line_bytes) * line_bytes
    for line_addr in range(first, addr + size, line_bytes):
        out.append((line_addr, is_write, work))
        work = 0


def parse_lackey(text: str, line_bytes: int,
                 work_per_instr: int) -> List[_Access]:
    """Parse lackey-v1 text into line-granular accesses.  Strict:
    every non-banner, non-blank line must parse or the whole import
    is refused."""
    out: List[_Access] = []
    pending_instrs = 0
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("==") or line.startswith("--"):
            continue  # valgrind banner / blank
        tag, _, rest = line.partition(" ")
        if tag not in ("I", "L", "S", "M"):
            raise _err(f"line {lineno}",
                       f"bad lackey tag {tag!r} (want I/L/S/M): "
                       f"{raw!r}")
        addr_s, comma, size_s = rest.partition(",")
        if not comma or not addr_s.strip() or not size_s.strip():
            raise _err(f"line {lineno}",
                       f"truncated lackey line (want 'tag addr,size'): "
                       f"{raw!r}")
        addr = _parse_addr(addr_s, lineno, "lackey")
        size = _parse_size(size_s, lineno)
        if tag == "I":
            pending_instrs += 1
            continue
        work = pending_instrs * work_per_instr
        pending_instrs = 0
        _split_lines(addr, size, tag in ("S", "M"), work, line_bytes,
                     out)
    if not out:
        raise _err("spec.text",
                   "no data accesses in lackey input (empty trace)")
    return out


def parse_csv(text: str, line_bytes: int,
              work_per_instr: int) -> List[_Access]:
    """Parse csv-v1 rows (``addr,rw[,size[,work]]``)."""
    del work_per_instr  # csv rows carry explicit work counts
    out: List[_Access] = []
    seen_payload = False
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if not seen_payload and line.lower().startswith("addr"):
            continue  # header row (first payload line only)
        seen_payload = True
        fields = [f.strip() for f in line.split(",")]
        if not 2 <= len(fields) <= 4:
            raise _err(f"line {lineno}",
                       f"want 'addr,rw[,size[,work]]', got {raw!r}")
        addr = _parse_addr(fields[0], lineno, "csv")
        rw = fields[1].lower()
        if rw in ("r", "0"):
            is_write = False
        elif rw in ("w", "1"):
            is_write = True
        else:
            raise _err(f"line {lineno}",
                       f"bad rw flag {fields[1]!r} (want R/W/0/1)")
        size = _parse_size(fields[2], lineno) if len(fields) >= 3 else 1
        work = 0
        if len(fields) == 4:
            try:
                work = int(fields[3])
            except ValueError:
                raise _err(f"line {lineno}",
                           f"bad work count {fields[3]!r}") from None
            if not 0 <= work <= 1 << 20:
                raise _err(f"line {lineno}",
                           f"work count {work} out of range")
        _split_lines(addr, size, is_write, work, line_bytes, out)
    if not out:
        raise _err("spec.text", "no data accesses in csv input "
                                "(empty trace)")
    return out


def parse_text(fmt: str, text: str, line_bytes: int,
               work_per_instr: int) -> List[_Access]:
    if fmt == "lackey-v1":
        return parse_lackey(text, line_bytes, work_per_instr)
    if fmt == "csv-v1":
        return parse_csv(text, line_bytes, work_per_instr)
    raise _err("spec.format", f"unknown canonical format {fmt!r}")


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def compile_import(canonical: Dict[str, object]):
    """Compile one canonical import spec into a ``TraceRecording``.

    Re-verifies the embedded sha256 before packing -- the canonical
    dict may have been persisted and reloaded since canonicalization.
    """
    from repro.scenarios.spec import spec_hash
    from repro.core.attributes import PatternType, RWChar
    from repro.sim.runner import SetupRecorder, TraceRecording

    text = canonical["text"]
    digest = hashlib.sha256(text.encode()).hexdigest()
    if digest != canonical["sha256"]:
        raise _err("spec.sha256",
                   f"integrity check failed at compile: recorded "
                   f"{canonical['sha256']!r}, text hashes to {digest}")

    accesses = parse_text(canonical["format"], text,
                          canonical["line_bytes"],
                          canonical["work_per_instr"])
    recorder = SetupRecorder()
    builder = TraceBuilder()
    for atom in canonical["atoms"]:
        atom_id = recorder.create_atom(
            f"{canonical['name']}.{atom['name']}",
            pattern=PatternType(atom["pattern"]),
            stride_bytes=atom["stride_bytes"],
            rw=RWChar(atom["rw"]),
            access_intensity=atom["intensity"],
            reuse=atom["reuse"],
        )
        builder.op(XMemOp("atom_map", atom_id, atom["start"],
                          atom["bytes"]))
        builder.op(XMemOp("atom_activate", atom_id))
    for vaddr, is_write, work in accesses:
        if work:
            builder.work(work)
        builder.access(vaddr, is_write)
    packed = builder.build()
    return TraceRecording(
        kernel=f"scenario:{spec_hash(canonical)}",
        n=len(packed), tile=0, instrumented=True,
        setup=recorder.log, packed=packed,
    )
