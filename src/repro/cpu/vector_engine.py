"""Vectorized batch-interpretation tier over :class:`PackedTrace` columns.

:func:`run_vector` executes a packed trace with statistics bit-identical
to :meth:`TraceEngine.run_packed`, restructured around the observation
that the expensive part of interpretation is *per-event Python*, not the
model arithmetic:

* **Chunked columnar probing.**  The dense columns are viewed as numpy
  ``int64`` arrays and consumed in fixed-size chunks.  Address
  decomposition (line/set/tag) is shift-and-mask over the whole chunk,
  and residency of every access against the first-level cache is one
  vectorized compare against a tag-table snapshot
  (:meth:`Cache.resident_snapshot`).
* **Run-length fast-forwarding.**  A maximal stretch whose accesses are
  all L1-resident (and not awaiting an in-flight prefetch) has a
  closed-form effect on the machine: counters advance by run totals,
  ``now`` advances by the run's exact issue-slot sum, and replacement
  state is replayed once per *unique line* in last-occurrence order
  (:meth:`Cache.apply_hit_run`) -- O(distinct lines), not O(events).
  L1 hits never enter the MSHR (the L1 latency is bounded by
  ``PIPELINED_LATENCY`` at eligibility time), never ripple fills, and
  never trigger the prefetchers, so nothing else in the machine can
  observe the difference.
* **Fused scalar fallback.**  Events that can miss -- plus XMemOp
  boundaries -- run through a scalar path that inlines the engine /
  hierarchy / DRAM bookkeeping of the exact model into one loop body
  (same operations in the same order, so float accumulation is
  unchanged), instead of descending through six layers of method calls
  per miss.  Classification itself is adaptive: after several
  consecutive chunks classify straight to the scalar loop (a
  miss-dense phase), the per-chunk numpy probe is skipped and
  re-attempted periodically -- the probe is a pure dispatch heuristic,
  so skipping it never changes results.

Exactness of the batched time accounting relies on the timing grid:
with a power-of-two issue width every batched increment is an exact
dyadic rational, so float addition over a run commutes with the
sequential order (no rounding occurs at any step while ``now`` stays
below ``2**48``).  :func:`eligible` checks this and every structural
assumption; when any fails, :func:`run_vector` silently falls back to
``run_packed`` -- the tier is *never* allowed to be a different model,
only a faster evaluation of the same one.

Divergence between this tier and the scalar tiers is fuzz-checked by
the ``vector`` lane (:mod:`repro.testing.fuzz`) and pinned per kernel in
``tests/cpu/test_vector_engine.py``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Set

try:
    import numpy as _np
except ImportError:          # pragma: no cover - numpy ships in the image
    _np = None

from repro.cpu.engine import EngineStats, TraceEngine
from repro.cpu.trace import PackedTrace
from repro.dram.system import DramSystem
from repro.mem.cache import Cache, INVALID_TAG
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.mshr import MSHRFile
from repro.mem.prefetch import MultiStridePrefetcher, XMemPrefetcher
from repro.mem.replacement import (
    BRRIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    RRPV_MAX,
    RRPV_LONG,
    RandomPolicy,
    SRRIPPolicy,
)
from repro.sim.system import MemorySystem
from repro.testing import checks as _checks

#: Events per columnar chunk.
CHUNK = 4096
#: Blocked fraction above which a chunk skips the numpy machinery and
#: runs straight through the fused scalar loop.
SCALAR_FRACTION = 0.05
#: Segment length at or below which the batch paths use plain Python
#: loops: numpy's per-call overhead (unique/argsort/isin on tiny
#: arrays) exceeds a direct walk for short inter-miss hit runs.
SMALL_SEGMENT = 64
#: Policy-kind codes for the fused loop.
_P_LRU, _P_RRIP, _P_RANDOM = 0, 1, 2


def dyadic_k(values, k_max: int = 12) -> Optional[int]:
    """Smallest ``k`` with every value an integer multiple of ``2**-k``.

    The batch path reorders float additions; that is exact only while
    every addend and every partial sum is exactly representable, i.e.
    all time quanta live on one dyadic grid and ``now`` stays small
    enough that grid points need at most 53 mantissa bits.
    """
    for k in range(k_max + 1):
        scale = 1 << k
        if all(float(v) * scale == int(v * scale) for v in values):
            return k
    return None

_dyadic_k = dyadic_k

_POLICY_KIND = {
    LRUPolicy: _P_LRU,
    SRRIPPolicy: _P_RRIP,
    BRRIPPolicy: _P_RRIP,
    DRRIPPolicy: _P_RRIP,
    RandomPolicy: _P_RANDOM,
}

#: Replacement policies whose hit-path effect :meth:`Cache.apply_hit_run`
#: can replay in one call.  Shared with the co-run interleaver
#: (:mod:`repro.sim.corun`), whose batch eligibility gate is the same
#: argument over a different machine shape.
BATCHABLE_POLICIES = frozenset(_POLICY_KIND)


def eligible(engine: TraceEngine, trace) -> bool:
    """Whether ``(engine, trace)`` is served by the vector fast path.

    Anything unrecognized -- wrapped components, exotic policies,
    non-power-of-two geometry, address translation -- falls back, so
    the tier's correctness domain is exactly the configurations the
    equivalence suite pins.
    """
    if _np is None or type(trace) is not PackedTrace:
        return False
    if engine.translate is not None:
        return False
    issue = engine.issue_width
    if issue & (issue - 1):
        return False
    if type(engine.mshr) is not MSHRFile:
        return False
    mem = engine.memory
    if type(mem) is not MemorySystem:
        return False
    if type(mem.dram) is not DramSystem or mem.dram.perfect_rbl:
        return False
    hier = mem.hierarchy
    if type(hier) is not CacheHierarchy or hier._line_mask is None:
        return False
    for cache in hier.levels:
        if type(cache) is not Cache or cache._line_shift is None:
            return False
        if type(cache.policy) not in _POLICY_KIND:
            return False
    stride = mem.stride_prefetcher
    if stride is not None and type(stride) is not MultiStridePrefetcher:
        return False
    xmem_pf = mem.xmem_prefetcher
    if xmem_pf is not None and type(xmem_pf) is not XMemPrefetcher:
        return False
    if len(hier.levels) == 1 and (stride is not None
                                  or xmem_pf is not None):
        # Prefetches would fill the only level, breaking the batch
        # path's "L1 never holds prefetched tags" assumption.
        return False
    if hier.latencies[0] > engine.PIPELINED_LATENCY:
        return False
    if hier.levels[0]._prefetched_tags:
        return False
    if mem._prefetch_log is not None:
        return False
    timing = mem.dram.timing
    if _dyadic_k((1.0 / issue, engine.PIPELINED_LATENCY, timing.t_cl,
                  timing.t_rcd, timing.t_rp, timing.t_burst)) is None:
        return False
    if any(lat != int(lat) for lat in hier.latencies):
        return False
    return True


def run_vector(engine: TraceEngine, trace) -> EngineStats:
    """Execute ``trace``; bit-identical to ``engine.run_packed(trace)``.

    Falls back to ``run_packed`` whenever :func:`eligible` says no.
    """
    if not eligible(engine, trace):
        return engine.run_packed(trace)

    np = _np
    memory = engine.memory
    hier = memory.hierarchy
    dram = memory.dram
    mshr = engine.mshr
    reserve = mshr.reserve
    xmemlib = engine.xmemlib

    # -- Engine accumulators (mirroring run_packed's locals) ---------------
    now = 0.0
    issue = engine.issue_width
    slot = 1.0 / issue
    pipelined = engine.PIPELINED_LATENCY
    timing_ = dram.timing
    grid_k = _dyadic_k((slot, pipelined, timing_.t_cl, timing_.t_rcd,
                        timing_.t_rp, timing_.t_burst))
    # Exactness ceiling: grid points below 2**(52-k) use <= 52 mantissa
    # bits, so every addition in a batched sum is exact.
    now_limit = float(1 << (52 - grid_k))
    instructions = 0
    mem_accesses = 0
    xmem_instructions = 0
    misses_to_memory = 0
    stall_cycles = 0.0

    # -- Hierarchy state, hoisted per level --------------------------------
    caches = hier.levels
    num_levels = len(caches)
    last = num_levels - 1
    latencies = hier.latencies
    l1_latency = latencies[0]
    pin_predicate = hier.pin_predicate
    tags_lv = [c._tags for c in caches]
    dirty_lv = [c._dirty for c in caches]
    pinned_lv = [c._pinned for c in caches]
    vcount_lv = [c._valid_counts for c in caches]
    pcount_lv = [c._pinned_counts for c in caches]
    allways_lv = [c._all_ways for c in caches]
    ways_lv = [c.ways for c in caches]
    cstats_lv = [c.stats for c in caches]
    lshift_lv = [c._line_shift for c in caches]
    smask_lv = [c._set_mask for c in caches]
    tshift_lv = [c._tag_shift for c in caches]
    nsets_lv = [c.num_sets for c in caches]
    maxpin_lv = [c._max_pinned_ways for c in caches]
    pfdtags_lv = [c._prefetched_tags for c in caches]
    line_bytes = hier.line_bytes
    line_mask = hier._line_mask
    policy_lv = [c.policy for c in caches]
    pkind_lv = [_POLICY_KIND[type(c.policy)] for c in caches]
    stamp_lv = [getattr(c.policy, "_stamp", None) for c in caches]
    rrpv_lv = [getattr(c.policy, "_rrpv", None) for c in caches]
    drrip_lv = [type(c.policy) is DRRIPPolicy for c in caches]
    l1 = caches[0]
    l1_apply_hit_run = l1.apply_hit_run
    l1_tags = tags_lv[0]
    l1_shift = lshift_lv[0]
    l1_smask = smask_lv[0]
    l1_tshift = tshift_lv[0]
    l1_nsets = nsets_lv[0]

    # -- Memory-system state -----------------------------------------------
    mem_stats = memory.stats
    prefetch_ready = memory._prefetch_ready
    wbuf = memory._write_buffer
    drain_threshold = memory.write_drain_threshold
    drain_writes = memory.drain_writes
    llc_level = memory._llc_level
    stride = memory.stride_prefetcher
    stride_observe = stride.observe if stride is not None else None
    xmem_pf = memory.xmem_prefetcher
    xmem_on_miss = xmem_pf.on_demand_miss if xmem_pf is not None else None

    # -- DRAM state ---------------------------------------------------------
    addr_bank = dram._addr_bank
    timing = dram.timing
    t_burst = timing.t_burst
    channel_free = dram._channel_free
    dram_record = dram._record
    bank_access = None  # resolved per call: Bank.access is a dataclass method

    # L1 evictions / new in-flight prefetches performed by scalar events
    # demote later chunk positions out of the batchable set.
    contam: Set[int] = set()

    def dram_read(line: int, t: float) -> float:
        """Inline of DramSystem.access_completes for a demand/prefetch
        read (same operations, same order)."""
        addr, bank = addr_bank(line)
        busy = bank.busy_until
        start = t if t > busy else busy
        outcome = bank.classify(addr.row)
        data_ready = bank.access(addr.row, start, timing)
        channel = addr.channel
        free_at = channel_free[channel]
        burst_start = data_ready if data_ready > free_at else free_at
        done = burst_start + t_burst
        channel_free[channel] = done
        dram_record(outcome, done - t, False)
        return done

    def fill_absent(level: int, line: int, dirty: bool, pinned_req: bool,
                    prefetch: bool) -> Optional[int]:
        """Inline of Cache.fill_absent (policy hooks included)."""
        set_idx = (line >> lshift_lv[level]) & smask_lv[level]
        tag = line >> tshift_lv[level]
        tags = tags_lv[level][set_idx]
        dirty_row = dirty_lv[level][set_idx]
        pinned_row = pinned_lv[level][set_idx]
        pcounts = pcount_lv[level]
        stats = cstats_lv[level]
        pkind = pkind_lv[level]
        policy = policy_lv[level]
        writeback = None
        vcounts = vcount_lv[level]
        if vcounts[set_idx] < ways_lv[level]:
            way = tags.index(INVALID_TAG)
            vcounts[set_idx] += 1
        else:
            if pcounts[set_idx]:
                candidates = [w for w in allways_lv[level]
                              if not pinned_row[w]]
                if not candidates:
                    candidates = allways_lv[level]
            else:
                candidates = allways_lv[level]
            if pkind == _P_LRU:
                stamp = stamp_lv[level][set_idx]
                way = min(candidates, key=stamp.__getitem__)
            elif pkind == _P_RRIP:
                rrpv = rrpv_lv[level][set_idx]
                highest = max(map(rrpv.__getitem__, candidates))
                if highest < RRPV_MAX:
                    bump = RRPV_MAX - highest
                    for w in candidates:
                        rrpv[w] += bump
                for w in candidates:
                    if rrpv[w] >= RRPV_MAX:
                        way = w
                        break
            else:
                way = policy.victim(set_idx, candidates)
            stats.evictions += 1
            victim_tag = tags[way]
            if dirty_row[way]:
                stats.writebacks += 1
                writeback = ((victim_tag * nsets_lv[level] + set_idx)
                             * line_bytes)
            pfd = pfdtags_lv[level]
            if pfd:
                pfd.discard((set_idx, victim_tag))
            if pinned_row[way]:
                pinned_row[way] = False
                pcounts[set_idx] -= 1
            if pkind == _P_LRU:
                stamp_lv[level][set_idx][way] = 0
            elif pkind == _P_RRIP:
                rrpv_lv[level][set_idx][way] = RRPV_MAX
            if level == 0:
                contam.add((victim_tag * l1_nsets + set_idx)
                           * line_bytes)
        tags[way] = tag
        dirty_row[way] = dirty
        want_pin = pinned_req and pcounts[set_idx] < maxpin_lv[level]
        if pinned_req and not want_pin:
            stats.pin_refusals += 1
        pinned_row[way] = want_pin
        if want_pin:
            stats.pinned_fills += 1
            pcounts[set_idx] += 1
        if prefetch:
            stats.prefetch_fills += 1
            pfdtags_lv[level].add((set_idx, tag))
        if pkind == _P_LRU:
            policy._clock += 1
            stamp_lv[level][set_idx][way] = policy._clock
        elif pkind == _P_RRIP:
            if want_pin:
                rrpv_lv[level][set_idx][way] = 0
            elif drrip_lv[level]:
                phase = set_idx % DRRIPPolicy.DUEL_PERIOD
                if phase == 1 or (phase != 0
                                  and policy._psel > policy._psel_half):
                    brrip = policy._brrip
                    brrip._fill_count += 1
                    if brrip._fill_count % brrip.LONG_INTERVAL_PERIOD == 0:
                        rrpv_lv[level][set_idx][way] = RRPV_LONG
                    else:
                        rrpv_lv[level][set_idx][way] = RRPV_MAX
                else:
                    rrpv_lv[level][set_idx][way] = RRPV_LONG
            else:
                policy.on_fill(set_idx, way, high_priority=False)
        else:
            policy.on_fill(set_idx, way, high_priority=want_pin)
        return writeback

    def buffer_write(line: int, t: float) -> None:
        mem_stats.writebacks += 1
        wbuf.append(line)
        if len(wbuf) >= drain_threshold:
            drain_writes(t)

    def prefetch_fill(line: int, t: float) -> None:
        """Inline of MemorySystem._prefetch over fill_prefetch_flat."""
        set_idx = (line >> lshift_lv[last]) & smask_lv[last]
        if (line >> tshift_lv[last]) in tags_lv[last][set_idx]:
            return
        wb = fill_absent(last, line, False, pin_predicate(line), True)
        mem_stats.prefetch_reads += 1
        prefetch_ready[line] = dram_read(line, t)
        contam.add(line)
        if wb is not None:
            buffer_write(wb, t)

    def scalar_range(begin: int, end: int) -> None:
        """The fused scalar interpreter over dense positions
        ``[begin, end)`` -- the exact model, one loop body."""
        nonlocal now, instructions, mem_accesses, misses_to_memory, \
            stall_cycles
        for vaddr, m in zip(tv[begin:end], tm[begin:end]):
            if m & 2:                        # Work block
                count = m >> 2
                now += count / issue
                instructions += count
                continue
            work = m >> 2                    # MemAccess
            if work:
                now += work / issue
                instructions += work
            instructions += 1
            mem_accesses += 1
            is_write = m & 1
            # ---- MemorySystem.access, inlined ----
            line = vaddr & line_mask
            # Hierarchy walk (access_flat).
            lookup = 0
            hit_level = None
            llc_prefetch_hit = False
            for i in range(num_levels):
                lookup += latencies[i]
                set_idx = (line >> lshift_lv[i]) & smask_lv[i]
                tag = line >> tshift_lv[i]
                tags = tags_lv[i][set_idx]
                stats = cstats_lv[i]
                stats.accesses += 1
                if tag not in tags:
                    stats.misses += 1
                    if drrip_lv[i]:
                        policy = policy_lv[i]
                        phase = set_idx % DRRIPPolicy.DUEL_PERIOD
                        if phase == 0:
                            if policy._psel < policy._psel_max:
                                policy._psel += 1
                        elif phase == 1:
                            if policy._psel > 0:
                                policy._psel -= 1
                    continue
                way = tags.index(tag)
                stats.hits += 1
                if is_write and i == 0:
                    dirty_lv[i][set_idx][way] = True
                pkind = pkind_lv[i]
                if pkind == _P_LRU:
                    policy = policy_lv[i]
                    policy._clock += 1
                    stamp_lv[i][set_idx][way] = policy._clock
                elif pkind == _P_RRIP:
                    rrpv_lv[i][set_idx][way] = 0
                pfd = pfdtags_lv[i]
                if pfd:
                    key = (set_idx, tag)
                    if key in pfd:
                        stats.prefetch_hits += 1
                        pfd.discard(key)
                        if i == last:
                            llc_prefetch_hit = True
                hit_level = i
                break
            mem_wbs = None
            if hit_level != 0:
                top = hit_level if hit_level is not None else num_levels
                for i in range(top - 1, -1, -1):
                    pinned = i == last and pin_predicate(line)
                    wb = fill_absent(i, line, bool(is_write) and i == 0,
                                     pinned, False)
                    if wb is not None:
                        j = i + 1
                        while True:
                            if j > last:
                                if mem_wbs is None:
                                    mem_wbs = []
                                mem_wbs.append(wb)
                                break
                            # Cache.fill: merge if resident, else
                            # fill_absent (ripple victims may land on
                            # resident lines).
                            sj = (wb >> lshift_lv[j]) & smask_lv[j]
                            tj = wb >> tshift_lv[j]
                            wj = tags_lv[j][sj]
                            if tj in wj:
                                dirty_lv[j][sj][wj.index(tj)] = True
                                break
                            wb = fill_absent(j, wb, True, False, False)
                            if wb is None:
                                break
                            j += 1
            t_lookup = now + lookup
            memory_read = hit_level is None
            if memory_read:
                completes = dram_read(line, t_lookup)
                if prefetch_ready:
                    prefetch_ready.pop(line, None)
                if is_write:
                    mem_stats.demand_writes += 1
                else:
                    mem_stats.demand_reads += 1
            else:
                completes = t_lookup
                if prefetch_ready:
                    ready = prefetch_ready.pop(line, None)
                    if ready is not None and ready > completes:
                        completes = ready
            if mem_wbs is not None:
                for wb in mem_wbs:
                    buffer_write(wb, t_lookup)
            reached_llc = memory_read or hit_level >= llc_level
            if stride_observe is not None and reached_llc:
                for target in stride_observe(line):
                    prefetch_fill(target, now)
            if xmem_on_miss is not None and (memory_read
                                             or llc_prefetch_hit):
                for target in xmem_on_miss(vaddr):
                    prefetch_fill(target, now)
            # ---- back in the engine ----
            if memory_read:
                misses_to_memory += 1
            if completes - now > pipelined:
                start = reserve(now, completes)
                if start > now:
                    stall_cycles += start - now
                    now = start
            now += slot

    # -- Specialized scalar interpreter --------------------------------------
    # The shipped machine shape -- three levels, LRU at L1, DRRIP at
    # L2/L3, pins and prefetched-tag bookkeeping only at the LLC -- gets
    # a second fused loop with every per-level table in its own local,
    # victim selection reduced to C-level ``min``/``index`` scans, dead
    # branches removed (no pins below the LLC, no prefetched tags below
    # the LLC), the stride prefetcher and DRAM bookkeeping inlined, and
    # all statistics accumulated in local integers that are flushed to
    # the counter objects once per run.  Any other shape uses the
    # generic ``scalar_range`` above; both maintain exact model state at
    # their call boundaries, so they interleave freely.
    from repro.dram.bank import RowOutcome as _RO
    from repro.mem.hierarchy import _never_pin
    from repro.mem.prefetch import _Stream

    use_specialized = (
        not engine._check
        and num_levels == 3
        and pkind_lv == [_P_LRU, _P_RRIP, _P_RRIP]
        and not drrip_lv[0] and drrip_lv[1] and drrip_lv[2]
        and (stride is None or stride._region_shift is not None)
        and not caches[1]._prefetched_tags
        and sum(caches[0]._pinned_counts) == 0
        and sum(caches[1]._pinned_counts) == 0
        and "reserve" not in vars(mshr)
    )

    # Deferred statistics (flushed once, at end of run; sums commute
    # with the immediate updates of the generic/batch paths).
    c0a = c0h = c0m = c0ev = c0wb = 0
    c1a = c1h = c1m = c1ev = c1wb = 0
    c2a = c2h = c2m = c2ev = c2wb = 0
    c2pf = c2ph = c2pin = c2ref = 0
    m_dr = m_dw = m_pr = m_wb = 0
    d_rh = d_rc = d_rx = d_n = 0
    d_sum = 0.0
    dh_n = 0
    dh_tot = 0.0
    s_iss = s_alloc = 0
    ms_res = ms_full = 0

    def specialized_range(begin: int, end: int) -> None:
        nonlocal now, instructions, mem_accesses, misses_to_memory, \
            stall_cycles
        nonlocal c0a, c0h, c0m, c0ev, c0wb
        nonlocal c1a, c1h, c1m, c1ev, c1wb
        nonlocal c2a, c2h, c2m, c2ev, c2wb, c2pf, c2ph, c2pin, c2ref
        nonlocal m_dr, m_dw, m_pr, m_wb
        nonlocal d_rh, d_rc, d_rx, d_n, d_sum, dh_n, dh_tot
        nonlocal s_iss, s_alloc, ms_res, ms_full

        # Per-level tables in dedicated locals.
        tags0, tags1, tags2 = tags_lv
        dirty0, dirty1, dirty2 = dirty_lv
        vc0, vc1, vc2 = vcount_lv
        st0, st1, st2 = cstats_lv
        ls0, ls1, ls2 = lshift_lv
        sm0, sm1, sm2 = smask_lv
        ts0, ts1, ts2 = tshift_lv
        ns0, ns1, ns2 = nsets_lv
        ways0, ways1, ways2 = ways_lv
        allways1, allways2 = allways_lv[1], allways_lv[2]
        pinned2 = pinned_lv[2]
        pc2 = pcount_lv[2]
        maxpin2 = maxpin_lv[2]
        pfd2 = pfdtags_lv[2]
        lk1 = latencies[0]
        lk12 = lk1 + latencies[1]
        lk123 = lk12 + latencies[2]
        lb = line_bytes
        no_pin = pin_predicate is _never_pin

        # Policy state (bracketed: loaded here, stored on exit).
        l1pol = policy_lv[0]
        p1 = policy_lv[1]
        p2 = policy_lv[2]
        b1 = p1._brrip
        b2 = p2._brrip
        stamps0 = l1pol._stamp
        rrpv1 = p1._rrpv
        rrpv2 = p2._rrpv
        clk = l1pol._clock
        psel1 = p1._psel
        psel2 = p2._psel
        fc1 = b1._fill_count
        fc2 = b2._fill_count
        pmax1, phalf1 = p1._psel_max, p1._psel_half
        pmax2, phalf2 = p2._psel_max, p2._psel_half
        duel = DRRIPPolicy.DUEL_PERIOD
        lip = BRRIPPolicy.LONG_INTERVAL_PERIOD
        RMAX, RLONG = RRPV_MAX, RRPV_LONG
        ITAG = INVALID_TAG

        # Stride prefetcher, inlined.
        stride_on = stride is not None
        if stride_on:
            st_streams = stride._streams
            st_rs = stride._region_shift
            st_deg = stride.degree
            st_lb = stride.line_bytes
            st_max = stride.max_streams
            sclk = stride._clock

        # DRAM, inlined (bank.classify/bank.access stay method calls:
        # they are the model's replaceable seam).
        dmemo = dram._decomposed
        chfree = dram._channel_free
        t_burst_ = timing_.t_burst
        OUT_HIT = _RO.HIT
        OUT_CLOSED = _RO.CLOSED
        dbuck = dram.stats.read_latency_hist.buckets

        # MSHR heap, inlined (stats deferred like the rest).
        mshr_comp = mshr._completions
        mshr_cap = mshr.entries

        def fa1(si, tg, dty):
            """L2 fill_absent: DRRIP, never pinned, never prefetched."""
            nonlocal fc1, c1ev, c1wb
            row = tags1[si]
            rr = rrpv1[si]
            wbl = None
            if vc1[si] < ways1:
                way = row.index(ITAG)
                vc1[si] = vc1[si] + 1
            else:
                if RMAX in rr:
                    way = rr.index(RMAX)
                else:
                    b = RMAX - max(rr)
                    for wy in allways1:
                        rr[wy] += b
                    way = rr.index(RMAX)
                c1ev += 1
                if dirty1[si][way]:
                    c1wb += 1
                    wbl = (row[way] * ns1 + si) * lb
            row[way] = tg
            dirty1[si][way] = dty
            ph = si % duel
            if ph == 1 or (ph != 0 and psel1 > phalf1):
                fc1 += 1
                rr[way] = RLONG if fc1 % lip == 0 else RMAX
            else:
                rr[way] = RLONG
            return wbl

        def fa2(si, tg, dty, pin_req, pref):
            """LLC fill_absent: DRRIP + pinning + prefetched tags."""
            nonlocal fc2, c2ev, c2wb, c2pf, c2pin, c2ref
            row = tags2[si]
            rr = rrpv2[si]
            pr = pinned2[si]
            wbl = None
            if vc2[si] < ways2:
                way = row.index(ITAG)
                vc2[si] = vc2[si] + 1
            else:
                if pc2[si]:
                    cands = [wy for wy in allways2 if not pr[wy]]
                    if not cands:
                        cands = allways2
                    hi = max(map(rr.__getitem__, cands))
                    if hi < RMAX:
                        b = RMAX - hi
                        for wy in cands:
                            rr[wy] += b
                    for wy in cands:
                        if rr[wy] >= RMAX:
                            way = wy
                            break
                else:
                    if RMAX in rr:
                        way = rr.index(RMAX)
                    else:
                        b = RMAX - max(rr)
                        for wy in allways2:
                            rr[wy] += b
                        way = rr.index(RMAX)
                c2ev += 1
                vt = row[way]
                if dirty2[si][way]:
                    c2wb += 1
                    wbl = (vt * ns2 + si) * lb
                if pfd2:
                    pfd2.discard((si, vt))
                if pr[way]:
                    pr[way] = False
                    pc2[si] = pc2[si] - 1
            row[way] = tg
            dirty2[si][way] = dty
            if pin_req and pc2[si] < maxpin2:
                pr[way] = True
                c2pin += 1
                pc2[si] = pc2[si] + 1
                rr[way] = 0
            else:
                if pin_req:
                    c2ref += 1
                pr[way] = False
                ph = si % duel
                if ph == 1 or (ph != 0 and psel2 > phalf2):
                    fc2 += 1
                    rr[way] = RLONG if fc2 % lip == 0 else RMAX
                else:
                    rr[way] = RLONG
            return wbl

        # The L1 decomposition is needed by every event: lift it out of
        # the loop as three vectorized shifts materialized to int lists
        # (Work rows carry vaddr 0; their decomposed values are unused).
        # Pure per-event counters are commutative sums, so they fold
        # into one vectorized pass per segment; only ``now`` accrual
        # stays per-event (each access's timing observes it in order).
        seg_ln = va[begin:end] & line_mask
        seg_m = me[begin:end]
        n_mem_seg = (end - begin) - int(np.count_nonzero(seg_m & 2))
        instructions += int((seg_m >> 2).sum()) + n_mem_seg
        mem_accesses += n_mem_seg
        c0a += n_mem_seg
        for vaddr, m, line, si0, tg0 in zip(
                tv[begin:end], tm[begin:end], seg_ln.tolist(),
                ((seg_ln >> ls0) & sm0).tolist(),
                (seg_ln >> ts0).tolist()):
            if m & 2:                        # Work block
                now += (m >> 2) / issue
                continue
            work = m >> 2                    # MemAccess
            if work:
                now += work / issue
            w = m & 1
            # ---- L1 ----
            row0 = tags0[si0]
            if tg0 in row0:
                c0h += 1
                way = row0.index(tg0)
                if w:
                    dirty0[si0][way] = True
                clk += 1
                stamps0[si0][way] = clk
                if prefetch_ready:
                    ready = prefetch_ready.pop(line, None)
                    completes = now + lk1
                    if ready is not None and ready > completes:
                        completes = ready
                    if completes - now > pipelined:
                        start = reserve(now, completes)
                        if start > now:
                            stall_cycles += start - now
                            now = start
                now += slot
                continue
            c0m += 1
            # ---- L2 ----
            si1 = (line >> ls1) & sm1
            tg1 = line >> ts1
            row1 = tags1[si1]
            c1a += 1
            llc_pf = False
            if tg1 in row1:
                c1h += 1
                rrpv1[si1][row1.index(tg1)] = 0
                hit_level = 1
                lookup = lk12
            else:
                c1m += 1
                ph = si1 % duel
                if ph == 0:
                    if psel1 < pmax1:
                        psel1 += 1
                elif ph == 1:
                    if psel1 > 0:
                        psel1 -= 1
                # ---- L3 ----
                si2 = (line >> ls2) & sm2
                tg2 = line >> ts2
                row2 = tags2[si2]
                c2a += 1
                if tg2 in row2:
                    c2h += 1
                    rrpv2[si2][row2.index(tg2)] = 0
                    if pfd2:
                        key = (si2, tg2)
                        if key in pfd2:
                            c2ph += 1
                            pfd2.discard(key)
                            llc_pf = True
                    hit_level = 2
                else:
                    c2m += 1
                    ph = si2 % duel
                    if ph == 0:
                        if psel2 < pmax2:
                            psel2 += 1
                    elif ph == 1:
                        if psel2 > 0:
                            psel2 -= 1
                    hit_level = None
                lookup = lk123
            # ---- fills (top-1 .. 0, each with its victim ripple) ----
            mem_wbs = None
            if hit_level is None:
                pin_req = False if no_pin else pin_predicate(line)
                wb2 = fa2(si2, tg2, False, pin_req, False)
                if wb2 is not None:
                    mem_wbs = [wb2]
            if hit_level is None or hit_level == 2:
                wb1 = fa1(si1, tg1, False)
                if wb1 is not None:
                    sj = (wb1 >> ls2) & sm2
                    tj = wb1 >> ts2
                    rowj = tags2[sj]
                    if tj in rowj:
                        dirty2[sj][rowj.index(tj)] = True
                    else:
                        wbx = fa2(sj, tj, True, False, False)
                        if wbx is not None:
                            if mem_wbs is None:
                                mem_wbs = [wbx]
                            else:
                                mem_wbs.append(wbx)
            # L1 fill_absent (LRU, never pinned/prefetched), inlined at
            # its only call site; ``row0`` is the probed set.
            if vc0[si0] < ways0:
                fway = row0.index(ITAG)
                vc0[si0] = vc0[si0] + 1
                wb0 = None
            else:
                st = stamps0[si0]
                fway = st.index(min(st))
                c0ev += 1
                if dirty0[si0][fway]:
                    c0wb += 1
                    wb0 = (row0[fway] * ns0 + si0) * lb
                else:
                    wb0 = None
            row0[fway] = tg0
            dirty0[si0][fway] = True if w else False
            clk += 1
            stamps0[si0][fway] = clk
            if wb0 is not None:
                sj = (wb0 >> ls1) & sm1
                tj = wb0 >> ts1
                rowj = tags1[sj]
                if tj in rowj:
                    dirty1[sj][rowj.index(tj)] = True
                else:
                    wbx = fa1(sj, tj, True)
                    if wbx is not None:
                        sk = (wbx >> ls2) & sm2
                        tk = wbx >> ts2
                        rowk = tags2[sk]
                        if tk in rowk:
                            dirty2[sk][rowk.index(tk)] = True
                        else:
                            wby = fa2(sk, tk, True, False, False)
                            if wby is not None:
                                if mem_wbs is None:
                                    mem_wbs = [wby]
                                else:
                                    mem_wbs.append(wby)
            # ---- timing ----
            t_lookup = now + lookup
            if hit_level is None:
                ent = dmemo.get(line)
                if ent is None:
                    ent = addr_bank(line)
                daddr, dbank = ent
                busy = dbank.busy_until
                dstart = t_lookup if t_lookup > busy else busy
                arow = daddr.row
                outc = dbank.classify(arow)
                dready = dbank.access(arow, dstart, timing_)
                dch = daddr.channel
                dfree = chfree[dch]
                dbs = dready if dready > dfree else dfree
                completes = dbs + t_burst_
                chfree[dch] = completes
                dlat = completes - t_lookup
                if outc is OUT_HIT:
                    d_rh += 1
                elif outc is OUT_CLOSED:
                    d_rc += 1
                else:
                    d_rx += 1
                d_n += 1
                d_sum += dlat
                dv = int(dlat)
                dbd = 1 if dv <= 1 else 1 << ((dv - 1).bit_length())
                dbuck[dbd] = dbuck.get(dbd, 0) + 1
                dh_n += 1
                dh_tot += dlat
                if prefetch_ready:
                    prefetch_ready.pop(line, None)
                if w:
                    m_dw += 1
                else:
                    m_dr += 1
            else:
                completes = t_lookup
                if prefetch_ready:
                    ready = prefetch_ready.pop(line, None)
                    if ready is not None and ready > completes:
                        completes = ready
            if mem_wbs is not None:
                for wbm in mem_wbs:
                    m_wb += 1
                    wbuf.append(wbm)
                    if len(wbuf) >= drain_threshold:
                        drain_writes(t_lookup)
            # ---- prefetchers (observe at `now`, as in the model) ----
            if stride_on and (hit_level is None or hit_level == 2):
                sclk += 1
                region = line >> st_rs
                stm = st_streams.get(region)
                if stm is None:
                    if len(st_streams) >= st_max:
                        lru_r = min(
                            st_streams,
                            key=lambda r: st_streams[r].last_used)
                        del st_streams[lru_r]
                    st_streams[region] = _Stream(last_addr=line,
                                                 last_used=sclk)
                    s_alloc += 1
                else:
                    delta = line - stm.last_addr
                    stm.last_used = sclk
                    if delta != 0:
                        if delta == stm.stride:
                            stm.confirmations += 1
                        else:
                            stm.stride = delta
                            stm.confirmations = 1
                        stm.last_addr = line
                        if stm.confirmations >= 2:
                            pf_out = []
                            sdt = stm.stride
                            for pi in range(1, st_deg + 1):
                                tgt = line + sdt * pi
                                if tgt < 0:
                                    break
                                pl = tgt - (tgt % st_lb)
                                if pl not in pf_out:
                                    pf_out.append(pl)
                            s_iss += len(pf_out)
                            for target in pf_out:
                                psi = (target >> ls2) & sm2
                                ptg = target >> ts2
                                if ptg in tags2[psi]:
                                    continue
                                ppin = (False if no_pin
                                        else pin_predicate(target))
                                pwb = fa2(psi, ptg, False, ppin, True)
                                c2pf += 1
                                pfd2.add((psi, ptg))
                                m_pr += 1
                                ent = dmemo.get(target)
                                if ent is None:
                                    ent = addr_bank(target)
                                daddr, dbank = ent
                                busy = dbank.busy_until
                                dstart = now if now > busy else busy
                                arow = daddr.row
                                outc = dbank.classify(arow)
                                dready = dbank.access(arow, dstart,
                                                      timing_)
                                dch = daddr.channel
                                dfree = chfree[dch]
                                dbs = (dready if dready > dfree
                                       else dfree)
                                pdone = dbs + t_burst_
                                chfree[dch] = pdone
                                dlat = pdone - now
                                if outc is OUT_HIT:
                                    d_rh += 1
                                elif outc is OUT_CLOSED:
                                    d_rc += 1
                                else:
                                    d_rx += 1
                                d_n += 1
                                d_sum += dlat
                                dv = int(dlat)
                                dbd = (1 if dv <= 1
                                       else 1 << ((dv - 1).bit_length()))
                                dbuck[dbd] = dbuck.get(dbd, 0) + 1
                                dh_n += 1
                                dh_tot += dlat
                                prefetch_ready[target] = pdone
                                if pwb is not None:
                                    m_wb += 1
                                    wbuf.append(pwb)
                                    if len(wbuf) >= drain_threshold:
                                        drain_writes(now)
            if xmem_on_miss is not None and (hit_level is None or llc_pf):
                for target in xmem_on_miss(vaddr):
                    psi = (target >> ls2) & sm2
                    ptg = target >> ts2
                    if ptg in tags2[psi]:
                        continue
                    ppin = False if no_pin else pin_predicate(target)
                    pwb = fa2(psi, ptg, False, ppin, True)
                    c2pf += 1
                    pfd2.add((psi, ptg))
                    m_pr += 1
                    ent = dmemo.get(target)
                    if ent is None:
                        ent = addr_bank(target)
                    daddr, dbank = ent
                    busy = dbank.busy_until
                    dstart = now if now > busy else busy
                    arow = daddr.row
                    outc = dbank.classify(arow)
                    dready = dbank.access(arow, dstart, timing_)
                    dch = daddr.channel
                    dfree = chfree[dch]
                    dbs = dready if dready > dfree else dfree
                    pdone = dbs + t_burst_
                    chfree[dch] = pdone
                    dlat = pdone - now
                    if outc is OUT_HIT:
                        d_rh += 1
                    elif outc is OUT_CLOSED:
                        d_rc += 1
                    else:
                        d_rx += 1
                    d_n += 1
                    d_sum += dlat
                    dv = int(dlat)
                    dbd = 1 if dv <= 1 else 1 << ((dv - 1).bit_length())
                    dbuck[dbd] = dbuck.get(dbd, 0) + 1
                    dh_n += 1
                    dh_tot += dlat
                    prefetch_ready[target] = pdone
                    if pwb is not None:
                        m_wb += 1
                        wbuf.append(pwb)
                        if len(wbuf) >= drain_threshold:
                            drain_writes(now)
            # ---- back in the engine ----
            if hit_level is None:
                misses_to_memory += 1
            if completes - now > pipelined:
                # MSHRFile.reserve, inlined (drain + reserve-or-stall).
                while mshr_comp and mshr_comp[0] <= now:
                    heappop(mshr_comp)
                start = now
                if len(mshr_comp) >= mshr_cap:
                    start = heappop(mshr_comp)
                    ms_full += 1
                heappush(mshr_comp, completes)
                ms_res += 1
                if start > now:
                    stall_cycles += start - now
                    now = start
            now += slot

        # Store the bracketed policy/prefetcher state back.
        l1pol._clock = clk
        p1._psel = psel1
        p2._psel = psel2
        b1._fill_count = fc1
        b2._fill_count = fc2
        if stride_on:
            stride._clock = sclk

    heavy_scalar = specialized_range if use_specialized else scalar_range

    def flush_deferred() -> None:
        """Fold the specialized loop's local counters into the stats
        objects (exact: every counter is a commutative sum)."""
        s0, s1, s2 = cstats_lv
        s0.accesses += c0a
        s0.hits += c0h
        s0.misses += c0m
        s0.evictions += c0ev
        s0.writebacks += c0wb
        s1.accesses += c1a
        s1.hits += c1h
        s1.misses += c1m
        s1.evictions += c1ev
        s1.writebacks += c1wb
        s2.accesses += c2a
        s2.hits += c2h
        s2.misses += c2m
        s2.evictions += c2ev
        s2.writebacks += c2wb
        s2.prefetch_fills += c2pf
        s2.prefetch_hits += c2ph
        s2.pinned_fills += c2pin
        s2.pin_refusals += c2ref
        mem_stats.demand_reads += m_dr
        mem_stats.demand_writes += m_dw
        mem_stats.prefetch_reads += m_pr
        mem_stats.writebacks += m_wb
        ds = dram.stats
        ds.row_hits += d_rh
        ds.row_closed += d_rc
        ds.row_conflicts += d_rx
        ds.reads += d_n
        ds.read_latency_sum += d_sum
        hist = ds.read_latency_hist
        hist.count += dh_n
        hist.total += dh_tot
        if stride is not None:
            stride.stats.issued += s_iss
            stride.stats.stream_allocations += s_alloc
        mshr.stats.reservations += ms_res
        mshr.stats.full_stalls += ms_full

    # -- Batched application ------------------------------------------------

    va = np.frombuffer(trace.vaddr, dtype=np.int64) if len(trace.vaddr) \
        else np.empty(0, dtype=np.int64)
    me = np.frombuffer(trace.meta, dtype=np.int64) if len(trace.meta) \
        else np.empty(0, dtype=np.int64)
    tv = trace.vaddr
    tm = trace.meta

    def batch_apply(begin: int, end: int) -> None:
        """Fast-forward dense positions ``[begin, end)``: all accesses
        are L1 hits; Work blocks ride along.  Exact by the dyadic-grid
        argument in the module docstring."""
        nonlocal now, instructions, mem_accesses
        if end - begin <= SMALL_SEGMENT:
            # Short inter-miss hit runs: a direct walk beats numpy's
            # per-call overhead.  A dict keyed by line, re-inserted on
            # repeat, yields unique lines in last-occurrence order.
            total = 0
            n_mem = 0
            seen: dict = {}
            written = None
            for pos in range(begin, end):
                m = tm[pos]
                if m & 2:
                    total += m >> 2
                    continue
                total += m >> 2
                n_mem += 1
                ln = tv[pos] & line_mask
                if ln in seen:
                    del seen[ln]
                seen[ln] = None
                if m & 1:
                    if written is None:
                        written = {ln}
                    else:
                        written.add(ln)
            instructions += total + n_mem
            if total:
                now += total / issue
            if not n_mem:
                return
            mem_accesses += n_mem
            now += n_mem * slot
            replay = [((ln >> l1_shift) & l1_smask, ln >> l1_tshift)
                      for ln in seen]
            wr = (() if written is None else
                  [((ln >> l1_shift) & l1_smask, ln >> l1_tshift)
                   for ln in written])
            l1_apply_hit_run(n_mem, replay, wr)
            return
        m = me[begin:end]
        counts = m >> 2
        total = int(counts.sum())
        work_rows = (m & 2) != 0
        n_work = int(np.count_nonzero(work_rows))
        n_mem = (end - begin) - n_work
        instructions += total + n_mem
        if total:
            now += total / issue
        if not n_mem:
            return
        mem_accesses += n_mem
        now += n_mem * slot
        if n_work:
            mem_rows = ~work_rows
            lines = va[begin:end][mem_rows] & line_mask
            writes = (m[mem_rows] & 1) != 0
        else:
            lines = va[begin:end] & line_mask
            writes = (m & 1) != 0
        # Unique lines in last-occurrence order: first occurrence over
        # the reversed run, mapped back.
        rev = lines[::-1]
        uniq, first_rev = np.unique(rev, return_index=True)
        order = np.argsort(first_rev)[::-1]
        replay = []
        for ln in uniq[order]:
            ln = int(ln)
            replay.append(((ln >> l1_shift) & l1_smask, ln >> l1_tshift))
        if writes.any():
            written = []
            for ln in np.unique(lines[writes]):
                ln = int(ln)
                written.append(((ln >> l1_shift) & l1_smask,
                                ln >> l1_tshift))
        else:
            written = ()
        l1_apply_hit_run(n_mem, replay, written)

    def batch_guarded(begin: int, end: int) -> None:
        """Apply ``[begin, end)`` as hit batches, splitting at positions
        whose line was contaminated (evicted from L1 or newly awaited
        from a prefetch) by an earlier scalar event of this chunk."""
        while begin < end:
            if contam:
                if end - begin <= SMALL_SEGMENT:
                    split = -1
                    for pos in range(begin, end):
                        if (tv[pos] & line_mask) in contam:
                            split = pos
                            break
                else:
                    hot = np.isin(va[begin:end] & line_mask,
                                  np.fromiter(contam, np.int64,
                                              len(contam)))
                    bad = np.flatnonzero(hot)
                    split = begin + int(bad[0]) if bad.size else -1
                if split >= 0:
                    if split > begin:
                        batch_apply(begin, split)
                    scalar_range(split, split + 1)
                    begin = split + 1
                    continue
            batch_apply(begin, end)
            return

    # Adaptive probing: after several consecutive chunks classified
    # straight to the scalar loop, the workload is in a miss-dense
    # phase -- skip the (pure-heuristic) numpy classification for a
    # while and re-probe periodically.  Exact either way: the scalar
    # loop is the reference interpretation of any range.
    scalar_streak = 0
    scalar_skips = 0

    def process_range(begin: int, end: int) -> None:
        """One dense segment (no XMemOp inside), chunk by chunk."""
        nonlocal scalar_streak, scalar_skips
        pos = begin
        while pos < end:
            stop = pos + CHUNK
            if stop > end:
                stop = end
            if now >= now_limit:
                # Too large for exact batched accumulation (unreachable
                # in practice); finish the run scalar.
                heavy_scalar(pos, end)
                return
            if scalar_streak >= 4:
                heavy_scalar(pos, stop)
                pos = stop
                scalar_skips += 1
                if scalar_skips >= 12:
                    scalar_streak = 0
                    scalar_skips = 0
                continue
            contam.clear()
            v = va[pos:stop]
            m = me[pos:stop]
            is_mem = (m & 2) == 0
            if not is_mem.any():
                batch_apply(pos, stop)
                pos = stop
                continue
            lines = v & line_mask
            set_idx = (v >> l1_shift) & l1_smask
            tag = v >> l1_tshift
            table = np.array(l1_tags, dtype=np.int64)
            resident = (table[set_idx] == tag[:, None]).any(axis=1)
            blocked = is_mem & ~resident
            if prefetch_ready:
                waiting = np.fromiter(prefetch_ready, np.int64,
                                      len(prefetch_ready))
                blocked |= is_mem & np.isin(lines, waiting)
            n_blocked = int(np.count_nonzero(blocked))
            if n_blocked == 0:
                batch_apply(pos, stop)
                scalar_streak = 0
            elif n_blocked > SCALAR_FRACTION * (stop - pos):
                heavy_scalar(pos, stop)
                scalar_streak += 1
            else:
                scalar_streak = 0
                # Coalesce adjacent blocked positions into one scalar
                # call; batch the guarded gaps between them.
                cursor = pos
                run_start = -1
                run_end = -1
                for p in np.flatnonzero(blocked):
                    p = pos + int(p)
                    if p == run_end:
                        run_end = p + 1
                        continue
                    if run_start >= 0:
                        if run_start > cursor:
                            batch_guarded(cursor, run_start)
                        scalar_range(run_start, run_end)
                        cursor = run_end
                    run_start, run_end = p, p + 1
                if run_start >= 0:
                    if run_start > cursor:
                        batch_guarded(cursor, run_start)
                    scalar_range(run_start, run_end)
                    cursor = run_end
                if cursor < stop:
                    batch_guarded(cursor, stop)
            pos = stop

    # -- Drive the segments (XMemOp side table as in run_packed) -----------
    done = 0
    for idx, op in trace.xmem:
        if idx > done:
            process_range(done, idx)
            done = idx
        instructions += 1
        xmem_instructions += 1
        now += slot
        if xmemlib is not None:
            getattr(xmemlib, op.method)(*op.args)
    total_dense = len(tv)
    if total_dense > done:
        process_range(done, total_dense)

    flush_deferred()
    tail = mshr.latest_completion()
    if tail is not None and tail > now:
        now = tail
    mshr.flush()
    engine.last_stats = EngineStats(
        cycles=now,
        instructions=instructions,
        mem_accesses=mem_accesses,
        xmem_instructions=xmem_instructions,
        misses_to_memory=misses_to_memory,
        stall_cycles=stall_cycles,
    )
    if engine._check:
        _checks.check_engine_run(engine, engine.last_stats)
        for cache in caches:
            _checks.check_cache_all(cache)
    return engine.last_stats
