"""Trace events: the execution substrate's instruction stream.

Workloads are generators of trace events; the engine interprets them.
Three event kinds:

* :class:`MemAccess` -- one memory instruction, optionally preceded by
  ``work`` non-memory instructions (so line-granular trace generation
  can account for the arithmetic it elides).
* :class:`Work` -- a block of non-memory instructions.
* :class:`XMemOp` -- one XMemLib call, executed against the bound
  library *at its position in the stream*, so atom mappings and
  activations take effect exactly when the program would issue them.
  The call is stored by name + arguments, keeping traces serializable.

Events use ``__slots__``: traces run to millions of events.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple, Union


class MemAccess:
    """One memory reference (plus optional preceding ALU work)."""

    __slots__ = ("vaddr", "is_write", "work")

    def __init__(self, vaddr: int, is_write: bool = False,
                 work: int = 0) -> None:
        self.vaddr = vaddr
        self.is_write = is_write
        self.work = work

    def __repr__(self) -> str:
        kind = "W" if self.is_write else "R"
        return f"MemAccess({kind} {self.vaddr:#x}, work={self.work})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, MemAccess)
                and (self.vaddr, self.is_write, self.work)
                == (other.vaddr, other.is_write, other.work))

    def __hash__(self) -> int:
        return hash((MemAccess, self.vaddr, self.is_write, self.work))


class Work:
    """``count`` non-memory instructions."""

    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        self.count = count

    def __repr__(self) -> str:
        return f"Work({self.count})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Work) and self.count == other.count

    def __hash__(self) -> int:
        return hash((Work, self.count))


class XMemOp:
    """One XMemLib call embedded in the instruction stream.

    ``method`` names an :class:`repro.core.xmemlib.XMemLib` method
    (e.g., ``"atom_map"``); ``args`` are its positional arguments.
    Engines without a bound XMemLib skip these events entirely -- the
    baseline system running an XMem-instrumented binary.
    """

    __slots__ = ("method", "args")

    def __init__(self, method: str, *args) -> None:
        self.method = method
        self.args = args

    def __repr__(self) -> str:
        return f"XMemOp({self.method}{self.args})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, XMemOp)
                and (self.method, self.args) == (other.method, other.args))

    def __hash__(self) -> int:
        return hash((XMemOp, self.method, self.args))


TraceEvent = Union[MemAccess, Work, XMemOp]
Trace = Iterable[TraceEvent]


def count_events(trace: Trace) -> Tuple[int, int, int]:
    """(memory, work-instr, xmem-op) counts -- consumes the trace."""
    mem = work = xmem = 0
    for ev in trace:
        if isinstance(ev, MemAccess):
            mem += 1
            work += ev.work
        elif isinstance(ev, Work):
            work += ev.count
        elif isinstance(ev, XMemOp):
            xmem += 1
        else:
            raise TypeError(f"not a trace event: {ev!r}")
    return mem, work, xmem


def strip_xmem(trace: Trace) -> Iterator[TraceEvent]:
    """Drop XMem operations from a trace (build a plain baseline run).

    Because XMem is hint-only, the remaining stream is exactly the
    program the baseline system executes.
    """
    for ev in trace:
        if not isinstance(ev, XMemOp):
            yield ev
