"""Trace events: the execution substrate's instruction stream.

Workloads are streams of trace events; the engine interprets them.
Three event kinds:

* :class:`MemAccess` -- one memory instruction, optionally preceded by
  ``work`` non-memory instructions (so line-granular trace generation
  can account for the arithmetic it elides).
* :class:`Work` -- a block of non-memory instructions.
* :class:`XMemOp` -- one XMemLib call, executed against the bound
  library *at its position in the stream*, so atom mappings and
  activations take effect exactly when the program would issue them.
  The call is stored by name + arguments, keeping traces serializable.

Traces run to millions of events, and two representations coexist:

* The **object stream** -- any iterable of the three event classes.
  This is the debugging/compatibility form: events are inspectable,
  comparable, and trivially composed with generator tooling.
* The **packed columnar form** -- :class:`PackedTrace`.  The dense
  ``MemAccess``/``Work`` stream lives in two parallel ``array('q')``
  columns (``vaddr`` and a flag word, see :data:`META` below) with the
  rare ``XMemOp`` events in a sparse side-table of ``(index, op)``
  pairs.  No event objects exist at all: the engine's
  ``run_packed`` interprets the columns directly, serialization is
  ``tobytes()``/``frombytes()`` (a memcpy instead of per-event object
  construction), and pickling to worker processes is equally cheap.
  :class:`TraceBuilder` is the append-side of the format -- the
  polybench generators pack their streams directly into it.

Flag-word encoding (``meta`` column, one 64-bit word per dense event)::

    bit 0      is_write   (MemAccess only)
    bit 1      kind       (0 = MemAccess, 1 = Work)
    bits 2..   work count (MemAccess: elided ALU work;
                           Work: instruction count)

``PackedTrace.events()`` reconstructs the object stream on demand, so
every object-path consumer keeps working on a packed trace.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional, Tuple, Union


class MemAccess:
    """One memory reference (plus optional preceding ALU work)."""

    __slots__ = ("vaddr", "is_write", "work")

    def __init__(self, vaddr: int, is_write: bool = False,
                 work: int = 0) -> None:
        self.vaddr = vaddr
        self.is_write = is_write
        self.work = work

    def __repr__(self) -> str:
        kind = "W" if self.is_write else "R"
        return f"MemAccess({kind} {self.vaddr:#x}, work={self.work})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, MemAccess)
                and (self.vaddr, self.is_write, self.work)
                == (other.vaddr, other.is_write, other.work))

    def __hash__(self) -> int:
        return hash((MemAccess, self.vaddr, self.is_write, self.work))


class Work:
    """``count`` non-memory instructions."""

    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        self.count = count

    def __repr__(self) -> str:
        return f"Work({self.count})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Work) and self.count == other.count

    def __hash__(self) -> int:
        return hash((Work, self.count))


class XMemOp:
    """One XMemLib call embedded in the instruction stream.

    ``method`` names an :class:`repro.core.xmemlib.XMemLib` method
    (e.g., ``"atom_map"``); ``args`` are its positional arguments.
    Engines without a bound XMemLib skip these events entirely -- the
    baseline system running an XMem-instrumented binary.
    """

    __slots__ = ("method", "args")

    def __init__(self, method: str, *args) -> None:
        self.method = method
        self.args = args

    def __repr__(self) -> str:
        return f"XMemOp({self.method}{self.args})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, XMemOp)
                and (self.method, self.args) == (other.method, other.args))

    def __hash__(self) -> int:
        return hash((XMemOp, self.method, self.args))


TraceEvent = Union[MemAccess, Work, XMemOp]
Trace = Iterable[TraceEvent]


#: Flag-word layout of the packed ``meta`` column.
META_WRITE_BIT = 0x1   # MemAccess: is_write
META_WORK_BIT = 0x2    # event kind: set = Work, clear = MemAccess
META_COUNT_SHIFT = 2   # work / count field


class PackedTrace:
    """A trace in packed columnar form.

    ``vaddr`` and ``meta`` are parallel ``array('q')`` columns holding
    the dense :class:`MemAccess`/:class:`Work` stream (``vaddr`` is 0
    for Work events); ``xmem`` is a sparse, index-sorted tuple of
    ``(position, XMemOp)`` pairs where ``position`` is the dense index
    *before* which the op executes (``len(vaddr)`` for trailing ops).

    The columns are the engine's zero-object fast path; the class is
    also iterable as an object stream via :meth:`events`, so it is a
    drop-in trace for every object-path consumer.
    """

    __slots__ = ("vaddr", "meta", "xmem")

    def __init__(self, vaddr: Optional[array] = None,
                 meta: Optional[array] = None,
                 xmem: Tuple[Tuple[int, XMemOp], ...] = ()) -> None:
        self.vaddr = vaddr if vaddr is not None else array("q")
        self.meta = meta if meta is not None else array("q")
        self.xmem = tuple(xmem)

    @classmethod
    def from_events(cls, events: Trace) -> "PackedTrace":
        """Pack an object stream (compat path; see TraceBuilder)."""
        builder = TraceBuilder()
        builder.extend(events)
        return builder.build()

    def __len__(self) -> int:
        """Dense (MemAccess + Work) event count."""
        return len(self.vaddr)

    @property
    def num_events(self) -> int:
        """Total event count, XMem side-table included."""
        return len(self.vaddr) + len(self.xmem)

    def events(self) -> Iterator[TraceEvent]:
        """Reconstruct the object stream (the compatibility path)."""
        vbuf = self.vaddr
        mbuf = self.meta
        pos = 0
        for idx, op in self.xmem:
            while pos < idx:
                m = mbuf[pos]
                if m & META_WORK_BIT:
                    yield Work(m >> META_COUNT_SHIFT)
                else:
                    yield MemAccess(vbuf[pos], bool(m & META_WRITE_BIT),
                                    m >> META_COUNT_SHIFT)
                pos += 1
            yield op
        end = len(vbuf)
        while pos < end:
            m = mbuf[pos]
            if m & META_WORK_BIT:
                yield Work(m >> META_COUNT_SHIFT)
            else:
                yield MemAccess(vbuf[pos], bool(m & META_WRITE_BIT),
                                m >> META_COUNT_SHIFT)
            pos += 1

    __iter__ = events

    def without_xmem(self) -> "PackedTrace":
        """This trace with the side-table dropped (the baseline view).

        Shares the column buffers -- stripping a packed trace is O(1),
        no copy, because the dense stream *is* the baseline program.
        """
        if not self.xmem:
            return self
        return PackedTrace(self.vaddr, self.meta, ())

    def truncated(self, n: int) -> "PackedTrace":
        """The first ``n`` dense events (side-table ops at positions
        <= ``n`` kept, so head-of-trace atom setup survives).

        Lets a long recorded stream (e.g. a compiled scenario) serve
        as a fixed-length co-run tenant without recompiling.
        """
        if n >= len(self.vaddr):
            return self
        return PackedTrace(self.vaddr[:n], self.meta[:n],
                           tuple((i, op) for i, op in self.xmem
                                 if i <= n))

    def counts(self) -> Tuple[int, int, int]:
        """(memory, work-instr, xmem-op) counts, column-scan only."""
        mem = work = 0
        for m in self.meta:
            if m & META_WORK_BIT:
                work += m >> META_COUNT_SHIFT
            else:
                mem += 1
                work += m >> META_COUNT_SHIFT
        return mem, work, len(self.xmem)

    def __eq__(self, other) -> bool:
        return (isinstance(other, PackedTrace)
                and self.vaddr == other.vaddr
                and self.meta == other.meta
                and self.xmem == other.xmem)

    def __repr__(self) -> str:
        return (f"PackedTrace({len(self.vaddr)} dense events, "
                f"{len(self.xmem)} xmem ops)")


class TraceBuilder:
    """Append-side of the packed format.

    Generators call :meth:`access`/:meth:`work`/:meth:`op` (or feed
    whole object streams through :meth:`extend`); :meth:`build` returns
    the finished :class:`PackedTrace`.  The ``vaddr``/``meta`` arrays
    are public so tight emission loops can append to them directly.
    """

    __slots__ = ("vaddr", "meta", "xmem")

    def __init__(self) -> None:
        self.vaddr = array("q")
        self.meta = array("q")
        self.xmem: List[Tuple[int, XMemOp]] = []

    def access(self, vaddr: int, is_write: bool = False,
               work: int = 0) -> None:
        """Append one memory access."""
        self.vaddr.append(vaddr)
        self.meta.append((work << META_COUNT_SHIFT)
                         | (META_WRITE_BIT if is_write else 0))

    def work(self, count: int) -> None:
        """Append a block of non-memory instructions."""
        self.vaddr.append(0)
        self.meta.append((count << META_COUNT_SHIFT) | META_WORK_BIT)

    def op(self, xmem_op: XMemOp) -> None:
        """Append one XMemLib call at the current stream position."""
        self.xmem.append((len(self.vaddr), xmem_op))

    def add(self, ev: TraceEvent) -> None:
        """Append one object event (compat path)."""
        kind = type(ev)
        if kind is MemAccess:
            self.access(ev.vaddr, ev.is_write, ev.work)
        elif kind is Work:
            self.work(ev.count)
        elif kind is XMemOp:
            self.op(ev)
        else:
            raise TypeError(f"not a trace event: {ev!r}")

    def extend(self, events: Trace) -> None:
        """Append a whole object stream (compat path)."""
        for ev in events:
            self.add(ev)

    def __len__(self) -> int:
        return len(self.vaddr) + len(self.xmem)

    def build(self) -> PackedTrace:
        """Finish: the packed trace (builder may keep being appended)."""
        return PackedTrace(self.vaddr, self.meta, tuple(self.xmem))


def count_events(trace: Trace) -> Tuple[int, int, int]:
    """(memory, work-instr, xmem-op) counts -- consumes the trace."""
    if isinstance(trace, PackedTrace):
        return trace.counts()
    mem = work = xmem = 0
    for ev in trace:
        if isinstance(ev, MemAccess):
            mem += 1
            work += ev.work
        elif isinstance(ev, Work):
            work += ev.count
        elif isinstance(ev, XMemOp):
            xmem += 1
        else:
            raise TypeError(f"not a trace event: {ev!r}")
    return mem, work, xmem


def strip_xmem(trace: Trace):
    """Drop XMem operations from a trace (build a plain baseline run).

    Because XMem is hint-only, the remaining stream is exactly the
    program the baseline system executes.  On a :class:`PackedTrace`
    this is O(1): the side-table is dropped and the shared columns
    returned as a new packed trace; object streams filter lazily.
    """
    if isinstance(trace, PackedTrace):
        return trace.without_xmem()
    return (ev for ev in trace if not isinstance(ev, XMemOp))
