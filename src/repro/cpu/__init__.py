"""Execution substrate: trace events and the timing engine."""

from repro.cpu.engine import EngineStats, TraceEngine
from repro.cpu.trace import (
    MemAccess,
    PackedTrace,
    Trace,
    TraceBuilder,
    TraceEvent,
    Work,
    XMemOp,
    count_events,
    strip_xmem,
)

__all__ = [
    "EngineStats",
    "MemAccess",
    "PackedTrace",
    "Trace",
    "TraceBuilder",
    "TraceEngine",
    "TraceEvent",
    "Work",
    "XMemOp",
    "count_events",
    "strip_xmem",
]
