"""Engine-tier selection: one model, four evaluation strategies.

The simulator has a single memory-system model, but several ways to
drive a trace through it:

``object``
    The original interpreter over a Python event stream.  Slowest;
    the reference the others are pinned against.
``packed``
    :meth:`TraceEngine.run_packed` over :class:`PackedTrace` columns
    (the zero-object fast path).  Bit-identical to ``object``.
``vector``
    :func:`repro.cpu.vector_engine.run_vector`: chunked columnar
    probing with run-length fast-forwarding of pure-hit stretches.
    Bit-identical to ``packed`` (falls back to it when the machine
    shape is outside its verified domain).
``analytical``
    :func:`repro.sim.analytical.estimate_packed`: a one-pass
    stack-distance estimator producing *estimated* EngineStats without
    evolving the machine.  Not exact -- see the module's error model;
    committed tables must never be produced on this tier.

The active tier comes from the ``REPRO_ENGINE`` environment variable
(so it propagates to sweep worker processes) or an explicit argument;
``packed`` is the default.  :func:`run_tier` is the single dispatch
point used by :meth:`SystemHandle.run`.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.cpu.engine import EngineStats, TraceEngine
from repro.cpu.trace import PackedTrace

#: Recognized tiers, exact first.  ``object``/``packed``/``vector``
#: are interchangeable on results; ``analytical`` is an estimate.
ENGINE_TIERS = ("object", "packed", "vector", "analytical")

#: Tiers whose EngineStats are bit-identical to the reference model.
EXACT_TIERS = ("object", "packed", "vector")

_ENV_VAR = "REPRO_ENGINE"


def resolve_engine_tier(explicit: Optional[str] = None) -> str:
    """The active tier: ``explicit`` if given, else ``$REPRO_ENGINE``,
    else ``packed``.  Unknown names raise (typos must not silently run
    a different interpreter).

    The value is stripped before matching, like every other ``REPRO_*``
    knob (``REPRO_JOBS`` strips before parsing): ``REPRO_ENGINE="packed "``
    from a shell export or an HTTP request must select ``packed``, not
    raise.
    """
    tier = (explicit or os.environ.get(_ENV_VAR) or "packed").strip()
    if not tier:
        tier = "packed"
    if tier not in ENGINE_TIERS:
        raise ConfigurationError(
            f"unknown engine tier {tier!r}; choices: {ENGINE_TIERS}"
        )
    return tier


def corun_tier(explicit: Optional[str] = None) -> str:
    """The co-run engine's two-tier view of the selector.

    ``object`` keeps the legacy per-event interleaver as the
    differential oracle; every other tier maps to ``packed`` -- the
    heap-scheduled batched interleaver (there is no separate
    vector/analytical co-run variant, and both co-run tiers are
    exact).
    """
    tier = resolve_engine_tier(explicit)
    return "object" if tier == "object" else "packed"


def run_tier(engine: TraceEngine, trace,
             tier: Optional[str] = None) -> EngineStats:
    """Execute ``trace`` on ``engine`` with the selected tier.

    Object traces (iterables of events) are accepted by every tier:
    the columnar tiers pack them first, so tier selection never changes
    what a caller may pass.
    """
    tier = resolve_engine_tier(tier)
    if tier == "object":
        if isinstance(trace, PackedTrace):
            trace = list(trace.events())
        return engine.run(trace)
    if tier == "packed":
        return engine.run(trace)
    if not isinstance(trace, PackedTrace):
        trace = PackedTrace.from_events(list(trace))
    if tier == "vector":
        from repro.cpu.vector_engine import run_vector
        return run_vector(engine, trace)
    # analytical
    from repro.sim.analytical import estimate_packed
    return estimate_packed(engine, trace)
