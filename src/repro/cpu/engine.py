"""The window-limited trace-driven timing engine.

This is the reproduction's stand-in for the paper's zsim OOO core
(Table 3: 4-wide issue, 128-entry ROB, Westmere-like).  The model:

* non-memory instructions retire at ``issue_width`` per cycle;
* cache hits cost their lookup latency, but first-level hits are
  pipelined (1 issue slot) -- an OOO core hides them;
* misses to memory are issued into a bounded window of outstanding
  misses (ROB/MSHR-limited).  While the window has room, the core runs
  ahead and misses overlap (memory-level parallelism); when it fills,
  the core stalls until the oldest miss completes -- exactly the
  first-order behaviour that makes thrashing (Use Case 1) and bank
  conflicts (Use Case 2) expensive.

The engine owns no policy: it translates virtual addresses through an
optional MMU hook and forwards physical accesses to a memory system
(see :class:`repro.sim.system.MemorySystem`).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Callable, Optional

from repro.core.errors import ConfigurationError
from repro.cpu.trace import MemAccess, PackedTrace, Trace, Work, XMemOp
from repro.mem.mshr import MSHRFile
from repro.testing import checks as _checks


@dataclass
class EngineStats:
    """What one run measured."""

    cycles: float = 0.0
    instructions: int = 0
    mem_accesses: int = 0
    xmem_instructions: int = 0
    misses_to_memory: int = 0
    stall_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def xmem_instruction_overhead(self) -> float:
        """XMem ISA instructions / total instructions (Section 4.4)."""
        if not self.instructions:
            return 0.0
        return self.xmem_instructions / self.instructions


class TraceEngine:
    """Interprets a trace against a memory system.

    ``memory`` must provide ``access(paddr, is_write, now) ->
    (completes_at, served_by_memory)``; ``translate`` maps VA->PA
    (identity when absent); ``xmemlib`` receives :class:`XMemOp` events
    (skipped when absent -- the baseline machine).
    """

    def __init__(
        self,
        memory,
        xmemlib=None,
        translate: Optional[Callable[[int], int]] = None,
        issue_width: int = 4,
        window: int = 32,
    ) -> None:
        if issue_width <= 0:
            raise ConfigurationError(f"issue_width must be > 0: {issue_width}")
        self.memory = memory
        self.xmemlib = xmemlib
        self.translate = translate
        self.issue_width = issue_width
        self.mshr = MSHRFile(window)
        #: Statistics of the most recent :meth:`run` (zeroed until one
        #: completes) -- what the engine contributes to the stats tree.
        self.last_stats = EngineStats()
        #: ``REPRO_CHECK=1``: validate end-of-run statistics.  Read
        #: once at construction so the per-run cost of a disabled check
        #: is a single attribute test.
        self._check = _checks.enabled()

    def stat_groups(self):
        """StatGroup protocol: the engine and its MSHR file."""
        yield "", self.last_stats
        yield "mshr", self.mshr.stats

    #: Accesses at most this many cycles long are considered hidden by
    #: the pipeline (first-level cache hits).
    PIPELINED_LATENCY = 4.0

    def run(self, trace: Trace) -> EngineStats:
        """Execute ``trace`` to completion; returns the statistics.

        A :class:`PackedTrace` is routed to :meth:`run_packed` -- same
        statistics, no per-event object materialization.
        """
        if type(trace) is PackedTrace:
            return self.run_packed(trace)
        # The interpreter loop runs once per trace event (millions per
        # experiment): every attribute lookup it would repeat -- stats
        # fields, PIPELINED_LATENCY, bound methods -- is hoisted into a
        # local, counters accumulate in plain ints/floats and are
        # written back once, and the hit fast path (the overwhelmingly
        # common case) touches nothing but `now`.
        now = 0.0
        issue = self.issue_width
        slot = 1.0 / issue
        pipelined = self.PIPELINED_LATENCY
        translate = self.translate
        memory_access = self.memory.access
        mshr = self.mshr
        reserve = mshr.reserve
        xmemlib = self.xmemlib
        instructions = 0
        mem_accesses = 0
        xmem_instructions = 0
        misses_to_memory = 0
        stall_cycles = 0.0
        for ev in trace:
            kind = type(ev)
            if kind is MemAccess:
                work = ev.work
                if work:
                    now += work / issue
                    instructions += work
                instructions += 1
                mem_accesses += 1
                vaddr = ev.vaddr
                completes_at, to_memory = memory_access(
                    translate(vaddr) if translate else vaddr,
                    ev.is_write, now,
                )
                if to_memory:
                    misses_to_memory += 1
                if completes_at - now > pipelined:
                    # Long access: overlap it within the window; stall
                    # only when the window is full.
                    start = reserve(now, completes_at)
                    if start > now:
                        stall_cycles += start - now
                        now = start
                # Either way the access itself takes one issue slot
                # (first-level hits are fully pipelined).
                now += slot
            elif kind is Work:
                now += ev.count / issue
                instructions += ev.count
            elif kind is XMemOp:
                instructions += 1
                xmem_instructions += 1
                now += slot
                if xmemlib is not None:
                    getattr(xmemlib, ev.method)(*ev.args)
            else:
                raise TypeError(f"not a trace event: {ev!r}")
        # Drain the window: execution ends when the last miss lands.
        tail = mshr.latest_completion()
        if tail is not None and tail > now:
            now = tail
        mshr.flush()
        self.last_stats = EngineStats(
            cycles=now,
            instructions=instructions,
            mem_accesses=mem_accesses,
            xmem_instructions=xmem_instructions,
            misses_to_memory=misses_to_memory,
            stall_cycles=stall_cycles,
        )
        if self._check:
            _checks.check_engine_run(self, self.last_stats)
        return self.last_stats

    def run_packed(self, trace: PackedTrace) -> EngineStats:
        """Execute a packed trace; statistics are bit-identical to
        :meth:`run` over ``trace.events()``.

        The zero-object fast path: the dense stream is consumed as
        (vaddr, flag-word) integer pairs straight from the columns --
        no event objects, no ``type()`` dispatch -- and the sparse
        XMemOp side-table partitions it into segments, each drained
        with one ``islice`` pass.  Every arithmetic expression mirrors
        :meth:`run` exactly so float accumulation is unchanged.
        """
        now = 0.0
        issue = self.issue_width
        slot = 1.0 / issue
        pipelined = self.PIPELINED_LATENCY
        translate = self.translate
        memory_access = self.memory.access
        mshr = self.mshr
        reserve = mshr.reserve
        xmemlib = self.xmemlib
        instructions = 0
        mem_accesses = 0
        xmem_instructions = 0
        misses_to_memory = 0
        stall_cycles = 0.0
        # Segment the dense stream at the side-table positions; one
        # shared zip iterator walks the columns exactly once.
        pairs = zip(trace.vaddr, trace.meta)
        segments = []
        done = 0
        for idx, op in trace.xmem:
            segments.append((idx - done, op))
            done = idx
        segments.append((len(trace.vaddr) - done, None))
        for seg_len, op in segments:
            for vaddr, m in islice(pairs, seg_len):
                if m & 2:                       # Work block
                    count = m >> 2
                    now += count / issue
                    instructions += count
                    continue
                work = m >> 2                   # MemAccess
                if work:
                    now += work / issue
                    instructions += work
                instructions += 1
                mem_accesses += 1
                completes_at, to_memory = memory_access(
                    translate(vaddr) if translate else vaddr,
                    m & 1, now,
                )
                if to_memory:
                    misses_to_memory += 1
                if completes_at - now > pipelined:
                    start = reserve(now, completes_at)
                    if start > now:
                        stall_cycles += start - now
                        now = start
                now += slot
            if op is not None:
                instructions += 1
                xmem_instructions += 1
                now += slot
                if xmemlib is not None:
                    getattr(xmemlib, op.method)(*op.args)
        tail = mshr.latest_completion()
        if tail is not None and tail > now:
            now = tail
        mshr.flush()
        self.last_stats = EngineStats(
            cycles=now,
            instructions=instructions,
            mem_accesses=mem_accesses,
            xmem_instructions=xmem_instructions,
            misses_to_memory=misses_to_memory,
            stall_cycles=stall_cycles,
        )
        if self._check:
            _checks.check_engine_run(self, self.last_stats)
        return self.last_stats
