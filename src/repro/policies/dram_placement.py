"""Use Case 2 glue: from program atoms to OS page placement.

The heavy lifting lives in :mod:`repro.xos.placement` (the algorithm)
and :mod:`repro.xos.allocator` (the bank-targeting allocator); this
module packages the three-step mechanism of Section 6.2 for callers:

1. the OS obtains atom attributes when loading the program (the atom
   segment -> GAT);
2. it plans the bank/channel mapping for every atom;
3. it steers the virtual-to-physical mapping so each data structure's
   pages land in its assigned banks.

It also provides :func:`placement_report`, a human-readable summary
used by the examples and experiment logs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.xos.loader import OperatingSystem, Process
from repro.xos.placement import PlacementDecision


def plan_and_apply(osys: OperatingSystem, proc: Process
                   ) -> PlacementDecision:
    """Steps 1-2 of Section 6.2 for an already-loaded process."""
    return osys.apply_placement(proc)


def placement_report(proc: Process) -> str:
    """Readable dump of a process's placement decision."""
    decision = proc.placement
    if decision is None:
        return "no placement decision (baseline allocator)"
    lines: List[str] = []
    for atom_id, banks in sorted(decision.isolated.items()):
        atom = proc.xmem.atoms.get(atom_id)
        name = atom.name if atom else f"atom{atom_id}"
        bank_list = ", ".join(f"ch{c}/rk{r}/bk{b}" for c, r, b in banks)
        lines.append(f"isolated  {name:<16} -> {bank_list}")
    spread = ", ".join(f"ch{c}/rk{r}/bk{b}"
                       for c, r, b in proc.placement.spread_banks)
    lines.append(f"spread    <everything else> -> {spread}")
    return "\n".join(lines)


def bank_occupancy(proc: Process, osys: OperatingSystem
                   ) -> Dict[tuple, int]:
    """Pages per bank for a process (placement diagnostics)."""
    counts: Dict[tuple, int] = {}
    for _, frame in proc.page_table.items():
        for bank in osys.pool.frame_banks(frame):
            counts[bank] = counts.get(bank, 0) + 1
    return counts
