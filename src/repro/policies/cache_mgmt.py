"""Use Case 1: XMem-driven cache management (Section 5.2).

The cache controller runs a greedy pinning algorithm every time the set
of active atoms changes:

1. collect the active atoms, sorted by their expressed reuse
   (descending);
2. walk the list, pinning each atom whose data still fits under the
   pinning budget (75% of the LLC);
3. insert lines of pinned atoms with the highest priority; everything
   else uses the default insertion policy;
4. on a change of the active-atom list, *age* the previously pinned
   lines so the default replacement policy can reclaim them;
5. arm the XMem prefetcher with the pattern + physical spans of every
   pinned atom, so a demand miss to a pinned atom prefetches the rest
   of its working set.

The controller is an observer: it registers itself as an XMemLib
listener and consults the AMU for address-to-atom resolution, exactly
the query interface of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.pat import translate_for_prefetcher
from repro.core.xmemlib import XMemLib
from repro.mem.cache import Cache
from repro.mem.prefetch import XMemPrefetcher

#: The paper's pinning budget: "we use 75% of the cache size so the
#: cache still has space to handle other data".
PIN_FRACTION = 0.75


@dataclass
class ControllerStats:
    """Decisions the controller has taken."""

    refreshes: int = 0
    atoms_pinned: int = 0
    atoms_skipped_budget: int = 0
    lines_aged: int = 0


class CacheController:
    """The Section 5.2 greedy pinning controller for one LLC."""

    def __init__(self, xmemlib: XMemLib, llc: Cache,
                 prefetcher: Optional[XMemPrefetcher] = None,
                 pin_fraction: float = PIN_FRACTION) -> None:
        self.xmemlib = xmemlib
        self.process = xmemlib.process
        self.llc = llc
        self.prefetcher = prefetcher
        self.pin_fraction = pin_fraction
        self._pinned_ids: Set[int] = set()
        #: atom id -> the physical spans of its *pinned* portion.
        self._pin_spans: Dict[int, List[Tuple[int, int]]] = {}
        self.stats = ControllerStats()
        xmemlib.listeners.append(self.refresh)
        self.refresh()

    # -- The greedy algorithm -------------------------------------------

    def refresh(self) -> None:
        """Re-run the pinning decision (active-atom list changed).

        Atoms are considered in decreasing reuse order.  An atom whose
        working set fits in the remaining budget is pinned whole; when
        the active working set exceeds the available space, *part* of
        it is pinned (a prefix, up to the budget) and the prefetcher
        covers the rest -- "the cache mitigates thrashing by pinning
        part of the working set and then prefetches the rest".
        """
        self.stats.refreshes += 1
        budget = int(self.llc.size_bytes * self.pin_fraction)
        chunk = self.process.amu.aam.config.chunk_bytes
        chosen: Dict[int, List[Tuple[int, int]]] = {}
        atoms = sorted(
            (a for a in self.process.active_atoms() if a.reuse > 0),
            key=lambda a: a.reuse,
            reverse=True,
        )
        for atom in atoms:
            # Budget in AAM-chunk space: that is the granularity the
            # pin predicate (and hence cache occupancy) works at.
            spans = self._physical_spans(atom.atom_id)
            size = sum(e - s for s, e in spans)
            if size == 0:
                continue
            take = min(size, budget)
            if take < chunk:
                self.stats.atoms_skipped_budget += 1
                continue
            chosen[atom.atom_id] = _prefix_spans(spans, take)
            budget -= take
        if chosen != self._pin_spans:
            # Section 5.2(3): age high-priority lines only when the
            # active-atom list changes.
            self.stats.lines_aged += self.llc.unpin_all()
            self._pin_spans = chosen
            self._pinned_ids = set(chosen)
            self.stats.atoms_pinned = len(chosen)
        self._arm_prefetcher()

    def _arm_prefetcher(self) -> None:
        """Arm the semantic prefetcher for *partially* pinned atoms.

        An atom whose whole working set is pinned needs no prefetching
        -- it becomes resident on first touch and stays.  Prefetching
        exists to cover "the rest" of a working set that exceeds the
        available space (Section 5.1), so only atoms with an unpinned
        remainder are armed.
        """
        if self.prefetcher is None:
            return
        entries = {}
        for atom_id in self._pinned_ids:
            attrs = self.process.gat.get(atom_id)
            if attrs is None:
                continue
            spans = self._physical_spans(atom_id)
            full = sum(e - s for s, e in spans)
            pinned = sum(e - s for s, e in self._pin_spans[atom_id])
            if pinned >= full:
                continue
            prims = translate_for_prefetcher(attrs)
            entries[atom_id] = XMemPrefetcher.entry(prims, spans)
        self.prefetcher.set_pinned_atoms(entries)

    def _physical_spans(self, atom_id: int) -> List[Tuple[int, int]]:
        """Coalesced physical spans of an atom, from the AAM's chunks."""
        aam = self.process.amu.aam
        chunk = aam.config.chunk_bytes
        chunks = sorted(aam.mapped_chunks(atom_id))
        spans: List[Tuple[int, int]] = []
        for c in chunks:
            start = c * chunk
            if spans and spans[-1][1] == start:
                spans[-1] = (spans[-1][0], start + chunk)
            else:
                spans.append((start, start + chunk))
        return spans

    # -- Hooks for the memory system -----------------------------------

    def pin_predicate(self, line_paddr: int) -> bool:
        """Whether a line being filled belongs to a pinned atom.

        This is the LLC fill-path hook; it resolves the address through
        the AMU (ALB-cached), the same ATOM_LOOKUP any component uses.
        Hot on the fill path, so the span scan is a plain loop.
        """
        if not self._pinned_ids:
            return False
        atom_id = self.process.amu.lookup(line_paddr)
        spans = self._pin_spans.get(atom_id)
        if not spans:
            return False
        for s, e in spans:
            if s <= line_paddr < e:
                return True
        return False

    def pinned_bytes(self) -> int:
        """Total bytes currently designated for pinning."""
        return sum(e - s for spans in self._pin_spans.values()
                   for s, e in spans)

    @property
    def pinned_atom_ids(self) -> Set[int]:
        """The currently pinned atom IDs (a copy)."""
        return set(self._pinned_ids)

    def install(self, hierarchy) -> None:
        """Attach the pin predicate to a cache hierarchy."""
        hierarchy.pin_predicate = self.pin_predicate


def _prefix_spans(spans: List[Tuple[int, int]],
                  budget: int) -> List[Tuple[int, int]]:
    """The leading ``budget`` bytes of a span list."""
    out: List[Tuple[int, int]] = []
    remaining = budget
    for start, end in spans:
        if remaining <= 0:
            break
        take = min(end - start, remaining)
        out.append((start, start + take))
        remaining -= take
    return out
