"""The paper's two evaluated use cases as pluggable policies."""

from repro.policies.cache_mgmt import (
    CacheController,
    ControllerStats,
    PIN_FRACTION,
)
from repro.policies.dram_placement import (
    bank_occupancy,
    placement_report,
    plan_and_apply,
)

__all__ = [
    "CacheController",
    "ControllerStats",
    "PIN_FRACTION",
    "bank_occupancy",
    "placement_report",
    "plan_and_apply",
]
