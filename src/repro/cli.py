"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro list
    python -m repro usecase1 --kernel gemm --n 96 --tile 96
    python -m repro usecase2 --workload lbm --accesses 60000
    python -m repro sweep --kernels gemm,syrk --n 96 --jobs 4
    python -m repro sweep --kernels gemm --stats-json out/run_a
    python -m repro corun --tenants mcf,lbm,libquantum --accesses 4000
    python -m repro diff out/run_a out/run_b
    python -m repro fuzz --cases 200 --seed 0
    python -m repro serve --port 8642 --workers 2
    python -m repro overheads
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.core.overheads import (
    context_switch_overhead_fraction,
    hardware_area_fraction,
    storage_overheads,
)
from repro.sim import (
    build_baseline,
    build_xmem,
    format_table,
    scaled_config,
)
from repro.sim.usecase2 import run_figure7
from repro.workloads.polybench import FIGURE4_KERNELS, KERNELS
from repro.workloads.suite import BY_NAME, SUITE


def cmd_list(_args) -> int:
    """List the available kernels, workloads, and scenario specs."""
    from repro.scenarios import example_names, get_example

    print("Use Case 1 kernels (Polybench):")
    for name in FIGURE4_KERNELS:
        print(f"  {name:<10} {KERNELS[name].description}")
    print("\nUse Case 2 workloads (SPEC/Rodinia/Parboil models):")
    for w in SUITE:
        print(f"  {w.name:<14} {w.description}")
    print("\nScenario specs (repro.scenarios examples; "
          "also `repro sweep --scenarios` / `scenario:` corun tenants):")
    for name in example_names():
        canonical = get_example(name)
        detail = canonical["kind"]
        if detail == "import":
            detail = f"import ({canonical['format']})"
        else:
            detail = (f"workload ({len(canonical['phases'])} phase(s), "
                      f"{len(canonical['regions'])} region(s))")
        print(f"  {name:<14} {detail}")
    return 0


def cmd_usecase1(args) -> int:
    """Run one kernel at one tile size on Baseline and XMem."""
    if args.kernel not in KERNELS:
        print(f"unknown kernel {args.kernel!r}; see `repro list`",
              file=sys.stderr)
        return 2
    kernel = KERNELS[args.kernel]
    tile = args.tile or args.n
    cfg = scaled_config(args.scale)

    baseline = build_baseline(cfg)
    b = baseline.run(kernel.build_trace(args.n, tile))
    xmem = build_xmem(cfg)
    x = xmem.run(kernel.build_trace(args.n, tile, lib=xmem.xmemlib))

    print(format_table(
        ["system", "cycles", "IPC", "LLC miss", "DRAM reads"],
        [
            ["baseline", f"{b.cycles:.0f}", b.ipc,
             f"{baseline.llc.stats.miss_rate:.2%}",
             baseline.dram.stats.reads],
            ["xmem", f"{x.cycles:.0f}", x.ipc,
             f"{xmem.llc.stats.miss_rate:.2%}",
             xmem.dram.stats.reads],
        ],
        title=(f"{args.kernel} N={args.n} tile={tile} "
               f"LLC={cfg.llc_bytes // 1024}KB"),
    ))
    print(f"\nXMem speedup: {b.cycles / x.cycles:.3f}x")
    return 0


def cmd_usecase2(args) -> int:
    """Run one workload on Baseline / XMem / Ideal."""
    if args.workload not in BY_NAME:
        print(f"unknown workload {args.workload!r}; see `repro list`",
              file=sys.stderr)
        return 2
    workload = BY_NAME[args.workload]
    if args.accesses:
        workload = dataclasses.replace(workload, accesses=args.accesses)
    results = run_figure7(workload, pick_mapping=args.pick_mapping)
    base = results["baseline"]
    rows = []
    for system in ("baseline", "xmem", "ideal"):
        r = results[system]
        rows.append([
            system, f"{r.cycles:.0f}",
            f"{base.cycles / r.cycles:.3f}x",
            f"{r.record.dram_row_hit_rate:.2f}",
            f"{r.record.dram_read_latency:.1f}",
        ])
    print(format_table(
        ["system", "cycles", "speedup", "RBL", "read latency"],
        rows, title=f"{workload.name}: {workload.description}",
    ))
    if results["xmem"].placement_report:
        print("\nplacement decision:")
        print(results["xmem"].placement_report)
    return 0


def cmd_sweep(args) -> int:
    """Run a (kernel x tile) sweep on the parallel experiment runner."""
    import os
    from pathlib import Path

    from repro.cpu.tiers import ENGINE_TIERS, EXACT_TIERS
    from repro.sim.runner import (
        SYSTEM_BUILDERS,
        ScenarioPoint,
        SimPoint,
        jobs_from_env,
        sweep,
        write_point_documents,
    )

    if args.engine:
        if args.engine not in ENGINE_TIERS:
            print(f"unknown engine tier {args.engine!r}; "
                  f"choices: {ENGINE_TIERS}", file=sys.stderr)
            return 2
        # Through the environment (not an argument) so pool workers
        # inherit it, and so the manifest provenance records it.
        os.environ["REPRO_ENGINE"] = args.engine
        if args.engine not in EXACT_TIERS:
            print(f"note: {args.engine} is an estimating tier; "
                  f"results are approximate (see docs/simulator.md)",
                  file=sys.stderr)

    if args.kernels == "all":
        kernels = list(FIGURE4_KERNELS)
    else:
        kernels = [k.strip() for k in args.kernels.split(",") if k.strip()]
    unknown = [k for k in kernels if k not in KERNELS]
    if unknown:
        print(f"unknown kernels {unknown}; see `repro list`",
              file=sys.stderr)
        return 2
    systems = tuple(s.strip() for s in args.systems.split(",")
                    if s.strip())
    bad_systems = [s for s in systems if s not in SYSTEM_BUILDERS]
    if bad_systems:
        print(f"unknown systems {bad_systems}; "
              f"choices: {sorted(SYSTEM_BUILDERS)}", file=sys.stderr)
        return 2
    if args.tiles:
        try:
            tile_list = [int(t) for t in args.tiles.split(",")]
        except ValueError:
            print(f"--tiles must be comma-separated integers, "
                  f"got {args.tiles!r}", file=sys.stderr)
            return 2
    else:
        n = args.n
        tile_list = sorted({max(4, n // 8), n // 4, n // 2, n})
    points = [
        SimPoint(kernel=k, n=args.n, tile=t, scale=args.scale,
                 systems=systems)
        for k in kernels for t in tile_list
    ]
    if args.scenarios:
        from repro.core.errors import ScenarioError
        from repro.scenarios import resolve
        from repro.scenarios.spec import canonical_json
        refs = [r.strip() for r in args.scenarios.split(",")
                if r.strip()]
        for ref in refs:
            try:
                canonical = resolve(ref)
            except ScenarioError as exc:
                print(f"bad scenario {ref!r}: {exc}", file=sys.stderr)
                return 2
            points.append(ScenarioPoint(
                spec_json=canonical_json(canonical), scale=args.scale,
                systems=systems))
    if not points:
        print("nothing to sweep: no kernels and no --scenarios",
              file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs else jobs_from_env()
    collect = args.stats_json is not None
    results = sweep(points, jobs=jobs, collect_stats=collect)
    if collect:
        written = write_point_documents(Path(args.stats_json), results)
        print(f"wrote {len(written)} stats documents to "
              f"{args.stats_json}", file=sys.stderr)

    rows = []
    for res in results:
        if isinstance(res.point, ScenarioPoint):
            row = [f"scn:{res.point.name}", "-"]
        else:
            row = [res.point.kernel, res.point.tile]
        for system in systems:
            row.append(f"{res.runs[system].cycles:.0f}")
        if "baseline" in systems:
            base = res.runs["baseline"].cycles
            for system in systems:
                if system != "baseline":
                    row.append(
                        f"{base / res.runs[system].cycles:.3f}x")
        rows.append(row)
    headers = ["kernel", "tile"] + [f"{s} cycles" for s in systems]
    if "baseline" in systems:
        headers += [f"{s} speedup" for s in systems if s != "baseline"]
    print(format_table(
        headers, rows,
        title=(f"sweep: {len(points)} points, N={args.n}, "
               f"scale={args.scale}, jobs={jobs}"),
    ))
    return 0


def cmd_corun(args) -> int:
    """Run one multi-tenant mix on the shared-LLC co-run engine."""
    import os
    from pathlib import Path

    from repro.sim.runner import (
        CorunPoint,
        run_corun_point,
        write_point_documents,
    )

    tenants = tuple(t.strip() for t in args.tenants.split(",")
                    if t.strip())
    unknown = [t for t in tenants
               if not t.startswith("scenario:") and t not in BY_NAME]
    if unknown:
        print(f"unknown workloads {unknown}; see `repro list`",
              file=sys.stderr)
        return 2
    scenario_tenants = [t for t in tenants
                        if t.startswith("scenario:")]
    if scenario_tenants:
        from repro.core.errors import ScenarioError
        from repro.scenarios import resolve
        if args.footprint_div != 1:
            print(f"--footprint-div scales suite structures; scenario "
                  f"tenants {scenario_tenants} have fixed declared "
                  f"footprints", file=sys.stderr)
            return 2
        for t in scenario_tenants:
            try:
                resolve(t[len("scenario:"):])
            except ScenarioError as exc:
                print(f"bad scenario tenant {t!r}: {exc}",
                      file=sys.stderr)
                return 2
    try:
        xmem = tuple(int(t) for t in args.xmem_tenants.split(","))
    except ValueError:
        print(f"--xmem-tenants must be comma-separated core indices, "
              f"got {args.xmem_tenants!r}", file=sys.stderr)
        return 2
    if any(i < 0 or i >= len(tenants) for i in xmem):
        print(f"--xmem-tenants {xmem} outside the "
              f"{len(tenants)}-tenant mix", file=sys.stderr)
        return 2
    if args.engine:
        if args.engine not in ("object", "packed"):
            print(f"unknown co-run engine {args.engine!r}; "
                  f"choices: object, packed", file=sys.stderr)
            return 2
        # Via the environment so the manifest provenance records it.
        os.environ["REPRO_ENGINE"] = args.engine
    point = CorunPoint(tenants=tenants, accesses=args.accesses,
                       scale=args.scale, xmem_tenants=xmem,
                       footprint_div=args.footprint_div)
    collect = args.stats_json is not None
    result = run_corun_point(point, collect=collect)
    if collect:
        written = write_point_documents(Path(args.stats_json), [result])
        print(f"wrote {len(written)} stats documents to "
              f"{args.stats_json}", file=sys.stderr)
    rows = []
    for i, name in enumerate(tenants):
        base = result.runs["baseline"][i]
        prot = result.runs["xmem"][i]
        tag = " [xmem]" if i in xmem else ""
        rows.append([
            f"{i}: {name}{tag}",
            f"{base.cycles:.0f}", base.llc_misses,
            f"{prot.cycles:.0f}", prot.llc_misses,
            f"{prot.cycles / base.cycles:.3f}x",
        ])
    print(format_table(
        ["tenant", "baseline cycles", "LLC misses",
         "xmem cycles", "LLC misses", "xmem vs base"],
        rows,
        title=(f"co-run mix: {len(tenants)} tenants, "
               f"accesses={args.accesses}, scale={args.scale}"),
    ))
    return 0


def _load_stats_docs(target: "Path") -> Optional[dict]:
    """``{doc_name: (stats_subtree, engine_tier)}`` from a --stats-json
    file or dir.

    Only the ``stats`` subtree of each document participates in diffs:
    manifests legitimately differ between runs (wall times, RSS,
    cache hit counts) while the stats must not.  The engine tier is the
    one manifest field the diff *does* consult: comparing documents
    produced by different tiers is flagged instead of being reported as
    spurious counter deltas (pre-tier documents carry None).
    """
    import json
    from pathlib import Path

    target = Path(target)
    if target.is_file():
        paths = [target]
    elif target.is_dir():
        paths = sorted(target.glob("*.json"))
        if not paths:
            print(f"no *.json documents in {target}", file=sys.stderr)
            return None
    else:
        print(f"no such file or directory: {target}", file=sys.stderr)
        return None
    docs = {}
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            tier = doc.get("manifest", {}).get("trace", {}).get("tier")
            docs[path.name] = (doc["stats"], tier)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read stats document {path}: {exc}",
                  file=sys.stderr)
            return None
    return docs


def cmd_diff(args) -> int:
    """Compare the stats of two --stats-json runs, counter by counter.

    Exit status: 0 = zero deltas (the determinism gate passes), 1 =
    deltas found, 2 = unreadable/mismatched inputs.
    """
    from repro.cpu.tiers import EXACT_TIERS
    from repro.sim.stats import diff_stats

    docs_a = _load_stats_docs(args.run_a)
    docs_b = _load_stats_docs(args.run_b)
    if docs_a is None or docs_b is None:
        return 2
    only_a = sorted(set(docs_a) - set(docs_b))
    only_b = sorted(set(docs_b) - set(docs_a))
    if only_a or only_b:
        for name in only_a:
            print(f"only in {args.run_a}: {name}", file=sys.stderr)
        for name in only_b:
            print(f"only in {args.run_b}: {name}", file=sys.stderr)
        return 2
    total = 0
    cross_tier = 0
    for name in sorted(docs_a):
        stats_a, tier_a = docs_a[name]
        stats_b, tier_b = docs_b[name]
        if tier_a != tier_b:
            if tier_a in EXACT_TIERS and tier_b in EXACT_TIERS:
                # Exact tiers are bit-identical by contract: note the
                # tier difference but hold the counters to zero deltas
                # as usual (this diff *is* the equivalence gate).
                print(f"{name}: note: cross-tier comparison of exact "
                      f"tiers ({tier_a} vs {tier_b}); deltas below "
                      f"are real")
            else:
                # An estimating (or unrecorded) tier is involved: the
                # deltas are estimation error, not nondeterminism --
                # flag the comparison instead of dumping them.
                print(f"{name}: cross-tier comparison "
                      f"({tier_a or 'pre-tier'} vs "
                      f"{tier_b or 'pre-tier'}); counter deltas "
                      f"suppressed")
                cross_tier += 1
                continue
        # One document holds {system: snapshot}; prefix group paths
        # with the system name so the flat keys are fully qualified.
        flat_a = {f"{system}.{path}": values
                  for system, snap in stats_a.items()
                  for path, values in snap.items()}
        flat_b = {f"{system}.{path}": values
                  for system, snap in stats_b.items()
                  for path, values in snap.items()}
        deltas = diff_stats(flat_a, flat_b, tolerance=args.tolerance)
        for key, va, vb in deltas:
            print(f"{name}: {key}: {va} != {vb}")
        total += len(deltas)
    if total or cross_tier:
        if total:
            print(f"\n{total} counter delta(s) across {len(docs_a)} "
                  f"document(s)")
        if cross_tier:
            print(f"{cross_tier} cross-tier document pair(s) flagged "
                  f"(rerun both sides on the same --engine to diff "
                  f"counters)")
        return 1
    print(f"identical stats: {len(docs_a)} document(s), zero deltas")
    return 0


def cmd_fuzz(args) -> int:
    """Differential fuzzing: optimized models vs. reference oracles.

    Exit status: 0 = all cases agree (and all replays pass), 1 =
    divergence found, 2 = bad arguments / unreadable reproducer.
    """
    from pathlib import Path

    from repro.testing.fuzz import LANES, replay, run_fuzz

    if args.replay:
        # Replay mode: re-run checked-in reproducers instead of fuzzing.
        status = 0
        for target in args.replay:
            path = Path(target)
            paths = sorted(path.glob("*.json")) if path.is_dir() else [path]
            if not paths:
                print(f"no reproducers in {target}", file=sys.stderr)
                return 2
            for p in paths:
                try:
                    error = replay(p)
                except (OSError, ValueError, KeyError) as exc:
                    print(f"cannot replay {p}: {exc}", file=sys.stderr)
                    return 2
                if error is None:
                    print(f"{p}: PASS (divergence fixed)")
                else:
                    print(f"{p}: FAIL: {error}")
                    status = 1
        return status

    if args.cases <= 0:
        print(f"--cases must be > 0: {args.cases}", file=sys.stderr)
        return 2
    lanes = None
    if args.lanes:
        lanes = [s.strip() for s in args.lanes.split(",") if s.strip()]
        unknown = [s for s in lanes if s not in LANES]
        if unknown:
            print(f"unknown lanes {unknown}; choices: {sorted(LANES)}",
                  file=sys.stderr)
            return 2
    log = print if args.verbose else None
    report = run_fuzz(
        cases=args.cases, seed=args.seed, length=args.length,
        lanes=lanes, corpus_dir=args.corpus, log=log,
    )
    lanes_desc = ", ".join(
        f"{name}={count}" for name, count in report.per_lane.items())
    print(f"fuzz: {report.cases} cases (seed {args.seed}): {lanes_desc}")
    if report.ok:
        print("all lanes agree")
        return 0
    for failure in report.failures:
        print(f"case {failure.case_index} [{failure.lane}]: "
              f"{failure.error} "
              f"(shrunk {failure.original_size} -> {len(failure.items)} "
              f"items)")
    for path in report.corpus_paths:
        print(f"reproducer: {path}", file=sys.stderr)
    print(f"\n{len(report.failures)} diverging case(s)")
    return 1


def cmd_serve(args) -> int:
    """Run the long-lived simulation-as-a-service HTTP server."""
    from repro.serve.app import main as serve_main

    from repro.sim.runner import jobs_from_env

    workers = args.workers
    if workers is None:
        workers = jobs_from_env(default=2)
    return serve_main(
        host=args.host, port=args.port, workers=workers,
        queue_limit=args.queue_limit, cache_dir=args.cache_dir,
        out_root=args.out_root, executor=args.executor,
        recycle_after=args.recycle_after, workspace=args.workspace,
        workspace_ttl_s=args.workspace_ttl,
        workspace_limit_bytes=args.workspace_limit_mb << 20,
        verbose=args.verbose,
    )


def cmd_overheads(_args) -> int:
    """Print the Section 4.4 overhead summary for an 8 GB machine."""
    ov = storage_overheads(8 << 30)
    print(format_table(
        ["overhead", "value"],
        [
            ["AAM", f"{ov.aam_bytes >> 20} MB ({ov.aam_fraction:.2%} "
             f"of physical memory)"],
            ["AST", f"{ov.ast_bytes} B"],
            ["GAT", f"{ov.gat_bytes} B"],
            ["hardware area", f"{hardware_area_fraction():.4%} of a "
             f"Xeon E5-2698 die"],
            ["context switch", f"{context_switch_overhead_fraction():.1%}"
             " of a typical switch"],
        ],
        title="Section 4.4 overheads (8 GB system, 256 atoms)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XMem (ISCA 2018) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list kernels and workloads")

    uc1 = sub.add_parser("usecase1", help="cache management (Section 5)")
    uc1.add_argument("--kernel", default="gemm")
    uc1.add_argument("--n", type=int, default=96)
    uc1.add_argument("--tile", type=int, default=None)
    uc1.add_argument("--scale", type=int, default=32,
                     help="cache scale-down factor (default 32)")

    uc2 = sub.add_parser("usecase2", help="DRAM placement (Section 6)")
    uc2.add_argument("--workload", default="lbm")
    uc2.add_argument("--accesses", type=int, default=60_000)
    uc2.add_argument("--pick-mapping", action="store_true",
                     help="probe mappings for the strongest baseline")

    sw = sub.add_parser(
        "sweep",
        help="parallel (kernel x tile) sweep on the experiment runner")
    sw.add_argument("--kernels", default="gemm",
                    help="comma-separated kernel names, 'all', or '' "
                         "for a scenario-only sweep")
    sw.add_argument("--scenarios", default=None,
                    help="comma-separated scenario refs (shipped "
                         "example names or spec-file paths); each "
                         "compiles to one extra sweep point")
    sw.add_argument("--n", type=int, default=96)
    sw.add_argument("--tiles", default=None,
                    help="comma-separated tile sizes "
                         "(default: n/8, n/4, n/2, n)")
    sw.add_argument("--scale", type=int, default=32)
    sw.add_argument("--systems", default="baseline,xmem",
                    help="comma-separated: baseline,xmem,xmem-pref")
    sw.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: REPRO_JOBS or "
                         "all cores; 1 = serial)")
    sw.add_argument("--stats-json", default=None, metavar="DIR",
                    help="write one manifest+stats JSON document per "
                         "point into DIR")
    sw.add_argument("--engine", default=None,
                    help="engine tier: object | packed | vector | "
                         "analytical (default: REPRO_ENGINE or packed)")

    co = sub.add_parser(
        "corun",
        help="multi-tenant co-run mix on the shared LLC")
    co.add_argument("--tenants", default="mcf,lbm",
                    help="comma-separated suite workloads (or "
                         "'scenario:<ref>' spec tenants), one per core")
    co.add_argument("--accesses", type=int, default=4000,
                    help="dense events per tenant (default 4000)")
    co.add_argument("--scale", type=int, default=32,
                    help="cache scale-down factor (default 32)")
    co.add_argument("--footprint-div", type=int, default=1,
                    help="shrink every structure by this factor so "
                         "working sets wrap at LLC scale (default 1)")
    co.add_argument("--xmem-tenants", default="0",
                    help="comma-separated core indices carrying XMem "
                         "semantics under the xmem mode (default 0)")
    co.add_argument("--engine", default=None,
                    help="co-run engine: object | packed "
                         "(default: REPRO_ENGINE or packed)")
    co.add_argument("--stats-json", default=None, metavar="DIR",
                    help="write the mix's manifest+stats JSON document "
                         "into DIR (compare runs with `repro diff`)")

    df = sub.add_parser(
        "diff",
        help="compare the stats of two --stats-json runs")
    df.add_argument("run_a", help="first run: a --stats-json "
                                  "directory or one document")
    df.add_argument("run_b", help="second run to compare against")
    df.add_argument("--tolerance", type=float, default=0.0,
                    help="absolute delta to ignore (default 0: "
                         "exact, the determinism gate)")

    fz = sub.add_parser(
        "fuzz",
        help="differential fuzzing against the reference oracles")
    fz.add_argument("--cases", type=int, default=200,
                    help="number of seeded cases (default 200)")
    fz.add_argument("--seed", type=int, default=0,
                    help="sweep seed (default 0)")
    fz.add_argument("--length", type=int, default=400,
                    help="events per generated case (default 400)")
    fz.add_argument("--lanes", default=None,
                    help="comma-separated lane names "
                         "(default: all lanes, round-robin)")
    fz.add_argument("--corpus", default=None, metavar="DIR",
                    help="write shrunk reproducers into DIR")
    fz.add_argument("--replay", nargs="*", default=None, metavar="PATH",
                    help="replay reproducer files/dirs instead of "
                         "fuzzing")
    fz.add_argument("--verbose", action="store_true",
                    help="log each failure as it shrinks")

    sv = sub.add_parser(
        "serve",
        help="simulation-as-a-service HTTP server "
             "(scenario/run split; see docs/serve.md)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8642,
                    help="listen port (default 8642; 0 = ephemeral)")
    sv.add_argument("--workers", type=int, default=None,
                    help="pool size: concurrently executing points "
                         "(default: REPRO_JOBS, else 2)")
    sv.add_argument("--queue-limit", type=int, default=64,
                    help="max pending points before requests are "
                         "rejected with 429 (default 64)")
    sv.add_argument("--executor", choices=("process", "thread"),
                    default="process",
                    help="point execution backend: 'process' runs "
                         "each point in an import-warm worker process "
                         "(true parallelism, crash isolation, hard "
                         "cancel); 'thread' executes in-process "
                         "(default process)")
    sv.add_argument("--recycle-after", type=int, default=32,
                    metavar="N",
                    help="retire a worker process after N jobs to cap "
                         "RSS growth (default 32)")
    sv.add_argument("--workspace", default=None, metavar="DIR",
                    help="persist completed run documents under DIR "
                         "and serve them across restarts "
                         "(default: in-memory only)")
    sv.add_argument("--workspace-ttl", type=float, default=604800.0,
                    metavar="SECONDS",
                    help="evict workspace run records older than this "
                         "(default 604800 = 7 days)")
    sv.add_argument("--workspace-limit-mb", type=int, default=512,
                    metavar="MB",
                    help="evict oldest workspace runs beyond this "
                         "total size (default 512)")
    sv.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="trace-cache directory (default: "
                         "REPRO_TRACE_CACHE / XDG cache; "
                         "'off' disables the disk layer)")
    sv.add_argument("--out-root", default=None, metavar="DIR",
                    help="confine client out_dir paths under DIR "
                         "(default: trust clients with any writable "
                         "path; fine on the loopback bind)")
    sv.add_argument("--verbose", action="store_true",
                    help="log each request line to stderr")

    sub.add_parser("overheads", help="Section 4.4 overhead summary")
    return parser


COMMANDS = {
    "list": cmd_list,
    "usecase1": cmd_usecase1,
    "usecase2": cmd_usecase2,
    "sweep": cmd_sweep,
    "corun": cmd_corun,
    "diff": cmd_diff,
    "fuzz": cmd_fuzz,
    "serve": cmd_serve,
    "overheads": cmd_overheads,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
