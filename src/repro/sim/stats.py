"""Measurement and observability: the stats tree, run manifests,
speedups, geometric means.

Every simulated component keeps its counters in a small dataclass
(:class:`~repro.mem.cache.CacheStats`, :class:`~repro.dram.system.
DramStats`, ...) that the hot paths increment directly -- cheap, and
unchanged by this layer.  What this module adds is the *unified view*
over those objects:

* :class:`StatsRegistry` -- a dotted-path tree of stat groups.  A
  system's components register themselves once (``SystemHandle.
  stats_registry()`` builds the full tree); ``snapshot()`` then
  freezes every counter and derived rate into one nested, JSON-ready
  dict, and ``query("cache.l3.miss_rate")`` reads a single value.
  Snapshots from different runs flatten, diff, and merge with the
  module functions below -- the substrate for the ``repro diff``
  regression gate.
* **Run manifests** -- provenance for one sweep point: the full
  ``SimConfig``, the trace-cache key and where the recording came
  from, every ``REPRO_*`` environment knob, and wall-time / peak-RSS
  per phase (:class:`PhaseTimer`).  A manifest plus the per-system
  snapshots form the one-JSON-document-per-point output of
  ``repro sweep --stats-json``.
"""

from __future__ import annotations

import math
import os
import resource
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.stats import (
    Histogram,
    StatValue,
    iter_stat_groups,
    stat_values,
)
from repro.cpu.engine import EngineStats

__all__ = [
    "Histogram",
    "PhaseTimer",
    "RunRecord",
    "StatsRegistry",
    "amean",
    "collect_repro_env",
    "diff_stats",
    "flatten_stats",
    "format_table",
    "geomean",
    "merge_stats",
    "slowdown",
    "speedup",
    "stat_values",
]

#: Nested snapshot type: group path -> {counter -> value}.
Snapshot = Dict[str, Dict[str, StatValue]]


# ---------------------------------------------------------------------------
# The stats tree
# ---------------------------------------------------------------------------

class StatsRegistry:
    """A queryable, mergeable tree of named stat groups.

    Groups are registered under dotted paths (``cache.l3``,
    ``dram.banks``) and are *live*: the registry holds references, not
    copies, so one registration at build time observes the whole run.
    ``snapshot()`` freezes the tree into plain data.
    """

    def __init__(self) -> None:
        self._groups: Dict[str, object] = {}

    def register(self, path: str, group: object) -> None:
        """Register one stat group under ``path``.

        ``group`` follows the StatGroup protocol of
        :func:`repro.core.stats.stat_values`: a counter dataclass, a
        mapping, or a zero-argument callable returning one.
        """
        if not path:
            raise ValueError("stat group path must be non-empty")
        if path in self._groups:
            raise ValueError(f"stat group {path!r} already registered")
        self._groups[path] = group

    def register_provider(self, path: str, provider: object) -> None:
        """Register every ``(sub_path, group)`` a provider exposes.

        A provider implements ``stat_groups()`` (see
        :mod:`repro.core.stats`); a bare group registers under
        ``path`` itself.
        """
        for full, group in iter_stat_groups(provider, path):
            self.register(full, group)

    def paths(self) -> List[str]:
        """Registered group paths, sorted."""
        return sorted(self._groups)

    def group(self, path: str) -> Dict[str, StatValue]:
        """The current values of one group."""
        return stat_values(self._groups[path])

    def snapshot(self) -> Snapshot:
        """Freeze every group into a nested, JSON-ready dict."""
        return {path: stat_values(self._groups[path])
                for path in sorted(self._groups)}

    def query(self, dotted: str):
        """One value by full dotted path (``cache.l3.miss_rate``).

        The group prefix is resolved longest-first, so nested group
        names (``dram`` vs ``dram.banks``) never shadow each other.
        """
        for path in sorted(self._groups, key=len, reverse=True):
            if dotted.startswith(path + "."):
                name = dotted[len(path) + 1:]
                values = stat_values(self._groups[path])
                if name in values:
                    return values[name]
        raise KeyError(f"no stat {dotted!r}; groups: {self.paths()}")


def flatten_stats(snapshot: Mapping[str, Mapping[str, StatValue]]
                  ) -> Dict[str, float]:
    """One flat ``path.counter -> number`` dict from a snapshot.

    Histogram sub-dicts flatten as ``path.counter.bucket``.
    """
    flat: Dict[str, float] = {}
    for path, values in snapshot.items():
        for name, value in values.items():
            if isinstance(value, Mapping):
                for bucket, count in value.items():
                    flat[f"{path}.{name}.{bucket}"] = count
            else:
                flat[f"{path}.{name}"] = value
    return flat


def diff_stats(a: Mapping[str, Mapping[str, StatValue]],
               b: Mapping[str, Mapping[str, StatValue]],
               tolerance: float = 0.0
               ) -> List[Tuple[str, float, float]]:
    """Counter-level deltas between two snapshots.

    Returns ``(flat_key, value_a, value_b)`` for every key whose
    values differ by more than ``tolerance`` (missing keys compare as
    0).  An empty list means the runs are statistically identical --
    the ``repro diff`` determinism gate.
    """
    fa, fb = flatten_stats(a), flatten_stats(b)
    out = []
    for key in sorted(set(fa) | set(fb)):
        va, vb = fa.get(key, 0), fb.get(key, 0)
        if va != vb and abs(vb - va) > tolerance:
            out.append((key, va, vb))
    return out


def merge_stats(snapshots: Iterable[Mapping[str, Mapping[str, StatValue]]]
                ) -> Snapshot:
    """Sum counters across snapshots (derived rates sum too -- merge
    raw counters and recompute rates yourself when aggregating).

    Histogram sub-dicts merge bucket-wise except ``mean``, which is
    recomputed from the merged count/sum.
    """
    merged: Snapshot = {}
    for snap in snapshots:
        for path, values in snap.items():
            dst = merged.setdefault(path, {})
            for name, value in values.items():
                if isinstance(value, Mapping):
                    sub = dst.setdefault(name, {})
                    for bucket, count in value.items():
                        if bucket == "mean":
                            continue
                        sub[bucket] = sub.get(bucket, 0) + count
                    if sub.get("count"):
                        sub["mean"] = sub["sum"] / sub["count"]
                    else:
                        sub["mean"] = 0.0
                else:
                    dst[name] = dst.get(name, 0) + value
    return merged


# ---------------------------------------------------------------------------
# Run-manifest helpers
# ---------------------------------------------------------------------------

def collect_repro_env() -> Dict[str, str]:
    """Every ``REPRO_*`` environment knob, for run provenance."""
    return {k: v for k, v in sorted(os.environ.items())
            if k.startswith("REPRO_")}


def peak_rss_kb() -> int:
    """The process's peak resident set size so far, in KiB.

    ``ru_maxrss`` is a high-water mark: per-phase values are the peak
    *up to the end of that phase*, not the phase's own footprint.
    """
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class PhaseTimer:
    """Wall-time + peak-RSS bookkeeping for the phases of one run."""

    def __init__(self) -> None:
        self.phases: Dict[str, Dict[str, float]] = {}
        self._t0: Optional[float] = None
        self._name: Optional[str] = None

    def start(self, name: str) -> None:
        """Begin a phase (closing any phase still open)."""
        if self._name is not None:
            self.stop()
        self._name = name
        self._t0 = time.perf_counter()

    def stop(self) -> None:
        """Close the open phase, recording wall seconds and peak RSS."""
        if self._name is None:
            return
        self.phases[self._name] = {
            "wall_s": time.perf_counter() - self._t0,
            "peak_rss_kb": peak_rss_kb(),
        }
        self._name = None
        self._t0 = None


# ---------------------------------------------------------------------------
# Run records (figure-level measurements)
# ---------------------------------------------------------------------------

@dataclass
class RunRecord:
    """One (workload, system, parameters) measurement."""

    workload: str
    system: str
    cycles: float
    instructions: int
    llc_miss_rate: float = 0.0
    dram_read_latency: float = 0.0
    dram_write_latency: float = 0.0
    dram_row_hit_rate: float = 0.0
    params: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_handle(cls, workload: str, handle, engine_stats: EngineStats,
                    **params) -> "RunRecord":
        """Snapshot a finished run from a :class:`SystemHandle`.

        Reads through the handle's stats registry, so the record and
        the ``--stats-json`` documents come from the same tree.
        """
        registry = handle.stats_registry()
        llc = f"cache.{handle.llc.name.lower()}"
        return cls(
            workload=workload,
            system=handle.name,
            cycles=engine_stats.cycles,
            instructions=engine_stats.instructions,
            llc_miss_rate=registry.query(f"{llc}.miss_rate"),
            dram_read_latency=registry.query("dram.avg_read_latency"),
            dram_write_latency=registry.query("dram.avg_write_latency"),
            dram_row_hit_rate=registry.query("dram.row_hit_rate"),
            params=dict(params),
        )


# ---------------------------------------------------------------------------
# Speedup arithmetic
# ---------------------------------------------------------------------------

def speedup(baseline_cycles: float, other_cycles: float) -> float:
    """Classic speedup: baseline time / other time.

    A non-positive ``other_cycles`` is a measurement bug (no real run
    takes zero cycles), and the old ``inf`` return poisoned downstream
    aggregates silently (``geomean`` propagated ``log(inf)``); it is
    now an explicit error at the boundary.
    """
    if other_cycles <= 0:
        raise ValueError(
            f"speedup: other_cycles must be > 0, got {other_cycles!r}"
        )
    return baseline_cycles / other_cycles


def slowdown(reference_cycles: float, other_cycles: float) -> float:
    """How much slower ``other`` is than ``reference`` (1.0 = equal)."""
    if reference_cycles <= 0:
        raise ValueError(
            f"slowdown: reference_cycles must be > 0, "
            f"got {reference_cycles!r}"
        )
    return other_cycles / reference_cycles


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional speedup aggregate)."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 or not math.isfinite(v) for v in vals):
        raise ValueError("geomean requires positive finite values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def amean(values: Iterable[float]) -> float:
    """Arithmetic mean."""
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


# ---------------------------------------------------------------------------
# Table formatting
# ---------------------------------------------------------------------------

def format_table(headers: List[str], rows: List[List[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width text table for experiment output.

    Rows shorter than ``headers`` are padded with empty cells (a
    partial row is printable data); rows *longer* than ``headers``
    would silently drop cells and are rejected.
    """
    ncols = len(headers)
    str_rows = []
    for row in rows:
        cells = [_fmt(c) for c in row]
        if len(cells) > ncols:
            raise ValueError(
                f"row has {len(cells)} cells but only {ncols} headers: "
                f"{row!r}"
            )
        cells.extend("" for _ in range(ncols - len(cells)))
        str_rows.append(cells)
    widths = [max([len(h)] + [len(r[i]) for r in str_rows])
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_matrix(row_names: Sequence[str], col_names: Sequence[str],
                  cell: Callable[[str, str], object],
                  corner: str = "", title: Optional[str] = None) -> str:
    """A labelled row x column matrix as a fixed-width table.

    ``cell(row, col)`` supplies each entry (None renders empty -- the
    diagonal of an interference matrix, say).  Built on
    :func:`format_table`, so matrix tables format exactly like the
    experiment tables around them.
    """
    headers = [corner] + list(col_names)
    rows = []
    for r in row_names:
        cells = [cell(r, c) for c in col_names]
        rows.append([r] + ["" if v is None else v for v in cells])
    return format_table(headers, rows, title=title)
