"""Measurement helpers: run records, speedups, geometric means."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cpu.engine import EngineStats


@dataclass
class RunRecord:
    """One (workload, system, parameters) measurement."""

    workload: str
    system: str
    cycles: float
    instructions: int
    llc_miss_rate: float = 0.0
    dram_read_latency: float = 0.0
    dram_write_latency: float = 0.0
    dram_row_hit_rate: float = 0.0
    params: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_handle(cls, workload: str, handle, engine_stats: EngineStats,
                    **params) -> "RunRecord":
        """Snapshot a finished run from a :class:`SystemHandle`."""
        return cls(
            workload=workload,
            system=handle.name,
            cycles=engine_stats.cycles,
            instructions=engine_stats.instructions,
            llc_miss_rate=handle.llc.stats.miss_rate,
            dram_read_latency=handle.dram.stats.avg_read_latency,
            dram_write_latency=handle.dram.stats.avg_write_latency,
            dram_row_hit_rate=handle.dram.stats.row_hit_rate,
            params=dict(params),
        )


def speedup(baseline_cycles: float, other_cycles: float) -> float:
    """Classic speedup: baseline time / other time."""
    if other_cycles <= 0:
        return float("inf")
    return baseline_cycles / other_cycles


def slowdown(reference_cycles: float, other_cycles: float) -> float:
    """How much slower ``other`` is than ``reference`` (1.0 = equal)."""
    if reference_cycles <= 0:
        return float("inf")
    return other_cycles / reference_cycles


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional speedup aggregate)."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def amean(values: Iterable[float]) -> float:
    """Arithmetic mean."""
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def format_table(headers: List[str], rows: List[List[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width text table for experiment output."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
