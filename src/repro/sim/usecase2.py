"""Use Case 2 experiment runner: OS page placement in DRAM (Section 6).

Composes the three systems Figure 7/8 compare, for one workload model:

* ``baseline`` -- the strengthened baseline of Section 6.3: the best-
  performing controller address mapping for the workload, randomized
  virtual-to-physical placement, prefetcher only if it helps (we keep
  it on; it never hurts these models).
* ``xmem``     -- the same machine, but the OS uses atom attributes to
  isolate high-RBL structures in dedicated banks and spread the rest
  (bank-targeting allocator fed by the Section 6.2 algorithm).
  Bank-granular placement requires a controller mapping in which a
  page maps into a single bank, so the XMem OS uses the row-interleaved
  scheme -- the baseline is still free to beat it with any scheme.
* ``ideal``    -- the baseline machine with a perfect row buffer
  (every access a row hit): the upper bound for any RBL optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.errors import ConfigurationError
from repro.cpu.engine import TraceEngine
from repro.dram.system import DramSystem
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.prefetch import MultiStridePrefetcher
from repro.sim.config import SimConfig, scaled_config
from repro.sim.stats import RunRecord, Snapshot, StatsRegistry
from repro.sim.system import MemorySystem
from repro.workloads.suite.spec import SuiteWorkload
from repro.xos.loader import OperatingSystem

#: Address-mapping candidates the strengthened baseline picks from:
#: the row-interleaved, channel-interleaved, and permutation corners of
#: the nine-scheme space (the rest fall between them; see the
#: Section 6.3 bench).
BASELINE_MAPPING_CANDIDATES = ("scheme2", "scheme5", "minimalist_open",
                               "permutation")

#: The mapping the Figure 7/8 comparison holds fixed for *all three*
#: systems: row-interleaved, page -> single bank.  This is the regime
#: where a single simulated core has row-buffer headroom at all; under
#: the channel-interleaved schemes the headroom on one core collapses
#: below 2% because fine-grained channel parallelism hides row
#: conflicts (see `test_sec63_mapping_choice`).  The paper's larger
#: headroom arises from eight cores interfering in DRAM, which this
#: substrate does not model; holding the mapping fixed isolates exactly
#: the effect the paper's OS policy controls (which banks data lives
#: in).  The ``xmem_interleaved`` scheme + FramePool.bank_groups()
#: provide the channel-interleaved variant for experimentation.
XMEM_MAPPING = "scheme2"


def usecase2_config(dram_capacity: int = 1 << 26) -> SimConfig:
    """The scaled Use-Case-2 machine (memory-intensive regime)."""
    cfg = scaled_config(8, dram_capacity=dram_capacity)
    return cfg


@dataclass
class UseCase2Result:
    """One (workload, system) measurement.

    ``stats`` is the machine's full registry snapshot, populated only
    on ``collect=True`` runs (the ``REPRO_STATS_JSON`` bench knob).
    """

    record: RunRecord
    mapping: str
    placement_report: Optional[str] = None
    stats: Optional[Snapshot] = None

    @property
    def cycles(self) -> float:
        """Execution time in CPU cycles."""
        return self.record.cycles


def run_system(
    workload: SuiteWorkload,
    system: str,
    config: Optional[SimConfig] = None,
    mapping: Optional[str] = None,
    accesses: Optional[int] = None,
    collect: bool = False,
) -> UseCase2Result:
    """Run one workload on one of the three systems.

    ``collect=True`` snapshots the full stats registry after the run
    (strictly post-run, so it never perturbs the measurement).
    """
    cfg = config or usecase2_config()
    if system == "baseline":
        mapping = mapping or XMEM_MAPPING
        allocator = "randomized"
        perfect_rbl = False
    elif system == "ideal":
        mapping = mapping or XMEM_MAPPING
        allocator = "randomized"
        perfect_rbl = True
    elif system == "xmem":
        mapping = XMEM_MAPPING
        allocator = "bank_target"
        perfect_rbl = False
    else:
        raise ConfigurationError(f"unknown system {system!r}")

    osys = OperatingSystem(cfg.dram_geometry, mapping=mapping,
                           allocator=allocator, seed=17)
    proc = osys.create_process()
    bases = workload.instantiate(proc)

    hierarchy = CacheHierarchy(cfg.levels, cfg.line_bytes)
    dram = DramSystem(geometry=cfg.dram_geometry, timing=cfg.timing(),
                      mapping=mapping, perfect_rbl=perfect_rbl)
    stride = MultiStridePrefetcher(streams=cfg.prefetcher.streams,
                                   degree=cfg.prefetcher.degree,
                                   line_bytes=cfg.line_bytes)
    memory = MemorySystem(hierarchy, dram, stride_prefetcher=stride)
    engine = TraceEngine(memory, xmemlib=None, translate=proc.translate,
                         issue_width=cfg.cpu.issue_width,
                         window=cfg.cpu.window)

    trace = workload.trace(bases)
    if accesses is not None:
        trace = _truncate(trace, accesses)
    stats = engine.run(trace)

    record = RunRecord(
        workload=workload.name,
        system=system,
        cycles=stats.cycles,
        instructions=stats.instructions,
        llc_miss_rate=hierarchy.llc.stats.miss_rate,
        dram_read_latency=dram.stats.avg_read_latency,
        dram_write_latency=dram.stats.avg_write_latency,
        dram_row_hit_rate=dram.stats.row_hit_rate,
        params={"mapping": mapping},
    )
    report = None
    if system == "xmem":
        from repro.policies.dram_placement import placement_report
        report = placement_report(proc)
    snapshot = None
    if collect:
        registry = StatsRegistry()
        registry.register_provider("engine", engine)
        registry.register_provider("", memory)
        snapshot = registry.snapshot()
    return UseCase2Result(record=record, mapping=mapping,
                          placement_report=report, stats=snapshot)


def pick_baseline_mapping(
    workload: SuiteWorkload,
    config: Optional[SimConfig] = None,
    probe_accesses: int = 20_000,
    candidates: Iterable[str] = BASELINE_MAPPING_CANDIDATES,
) -> str:
    """Choose the best-performing mapping for the baseline (Section 6.3).

    Probes each candidate with a truncated trace and returns the one
    with the lowest cycle count.
    """
    best_name, best_cycles = None, float("inf")
    for name in candidates:
        result = run_system(workload, "baseline", config=config,
                            mapping=name, accesses=probe_accesses)
        if result.cycles < best_cycles:
            best_name, best_cycles = name, result.cycles
    return best_name


def run_figure7(
    workload: SuiteWorkload,
    config: Optional[SimConfig] = None,
    pick_mapping: bool = True,
    collect: bool = False,
) -> Dict[str, UseCase2Result]:
    """All three systems for one workload (one Figure 7/8 column)."""
    mapping = (pick_baseline_mapping(workload, config)
               if pick_mapping else XMEM_MAPPING)
    return {
        "baseline": run_system(workload, "baseline", config, mapping,
                               collect=collect),
        "xmem": run_system(workload, "xmem", config, collect=collect),
        "ideal": run_system(workload, "ideal", config, mapping,
                            collect=collect),
    }


def _truncate(trace, limit: int):
    count = 0
    for ev in trace:
        yield ev
        count += 1
        if count >= limit:
            return
