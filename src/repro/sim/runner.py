"""Parallel experiment execution with trace record/replay caching.

Every figure in the paper is a sweep over independent (workload,
configuration, system) points, so the experiment drivers were paying
twice for the same work: each point regenerated the identical memory
trace for every system it compared, and the points ran strictly
serially.  This module fixes both:

* **Trace record/replay.**  :func:`get_recording` walks a kernel's
  loop nest once and materializes the stream into a
  :class:`TraceRecording` holding a packed columnar
  :class:`~repro.cpu.trace.PackedTrace` (parallel ``array('q')``
  columns + an XMemOp side-table; no per-event objects).  The
  recording is replayed for every system of the point: XMem machines
  get the setup calls re-applied and the full packed trace; baseline
  machines consume the same columns with the side-table dropped
  (``strip_xmem`` is O(1) on a packed trace -- hints are supplemental,
  so the dense stream *is* the baseline binary).  Recordings are also
  cached on disk, keyed by a hash of (kernel, n, tile,
  instrumentation); the columns serialize via ``tobytes()``/
  ``frombytes()`` -- a memcpy, not a per-event pickle -- and the blob
  is zlib-compressed on disk (strided address columns compress well).
  Entries carry
  a content digest; corrupted or stale files are detected and
  silently regenerated, never replayed.

* **Process fan-out.**  :func:`sweep` (and the generic
  :func:`run_parallel`) distribute points over a
  ``ProcessPoolExecutor``.  The worker count comes from the
  ``REPRO_JOBS`` environment variable (default ``os.cpu_count()``);
  ``jobs=1`` runs serially in-process -- the debugging path.  Results
  are returned in submission order, so parallel output is
  bit-identical to serial output.

Environment knobs:

* ``REPRO_JOBS``        -- worker processes for sweeps (default: all
  cores; ``1`` = serial in-process execution).
* ``REPRO_ENGINE``      -- engine tier for every run
  (``object``/``packed``/``vector``/``analytical``; default
  ``packed``; see :mod:`repro.cpu.tiers`).  Inherited by sweep
  workers and recorded in the run manifest.
* ``REPRO_TRACE_CACHE`` -- trace cache directory; ``0``/``off``
  disables the on-disk layer (the in-memory layer still shares one
  generation across the systems of a point).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import threading
import zlib
from array import array
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.xmemlib import XMemLib
from repro.cpu.engine import EngineStats
from repro.cpu.tiers import corun_tier, resolve_engine_tier
from repro.cpu.trace import PackedTrace, TraceBuilder, TraceEvent, XMemOp
from repro.sim.config import SimConfig, scaled_config
from repro.sim.corun import CoreStats, CorunSystem
from repro.sim.stats import PhaseTimer, Snapshot, collect_repro_env
from repro.sim.system import (
    SystemHandle,
    build_baseline,
    build_xmem,
    build_xmem_pref,
)

#: Bump when the payload layout or trace semantics change; old cache
#: entries then key-miss instead of replaying stale streams.
#: v2: packed columnar payload (raw column bytes + XMemOp side-table)
#: replacing the v1 per-event tuple list.
TRACE_FORMAT_VERSION = 2

#: The three machine builders a point may compare.
SYSTEM_BUILDERS: Dict[str, Callable[..., SystemHandle]] = {
    "baseline": build_baseline,
    "xmem": build_xmem,
    "xmem-pref": build_xmem_pref,
}


# ---------------------------------------------------------------------------
# Job-count resolution
# ---------------------------------------------------------------------------

def jobs_from_env(default: Optional[int] = None) -> int:
    """Worker count: ``REPRO_JOBS`` if set, else ``default``/cpu_count."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            jobs = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
        if jobs <= 0:
            raise ConfigurationError(f"REPRO_JOBS must be > 0: {jobs}")
        return jobs
    if default is not None:
        return default
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Trace recording
# ---------------------------------------------------------------------------

class SetupRecorder:
    """A stand-in XMemLib that logs the calls a kernel's setup makes.

    Kernels call ``lib.create_atom(...)`` / ``lib.atom_activate(...)``
    at trace-build time -- live side effects on the library.  To make a
    recorded trace replayable on a *fresh* machine, the recorder
    forwards every call to a throwaway :class:`XMemLib` (so atom IDs
    are allocated with the real dedup semantics) and logs
    ``(method, args, kwargs, result)`` for later re-application.
    """

    def __init__(self) -> None:
        self._lib = XMemLib()
        self.log: List[Tuple[str, tuple, dict, object]] = []

    def __getattr__(self, name: str):
        target = getattr(self._lib, name)
        if not callable(target):
            return target

        def record_call(*args, **kwargs):
            result = target(*args, **kwargs)
            self.log.append((name, args, kwargs, result))
            return result

        return record_call


class StaleRecordingError(Exception):
    """A cached recording no longer matches the live library semantics."""


def apply_setup(lib: XMemLib, log: Sequence[Tuple[str, tuple, dict,
                                                  object]]) -> None:
    """Re-apply a recorded setup log to a fresh library.

    The returned values (atom IDs) must match the recording -- the
    trace's :class:`XMemOp` events have those IDs baked in.  A mismatch
    means the recording predates a library change and must be
    regenerated.
    """
    for method, args, kwargs, expected in log:
        got = getattr(lib, method)(*args, **kwargs)
        if expected is not None and got != expected:
            raise StaleRecordingError(
                f"setup replay of {method} returned {got!r}, "
                f"recording expects {expected!r}"
            )


@dataclass
class TraceRecording:
    """One kernel invocation's stream, materialized in packed form."""

    kernel: str
    n: int
    tile: int
    instrumented: bool
    setup: List[Tuple[str, tuple, dict, object]] = field(
        default_factory=list)
    packed: PackedTrace = field(default_factory=PackedTrace)

    @property
    def events(self) -> List[TraceEvent]:
        """The stream as event objects (debug/compat; materializes)."""
        return list(self.packed.events())

    def replay(self, lib: Optional[XMemLib] = None) -> PackedTrace:
        """The packed trace, with setup re-applied when a lib is given.

        Returns the shared packed trace (the engine only reads it), so
        replay costs nothing beyond the setup calls.  Pass it to a
        baseline :class:`~repro.sim.system.SystemHandle` directly --
        its ``run`` drops the XMemOp side-table itself (O(1) on a
        packed trace).
        """
        if lib is not None:
            apply_setup(lib, self.setup)
        return self.packed

    # -- Compact disk form ------------------------------------------------

    def to_payload(self) -> dict:
        """Encode into raw column bytes (compact, version-tagged)."""
        packed = self.packed
        return {
            "version": TRACE_FORMAT_VERSION,
            "kernel": self.kernel,
            "n": self.n,
            "tile": self.tile,
            "instrumented": self.instrumented,
            "setup": self.setup,
            "events": len(packed),
            "itemsize": packed.vaddr.itemsize,
            "vaddr": packed.vaddr.tobytes(),
            "meta": packed.meta.tobytes(),
            "xmem": [(idx, op.method, op.args)
                     for idx, op in packed.xmem],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TraceRecording":
        """Decode a :meth:`to_payload` dict back into a packed trace."""
        if payload.get("version") != TRACE_FORMAT_VERSION:
            raise StaleRecordingError(
                f"trace format {payload.get('version')} != "
                f"{TRACE_FORMAT_VERSION}"
            )
        vaddr = array("q")
        if payload.get("itemsize") != vaddr.itemsize:
            # 'q' width is platform-dependent in principle; refuse to
            # reinterpret columns written with a different one.
            raise StaleRecordingError(
                f"column itemsize {payload.get('itemsize')} != "
                f"{vaddr.itemsize}"
            )
        meta = array("q")
        vaddr.frombytes(payload["vaddr"])
        meta.frombytes(payload["meta"])
        if len(vaddr) != payload["events"] or len(meta) != len(vaddr):
            raise StaleRecordingError(
                f"column length mismatch: {len(vaddr)}/{len(meta)} "
                f"vs {payload['events']} events"
            )
        xmem = tuple((idx, XMemOp(method, *args))
                     for idx, method, args in payload["xmem"])
        return cls(
            kernel=payload["kernel"],
            n=payload["n"],
            tile=payload["tile"],
            instrumented=payload["instrumented"],
            setup=list(payload["setup"]),
            packed=PackedTrace(vaddr, meta, xmem),
        )


def record_trace(kernel_name: str, n: int, tile: int,
                 instrument: bool = True) -> TraceRecording:
    """Walk a kernel's loop nest once and pack its trace."""
    from repro.workloads.polybench import KERNELS
    try:
        kernel = KERNELS[kernel_name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel {kernel_name!r}"
        ) from None
    recorder = SetupRecorder() if instrument else None
    packed = kernel.build_packed(n, tile, lib=recorder)
    return TraceRecording(
        kernel=kernel_name, n=n, tile=tile, instrumented=instrument,
        setup=recorder.log if recorder is not None else [],
        packed=packed,
    )


# ---------------------------------------------------------------------------
# On-disk trace cache
# ---------------------------------------------------------------------------

def trace_key(kernel: str, n: int, tile: int, instrumented: bool) -> str:
    """Stable hash identifying one recording."""
    text = (f"v{TRACE_FORMAT_VERSION}:{kernel}:{n}:{tile}:"
            f"{int(instrumented)}")
    return hashlib.sha256(text.encode()).hexdigest()


def default_cache_dir() -> Optional[Path]:
    """The trace-cache directory, or None when disabled.

    ``REPRO_TRACE_CACHE`` overrides the location; the values ``0``,
    ``off``, and ``none`` disable the on-disk layer entirely.
    """
    raw = os.environ.get("REPRO_TRACE_CACHE", "").strip()
    if raw.lower() in ("0", "off", "none", "false"):
        return None
    if raw:
        return Path(raw).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "traces"


class TraceCache:
    """Content-verified pickle cache of :class:`TraceRecording` files.

    Each entry stores the payload bytes together with their SHA-256
    digest and the entry key.  ``load`` re-hashes on read: a mismatch
    (bit rot, a partial write, a stale format) deletes the entry and
    returns None so the caller regenerates -- a bad entry is never
    replayed.
    """

    #: Tmp files older than this are stale (a crashed/killed writer's
    #: leftovers); :meth:`sweep_stale_tmp` removes them.  Generous --
    #: no live trace write takes minutes.
    STALE_TMP_S = 600

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self._swept_tmp = False

    @property
    def enabled(self) -> bool:
        """Whether an on-disk layer is configured."""
        return self.root is not None

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.trace"

    def load(self, key: str) -> Optional[TraceRecording]:
        """The cached recording, or None (missing/corrupt/stale)."""
        if self.root is None:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                wrapper = pickle.load(fh)
            blob = wrapper["blob"]
            if (wrapper["key"] != key
                    or hashlib.sha256(blob).hexdigest()
                    != wrapper["digest"]):
                raise StaleRecordingError("digest mismatch")
            recording = TraceRecording.from_payload(
                pickle.loads(zlib.decompress(blob)))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (StaleRecordingError, KeyError, TypeError, ValueError,
                EOFError, pickle.UnpicklingError, IndexError,
                zlib.error):
            # Corrupt or stale: purge so the regenerated entry replaces
            # it, and report a miss.  Concurrent sweep workers race on
            # exactly this purge (two workers both find a stale v1
            # entry), so a vanished file -- or any other unlink failure
            # on a path another worker owns -- must never crash a run.
            self._purge(path)
            self.misses += 1
            return None
        self.hits += 1
        return recording

    @staticmethod
    def _purge(path: Path) -> None:
        """Best-effort delete, tolerant of concurrent purgers."""
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass

    def counters(self) -> Dict[str, int]:
        """StatGroup view of the cache's hit/miss counters."""
        return {"hits": self.hits, "misses": self.misses,
                "enabled": int(self.enabled)}

    def stat_groups(self):
        """StatGroup protocol (registers as ``trace_cache``)."""
        yield "trace_cache", self.counters

    def sweep_stale_tmp(self, max_age_s: Optional[float] = None) -> int:
        """Delete abandoned ``*.trace.tmp`` files older than the bound.

        A writer that dies between ``mkstemp`` and ``os.replace``
        (SIGKILL, power loss) strands its tmp file; in a long-lived
        server those would otherwise accumulate forever.  Young tmp
        files belong to live concurrent writers and are left alone.
        Returns the number of files removed.
        """
        if self.root is None or not self.root.is_dir():
            return 0
        if max_age_s is None:
            max_age_s = self.STALE_TMP_S
        import time
        cutoff = time.time() - max_age_s
        swept = 0
        for tmp in self.root.glob("*.trace.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:
                # Vanished (a concurrent sweeper) or unreadable: either
                # way not ours to crash on.
                continue
        return swept

    def store(self, key: str, recording: TraceRecording) -> None:
        """Persist a recording (atomic rename; concurrent-writer safe).

        The tmp file is cleaned up on *every* failure path -- not just
        ``OSError``.  A ``KeyboardInterrupt`` or pickling error between
        ``mkstemp`` and ``os.replace`` used to strand a ``.trace.tmp``
        file per incident; ``_purge`` after a successful rename is a
        no-op (the path no longer exists).
        """
        if self.root is None:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        if not self._swept_tmp:
            # Once per cache instance: collect tmp files stranded by
            # earlier crashed writers before adding our own.
            self._swept_tmp = True
            self.sweep_stale_tmp()
        # The columns compress well (regular address deltas, repeated
        # flag words); zlib is stdlib and decompression is a small
        # fraction of a cold trace walk.  Uncompressed v1/v2 entries
        # fail zlib.decompress on load and purge like any stale entry.
        blob = zlib.compress(
            pickle.dumps(recording.to_payload(), protocol=4), 6)
        wrapper = {
            "key": key,
            "digest": hashlib.sha256(blob).hexdigest(),
            "blob": blob,
        }
        fd, tmp = tempfile.mkstemp(dir=str(self.root),
                                   suffix=".trace.tmp")
        try:
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(wrapper, fh, protocol=4)
                os.replace(tmp, self._path(key))
            except OSError:
                pass
        finally:
            self._purge(Path(tmp))


#: In-process memo of recently used recordings (shared across the
#: systems of a point and across points of the same kernel).  Small:
#: recordings run to millions of events.
_MEMO: Dict[str, TraceRecording] = {}
_MEMO_LIMIT = 4
#: ``repro serve`` hits the memo from its worker pool and its
#: scenario-build handler threads at once; unguarded, two threads
#: evicting at the bound can race ``next(iter(_MEMO))`` into a
#: ``KeyError`` (or transiently exceed the bound).
_MEMO_LOCK = threading.Lock()


def _memo_put(key: str, recording: TraceRecording) -> None:
    """Insert into the in-process memo, holding the size bound.

    Every insertion -- first generation and the stale-recording
    regeneration paths alike -- must come through here: a direct
    ``_MEMO[key] = ...`` bypasses the eviction loop, and in a
    long-lived ``repro serve`` process that bypass grows RSS without
    bound (each recording can run to millions of events).
    """
    with _MEMO_LOCK:
        while len(_MEMO) >= _MEMO_LIMIT and key not in _MEMO:
            _MEMO.pop(next(iter(_MEMO)), None)
        _MEMO[key] = recording


def _cached_recording(key: str, generate: Callable[[], TraceRecording],
                      cache: Optional[TraceCache]
                      ) -> Tuple[TraceRecording, str]:
    """Memo -> disk -> ``generate()``, with the provenance string.

    The source string lands in run manifests: ``memo`` (in-process),
    ``disk`` (trace-cache hit), or ``generated`` (fresh walk); callers
    upgrade it to ``regenerated`` when a cached recording turns out
    stale at replay time.
    """
    with _MEMO_LOCK:
        recording = _MEMO.get(key)
    if recording is not None:
        return recording, "memo"
    if cache is None:
        cache = TraceCache()
    recording = cache.load(key)
    source = "disk"
    if recording is None:
        recording = generate()
        cache.store(key, recording)
        source = "generated"
    _memo_put(key, recording)
    return recording, source


def get_recording_with_source(
        kernel: str, n: int, tile: int, instrument: bool = True,
        cache: Optional[TraceCache] = None
) -> Tuple[TraceRecording, str]:
    """One kernel recording plus where it came from."""
    key = trace_key(kernel, n, tile, instrument)
    return _cached_recording(
        key, lambda: record_trace(kernel, n, tile, instrument), cache)


def get_recording(kernel: str, n: int, tile: int,
                  instrument: bool = True,
                  cache: Optional[TraceCache] = None) -> TraceRecording:
    """One recording, via memo -> disk cache -> fresh generation."""
    return get_recording_with_source(kernel, n, tile, instrument,
                                     cache=cache)[0]


# ---------------------------------------------------------------------------
# Simulation points
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SimPoint:
    """One independent Use-Case-1 simulation point.

    Everything here is plain data so points pickle cleanly into worker
    processes.  ``systems`` selects which machines to compare (any of
    ``baseline``/``xmem``/``xmem-pref``); all of them replay the same
    recording.
    """

    kernel: str
    n: int
    tile: int
    scale: int = 32
    llc_bytes: Optional[int] = None
    bandwidth: float = 1.0
    systems: Tuple[str, ...] = ("baseline", "xmem")

    def config(self) -> SimConfig:
        """The machine configuration this point runs on."""
        cfg = scaled_config(self.scale)
        if self.llc_bytes is not None:
            cfg = cfg.with_llc(self.llc_bytes)
        if self.bandwidth != 1.0:
            cfg = cfg.with_bandwidth(self.bandwidth)
        return cfg


@dataclass
class SystemRun:
    """What one (point, system) execution measured."""

    system: str
    stats: EngineStats
    llc_miss_rate: float
    llc_accesses: int
    dram_reads: int
    dram_row_hit_rate: float

    @property
    def cycles(self) -> float:
        """Execution time in CPU cycles."""
        return self.stats.cycles


@dataclass
class PointResult:
    """All systems of one point, plus the point itself.

    ``stats`` and ``manifest`` are populated only by collecting runs
    (``run_point(..., collect=True)`` / ``sweep(collect_stats=True)``):
    ``stats`` maps system name -> full registry snapshot, ``manifest``
    records the provenance of the run (point, config, trace-cache
    outcome, ``REPRO_*`` env, per-phase wall time and peak RSS).
    """

    point: SimPoint
    runs: Dict[str, SystemRun]
    stats: Optional[Dict[str, Snapshot]] = None
    manifest: Optional[dict] = None

    def cycles(self, system: str) -> float:
        """Shorthand: one system's cycle count."""
        return self.runs[system].cycles


def run_point(point: SimPoint,
              cache: Optional[TraceCache] = None,
              collect: bool = False) -> PointResult:
    """Execute every system of one point from one shared recording.

    ``collect=True`` additionally snapshots each system's full stats
    registry and assembles a run manifest.  Collection happens strictly
    after each system's run completes, so it cannot perturb timing --
    collecting and plain runs produce identical ``SystemRun`` numbers.
    """
    timer = PhaseTimer() if collect else None
    cfg = point.config()
    if cache is None:
        cache = TraceCache()
    if timer is not None:
        timer.start("trace")
    recording, source = get_recording_with_source(
        point.kernel, point.n, point.tile, instrument=True, cache=cache)
    if timer is not None:
        timer.stop()
    runs: Dict[str, SystemRun] = {}
    snapshots: Optional[Dict[str, Snapshot]] = {} if collect else None
    for system in point.systems:
        try:
            build = SYSTEM_BUILDERS[system]
        except KeyError:
            raise ConfigurationError(
                f"unknown system {system!r}; "
                f"choices: {sorted(SYSTEM_BUILDERS)}"
            ) from None
        handle = build(cfg)
        if timer is not None:
            timer.start(f"run:{system}")
        try:
            trace = recording.replay(handle.xmemlib)
        except StaleRecordingError:
            # The recording no longer re-applies cleanly (library
            # semantics moved): regenerate once and refresh the caches.
            recording = record_trace(point.kernel, point.n, point.tile)
            source = "regenerated"
            key = trace_key(point.kernel, point.n, point.tile, True)
            cache.store(key, recording)
            _memo_put(key, recording)
            handle = build(cfg)
            trace = recording.replay(handle.xmemlib)
        stats = handle.run(trace)
        if timer is not None:
            timer.stop()
        runs[system] = SystemRun(
            system=system,
            stats=stats,
            llc_miss_rate=handle.llc.stats.miss_rate,
            llc_accesses=handle.llc.stats.accesses,
            dram_reads=handle.dram.stats.reads,
            dram_row_hit_rate=handle.dram.stats.row_hit_rate,
        )
        if snapshots is not None:
            snapshots[system] = handle.stats_snapshot()
    manifest = None
    if collect:
        manifest = {
            "schema": 1,
            "kind": "simpoint",
            "point": dataclasses.asdict(point),
            "config": dataclasses.asdict(cfg),
            "trace": {
                "key": trace_key(point.kernel, point.n, point.tile, True),
                "source": source,
                "format_version": TRACE_FORMAT_VERSION,
                # Which engine tier produced the stats: `repro diff`
                # flags cross-tier comparisons (an analytical-vs-exact
                # diff reports estimation error, not nondeterminism).
                "tier": resolve_engine_tier(),
                "cache_dir": (str(cache.root) if cache.root is not None
                              else None),
                "cache_hits": cache.hits,
                "cache_misses": cache.misses,
            },
            "env": collect_repro_env(),
            "phases": timer.phases,
        }
    return PointResult(point=point, runs=runs, stats=snapshots,
                       manifest=manifest)


def _run_point_collecting(point: SimPoint) -> PointResult:
    """Module-level ``collect=True`` wrapper (pickles into workers)."""
    return run_point(point, collect=True)


# ---------------------------------------------------------------------------
# Fan-out
# ---------------------------------------------------------------------------

def run_parallel(fn: Callable, items: Sequence,
                 jobs: Optional[int] = None) -> List:
    """Map ``fn`` over ``items`` with deterministic result ordering.

    ``fn`` must be a module-level callable and every item picklable.
    ``jobs`` resolves explicit argument -> ``REPRO_JOBS`` ->
    ``os.cpu_count()``; 1 means serial in-process execution (no pool,
    full tracebacks -- the debugging path).  Results always come back
    in item order, so parallel runs are bit-identical to serial ones.
    """
    items = list(items)
    if jobs is None:
        jobs = jobs_from_env()
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def sweep(points: Sequence[SimPoint],
          jobs: Optional[int] = None,
          collect_stats: bool = False) -> List[PointResult]:
    """Run independent simulation points, fanned out over processes.

    ``collect_stats=True`` makes every point also return its registry
    snapshots and run manifest (see :func:`run_point`); pair with
    :func:`write_point_documents` to persist them.  Points may mix
    :class:`SimPoint`, :class:`ScenarioPoint`, and :class:`CorunPoint`
    freely -- dispatch is per point via :func:`run_any_point`.
    """
    fn = _run_any_collecting if collect_stats else run_any_point
    return run_parallel(fn, points, jobs=jobs)


# ---------------------------------------------------------------------------
# Stats/manifest documents
# ---------------------------------------------------------------------------

def point_document(result) -> dict:
    """The one-JSON-document form of a collecting point run
    (:class:`PointResult` or :class:`CorunResult`)."""
    if result.manifest is None or result.stats is None:
        raise ConfigurationError(
            "point_document needs a collect=True run "
            "(manifest/stats missing)"
        )
    return {"manifest": result.manifest, "stats": result.stats}


def point_document_name(index: int, result) -> str:
    """Deterministic per-point filename for a sweep's documents.

    Accepts :class:`PointResult` and :class:`CorunResult` (suite
    workload names are filename-safe identifiers, so a mix joins with
    ``+``; a ``scenario:`` tenant's colon becomes ``-``).  Scenario
    points name themselves by declared name plus hash prefix, so two
    specs sharing a name cannot collide in one sweep directory.
    """
    p = result.point
    if isinstance(p, CorunPoint):
        div = f"_d{p.footprint_div}" if p.footprint_div != 1 else ""
        mix = "+".join(t.replace(":", "-").replace("/", "-")
                       for t in p.tenants)
        return f"{index:03d}_corun_{mix}_a{p.accesses}{div}.json"
    if isinstance(p, ScenarioPoint):
        return (f"{index:03d}_scn_{p.name}"
                f"_{p.scenario_hash[:8]}.json")
    return f"{index:03d}_{p.kernel}_n{p.n}_t{p.tile}.json"


def write_point_documents(root: Path,
                          results: Sequence[PointResult]) -> List[Path]:
    """Write one manifest+stats JSON per collecting point under root.

    Filenames encode the sweep index and point identity, and keys are
    sorted, so two runs of the same sweep produce directly comparable
    trees (the ``repro diff`` determinism gate relies on this).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for index, result in enumerate(results):
        path = root / point_document_name(index, result)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(point_document(result), fh, sort_keys=True,
                      indent=2)
            fh.write("\n")
        written.append(path)
    return written


# ---------------------------------------------------------------------------
# Use-Case-2 points (Figures 7/8)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UC2Point:
    """One independent Use-Case-2 (workload, three-system) point.

    ``collect_stats`` makes each system's result carry its registry
    snapshot (``UseCase2Result.stats``).
    """

    workload: str
    accesses: Optional[int] = None
    pick_mapping: bool = False
    collect_stats: bool = False


def run_uc2_point(point: UC2Point):
    """All three Figure 7/8 systems for one workload.

    Returns the :func:`repro.sim.usecase2.run_figure7` dict
    (system name -> ``UseCase2Result``); everything in it is plain
    data, so results travel cleanly back from worker processes.
    """
    import dataclasses

    from repro.sim.usecase2 import run_figure7
    from repro.workloads.suite import BY_NAME

    try:
        workload = BY_NAME[point.workload]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {point.workload!r}"
        ) from None
    if point.accesses is not None:
        workload = dataclasses.replace(workload,
                                       accesses=point.accesses)
    return run_figure7(workload, pick_mapping=point.pick_mapping,
                       collect=point.collect_stats)


def uc2_sweep(points: Sequence[UC2Point],
              jobs: Optional[int] = None) -> List[dict]:
    """Run independent Use-Case-2 points, fanned out over processes."""
    return run_parallel(run_uc2_point, points, jobs=jobs)


# ---------------------------------------------------------------------------
# Scenario points (declarative workload specs; repro.scenarios)
# ---------------------------------------------------------------------------

def scenario_trace_key(scenario_hash: str) -> str:
    """Cache key of one compiled scenario recording.

    Shares :func:`trace_key`'s keyspace: the ``scenario:`` prefix
    cannot collide with a Polybench kernel or a ``suite:`` tenant, and
    the spec's content hash *is* the identity -- the n/tile slots
    carry nothing.
    """
    return trace_key(f"scenario:{scenario_hash}", 0, 0, True)


def get_scenario_recording_with_source(
        spec_json: str, cache: Optional[TraceCache] = None
) -> Tuple[TraceRecording, str]:
    """One compiled-scenario recording plus where it came from.

    ``spec_json`` is the canonical compact JSON of the spec (see
    :func:`repro.scenarios.spec.canonical_json`) -- a plain string so
    scenario points pickle cleanly into sweep workers.  The content
    hash keys all three cache layers, so identical specs share one
    compilation across processes and sessions.
    """
    from repro.scenarios.spec import compile_canonical, spec_hash

    canonical = json.loads(spec_json)
    key = scenario_trace_key(spec_hash(canonical))
    return _cached_recording(
        key, lambda: compile_canonical(canonical), cache)


@dataclass(frozen=True)
class ScenarioPoint:
    """One independent spec-defined simulation point.

    The mirror of :class:`SimPoint` with the kernel identity replaced
    by a canonical spec (as compact JSON, so the point stays plain
    picklable data).  Runs on the same machines, caches, manifests,
    and diff tooling.
    """

    spec_json: str
    scale: int = 32
    llc_bytes: Optional[int] = None
    bandwidth: float = 1.0
    systems: Tuple[str, ...] = ("baseline", "xmem")

    def canonical(self) -> dict:
        """The canonical spec dict (parsed on demand)."""
        return json.loads(self.spec_json)

    @property
    def name(self) -> str:
        """The spec's declared name."""
        return self.canonical()["name"]

    @property
    def scenario_hash(self) -> str:
        """The spec's 16-hex content hash."""
        from repro.scenarios.spec import spec_hash
        return spec_hash(self.canonical())

    def config(self) -> SimConfig:
        """The machine configuration this point runs on."""
        cfg = scaled_config(self.scale)
        if self.llc_bytes is not None:
            cfg = cfg.with_llc(self.llc_bytes)
        if self.bandwidth != 1.0:
            cfg = cfg.with_bandwidth(self.bandwidth)
        return cfg


def run_scenario_point(point: ScenarioPoint,
                       cache: Optional[TraceCache] = None,
                       collect: bool = False) -> PointResult:
    """Execute every system of one scenario point (see
    :func:`run_point`).

    The manifest's ``point`` block carries the scenario's name and
    content hash rather than the full spec (an import spec embeds the
    whole trace text); the ``scenario`` block records the provenance a
    reader needs to re-resolve it.
    """
    from repro.scenarios.spec import compile_canonical, spec_hash

    timer = PhaseTimer() if collect else None
    cfg = point.config()
    if cache is None:
        cache = TraceCache()
    canonical = point.canonical()
    scn_hash = spec_hash(canonical)
    key = scenario_trace_key(scn_hash)
    if timer is not None:
        timer.start("trace")
    recording, source = get_scenario_recording_with_source(
        point.spec_json, cache=cache)
    if timer is not None:
        timer.stop()
    runs: Dict[str, SystemRun] = {}
    snapshots: Optional[Dict[str, Snapshot]] = {} if collect else None
    for system in point.systems:
        try:
            build = SYSTEM_BUILDERS[system]
        except KeyError:
            raise ConfigurationError(
                f"unknown system {system!r}; "
                f"choices: {sorted(SYSTEM_BUILDERS)}"
            ) from None
        handle = build(cfg)
        if timer is not None:
            timer.start(f"run:{system}")
        try:
            trace = recording.replay(handle.xmemlib)
        except StaleRecordingError:
            # The cached compilation predates a library change:
            # recompile from the spec and refresh the caches.
            recording = compile_canonical(canonical)
            source = "regenerated"
            cache.store(key, recording)
            _memo_put(key, recording)
            handle = build(cfg)
            trace = recording.replay(handle.xmemlib)
        stats = handle.run(trace)
        if timer is not None:
            timer.stop()
        runs[system] = SystemRun(
            system=system,
            stats=stats,
            llc_miss_rate=handle.llc.stats.miss_rate,
            llc_accesses=handle.llc.stats.accesses,
            dram_reads=handle.dram.stats.reads,
            dram_row_hit_rate=handle.dram.stats.row_hit_rate,
        )
        if snapshots is not None:
            snapshots[system] = handle.stats_snapshot()
    manifest = None
    if collect:
        scenario_block = {
            "name": canonical["name"],
            "hash": scn_hash,
            "kind": canonical["kind"],
            "version": canonical["version"],
            "events": len(recording.packed),
            "setup_calls": len(recording.setup),
        }
        if canonical["kind"] == "import":
            scenario_block["format"] = canonical["format"]
            scenario_block["sha256"] = canonical["sha256"]
        manifest = {
            "schema": 1,
            "kind": "scenariopoint",
            "point": {
                "scenario": canonical["name"],
                "hash": scn_hash,
                "scale": point.scale,
                "llc_bytes": point.llc_bytes,
                "bandwidth": point.bandwidth,
                "systems": list(point.systems),
            },
            "config": dataclasses.asdict(cfg),
            "trace": {
                "key": key,
                "source": source,
                "format_version": TRACE_FORMAT_VERSION,
                "tier": resolve_engine_tier(),
                "cache_dir": (str(cache.root) if cache.root is not None
                              else None),
                "cache_hits": cache.hits,
                "cache_misses": cache.misses,
            },
            "scenario": scenario_block,
            "env": collect_repro_env(),
            "phases": timer.phases,
        }
    return PointResult(point=point, runs=runs, stats=snapshots,
                       manifest=manifest)


# ---------------------------------------------------------------------------
# Co-run points (multi-tenant co-location mixes)
# ---------------------------------------------------------------------------

#: Structure bases are page-aligned; the co-run engine adds the
#: per-core address-space offset on top.
PAGE_BYTES = 4096


def suite_trace_key(name: str, accesses: int,
                    footprint_div: int = 1) -> str:
    """Cache key of one suite-tenant recording.

    Shares :func:`trace_key`'s keyspace: the ``suite:`` prefix cannot
    collide with a Polybench kernel name, ``accesses`` rides in the
    ``n`` slot, and the footprint divisor in the ``tile`` slot (both
    are meaningless for suite streams).
    """
    return trace_key(f"suite:{name}", accesses, footprint_div, True)


def record_suite_trace(name: str, accesses: int,
                       footprint_div: int = 1) -> TraceRecording:
    """Walk one suite workload's access stream and pack it as a tenant.

    Suite workloads are the co-run engine's tenants.  Each structure
    becomes one atom whose expressed reuse is its access intensity, so
    the shared controller's global pin decision ranks every tenant's
    structures together; structures sit at page-aligned bases from
    virtual address 0 (per-application addresses -- the co-run system
    shifts each core into its own slice of the global space).  The
    atom_map/atom_activate XMemOps head the trace; baseline tenants
    replay the same recording with the side-table dropped
    (``packed.without_xmem()``).

    ``footprint_div`` shrinks every structure by the same factor
    (line-rounded, floor one page) -- the suite's footprints are sized
    for the DRAM-placement studies, so LLC-contention studies scale
    them down by the same discipline ``scaled_config`` applies to the
    caches.  Working sets then wrap within a few thousand accesses,
    which is what gives the shared LLC temporal reuse to protect.
    """
    from repro.workloads.suite import BY_NAME, LINE
    try:
        workload = BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown suite workload {name!r}"
        ) from None
    if footprint_div < 1:
        raise ConfigurationError(
            f"footprint_div must be >= 1: {footprint_div}")
    workload = dataclasses.replace(workload, accesses=accesses)
    if footprint_div > 1:
        workload = dataclasses.replace(workload, structures=tuple(
            dataclasses.replace(s, size_bytes=max(
                PAGE_BYTES,
                s.size_bytes // footprint_div // LINE * LINE))
            for s in workload.structures))
    recorder = SetupRecorder()
    builder = TraceBuilder()
    bases: Dict[str, int] = {}
    base = 0
    for s in workload.structures:
        bases[s.name] = base
        base += -(-s.size_bytes // PAGE_BYTES) * PAGE_BYTES
    for s in workload.structures:
        atom = recorder.create_atom(
            f"{workload.name}.{s.name}",
            pattern=s.pattern,
            stride_bytes=s.atom_stride,
            rw=s.expressed_rw,
            access_intensity=s.intensity,
            reuse=s.intensity,
        )
        builder.op(XMemOp("atom_map", atom, bases[s.name], s.size_bytes))
        builder.op(XMemOp("atom_activate", atom))
    for ev in workload.trace(bases):
        builder.access(ev.vaddr, ev.is_write, ev.work)
    return TraceRecording(
        kernel=f"suite:{name}", n=accesses, tile=0, instrumented=True,
        setup=recorder.log, packed=builder.build(),
    )


def get_suite_recording_with_source(
        name: str, accesses: int, footprint_div: int = 1,
        cache: Optional[TraceCache] = None
) -> Tuple[TraceRecording, str]:
    """One suite-tenant recording plus where it came from."""
    return _cached_recording(
        suite_trace_key(name, accesses, footprint_div),
        lambda: record_suite_trace(name, accesses, footprint_div),
        cache)


def _scenario_tenant(ref: str, accesses: int, cache: TraceCache
                     ) -> Tuple[TraceRecording, str, str]:
    """Resolve one ``scenario:<ref>`` co-run tenant.

    The full compiled trace is what the cache holds (keyed by the
    spec's content hash alone); the mix's ``accesses`` budget is
    applied in-memory via :meth:`PackedTrace.truncated`, so every
    budget shares one compilation.
    """
    from repro.scenarios import resolve
    from repro.scenarios.spec import compile_canonical, spec_hash

    canonical = resolve(ref)
    key = scenario_trace_key(spec_hash(canonical))
    recording, source = _cached_recording(
        key, lambda: compile_canonical(canonical), cache)
    try:
        apply_setup(XMemLib(), recording.setup)
    except StaleRecordingError:
        recording = compile_canonical(canonical)
        source = "regenerated"
        cache.store(key, recording)
        _memo_put(key, recording)
    packed = recording.packed.truncated(accesses)
    if packed is not recording.packed:
        recording = dataclasses.replace(recording, n=accesses,
                                        packed=packed)
    return recording, source, key


@dataclass(frozen=True)
class CorunPoint:
    """One independent multi-tenant co-location point.

    ``tenants`` names suite workloads, one per core, each truncated to
    ``accesses`` dense events.  ``modes`` selects the machines the mix
    runs on: ``baseline`` (no semantics anywhere) and/or ``xmem`` (the
    cores listed in ``xmem_tenants`` carry an XMemLib, so their
    structures become atoms the shared controller may pin against the
    other tenants).  Plain data; pickles cleanly into sweep workers.
    """

    tenants: Tuple[str, ...]
    accesses: int = 4000
    scale: int = 32
    xmem_tenants: Tuple[int, ...] = (0,)
    modes: Tuple[str, ...] = ("baseline", "xmem")
    #: Structure shrink factor (see :func:`record_suite_trace`).
    footprint_div: int = 1

    def config(self) -> SimConfig:
        """The machine configuration this mix runs on."""
        return scaled_config(self.scale)


@dataclass
class CorunResult:
    """Per-mode, per-core results of one co-run point.

    ``stats`` and ``manifest`` follow the :class:`PointResult`
    contract: populated only by collecting runs, with ``stats``
    mapping mode -> full registry snapshot and ``manifest`` recording
    per-tenant trace provenance -- so co-run stats documents flow
    through ``repro diff`` unchanged.
    """

    point: CorunPoint
    runs: Dict[str, List[CoreStats]]
    stats: Optional[Dict[str, Snapshot]] = None
    manifest: Optional[dict] = None

    def cycles(self, mode: str, core: int = 0) -> float:
        """Shorthand: one tenant's cycle count under one mode."""
        return self.runs[mode][core].cycles


def run_corun_point(point: CorunPoint,
                    cache: Optional[TraceCache] = None,
                    collect: bool = False) -> CorunResult:
    """Run one tenant mix under every requested mode.

    All modes replay the same per-tenant recordings: XMem tenants get
    the recorded atom setup re-applied on their core's library plus
    the full packed trace (XMemOps inline); every other tenant consumes
    the same columns with the side-table dropped.  Setup logs are
    validated against a throwaway library up front, so a stale cached
    recording is regenerated once, before any machine state exists.
    ``collect=True`` snapshots each mode's full stats registry and
    assembles a manifest, strictly after the runs -- collecting and
    plain runs produce identical :class:`CoreStats`.
    """
    if not point.tenants:
        raise ConfigurationError("a co-run point needs tenants")
    bad_modes = [m for m in point.modes if m not in ("baseline", "xmem")]
    if bad_modes:
        raise ConfigurationError(
            f"unknown co-run modes {bad_modes}; "
            f"choices: ('baseline', 'xmem')")
    out_of_range = [i for i in point.xmem_tenants
                    if not 0 <= i < len(point.tenants)]
    if out_of_range:
        raise ConfigurationError(
            f"xmem_tenants {out_of_range} outside the "
            f"{len(point.tenants)}-tenant mix")
    timer = PhaseTimer() if collect else None
    cfg = point.config()
    if cache is None:
        cache = TraceCache()
    if timer is not None:
        timer.start("trace")
    tenants: List[Tuple[TraceRecording, str]] = []
    tenant_info: List[Dict[str, str]] = []
    for name in point.tenants:
        if name.startswith("scenario:"):
            # A compiled spec as a tenant: full-trace cache key,
            # truncated in-memory to the mix's access budget.
            if point.footprint_div != 1:
                raise ConfigurationError(
                    f"footprint_div scales suite structures; scenario "
                    f"tenant {name!r} has a fixed declared footprint")
            recording, source, key = _scenario_tenant(
                name[len("scenario:"):], point.accesses, cache)
        else:
            key = suite_trace_key(name, point.accesses,
                                  point.footprint_div)
            recording, source = get_suite_recording_with_source(
                name, point.accesses, point.footprint_div, cache=cache)
            try:
                apply_setup(XMemLib(), recording.setup)
            except StaleRecordingError:
                recording = record_suite_trace(name, point.accesses,
                                               point.footprint_div)
                source = "regenerated"
                cache.store(key, recording)
                _memo_put(key, recording)
        tenants.append((recording, source))
        tenant_info.append({"workload": name, "key": key,
                            "source": source})
    if timer is not None:
        timer.stop()
    runs: Dict[str, List[CoreStats]] = {}
    snapshots: Optional[Dict[str, Snapshot]] = {} if collect else None
    for mode in point.modes:
        xmem = tuple(point.xmem_tenants) if mode == "xmem" else ()
        system = CorunSystem(cfg, len(point.tenants), xmem_cores=xmem)
        traces = []
        for core, (recording, _) in zip(system.cores, tenants):
            if core.xmemlib is not None:
                traces.append(recording.replay(core.xmemlib))
            else:
                traces.append(recording.packed.without_xmem())
        if timer is not None:
            timer.start(f"run:{mode}")
        runs[mode] = list(system.run(traces))
        if timer is not None:
            timer.stop()
        if snapshots is not None:
            snapshots[mode] = system.stats_snapshot()
    manifest = None
    if collect:
        manifest = {
            "schema": 1,
            "kind": "corunpoint",
            "point": dataclasses.asdict(point),
            "config": dataclasses.asdict(cfg),
            "trace": {
                # Which co-run engine produced the stats ("object" is
                # the legacy oracle, "packed" the heap-scheduled
                # interleaver); both are exact, so `repro diff` holds
                # cross-engine documents to zero deltas.
                "tier": corun_tier(),
                "format_version": TRACE_FORMAT_VERSION,
                "tenants": tenant_info,
                "cache_dir": (str(cache.root) if cache.root is not None
                              else None),
                "cache_hits": cache.hits,
                "cache_misses": cache.misses,
            },
            "env": collect_repro_env(),
            "phases": timer.phases,
        }
    return CorunResult(point=point, runs=runs, stats=snapshots,
                       manifest=manifest)


def _run_corun_collecting(point: CorunPoint) -> CorunResult:
    """Module-level ``collect=True`` wrapper (pickles into workers)."""
    return run_corun_point(point, collect=True)


def run_any_point(point, cache: Optional[TraceCache] = None,
                  collect: bool = False):
    """Execute one point of either kind (the serve job-queue adapter).

    ``repro serve`` queues :class:`SimPoint` and :class:`CorunPoint`
    work items through one bounded queue; this is the single dispatch
    its workers call.  Passing a fresh :class:`TraceCache` per request
    keeps the manifest's hit/miss provenance scoped to that request
    instead of accumulating across the server's lifetime.
    """
    if isinstance(point, CorunPoint):
        return run_corun_point(point, cache=cache, collect=collect)
    if isinstance(point, ScenarioPoint):
        return run_scenario_point(point, cache=cache, collect=collect)
    if isinstance(point, SimPoint):
        return run_point(point, cache=cache, collect=collect)
    raise ConfigurationError(
        f"not a runnable point: {type(point).__name__}")


def _run_any_collecting(point):
    """Module-level ``collect=True`` wrapper (pickles into workers)."""
    return run_any_point(point, collect=True)


def execute_point_job(point, cache_root: Optional[Path] = None,
                      cache_disabled: bool = False,
                      engine: Optional[str] = None) -> dict:
    """One serve pool job: run a point, return its JSON document.

    Module-level and argument-complete so it pickles into spawn-started
    worker processes (the serve process pool's counterpart of
    :func:`_run_any_collecting`).  ``engine`` overrides the engine tier
    for exactly this job by scoping ``REPRO_ENGINE`` around the run --
    safe because a pool worker executes one job at a time, and exactly
    what ``REPRO_ENGINE=<tier> repro sweep`` would do, so the manifest's
    ``trace.tier`` and ``env`` blocks come out the same.
    """
    if engine is not None:
        engine = resolve_engine_tier(engine)
    cache = TraceCache(cache_root)
    if cache_disabled:
        cache.root = None
    previous = os.environ.get("REPRO_ENGINE")
    try:
        if engine is not None:
            os.environ["REPRO_ENGINE"] = engine
        result = run_any_point(point, cache=cache, collect=True)
    finally:
        if engine is not None:
            if previous is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = previous
    return point_document(result)


def corun_sweep(points: Sequence[CorunPoint],
                jobs: Optional[int] = None,
                collect_stats: bool = False) -> List[CorunResult]:
    """Run independent co-location mixes, fanned out over processes.

    Each worker replays the per-tenant recordings from the shared
    content-verified trace cache (one generation per tenant across the
    whole sweep, not per mix); results come back in point order, so
    parallel sweeps are bit-identical to serial ones.
    """
    fn = _run_corun_collecting if collect_stats else run_corun_point
    return run_parallel(fn, points, jobs=jobs)
