"""Full-system composition: caches + DRAM + prefetchers + XMem.

:class:`MemorySystem` is the memory side the trace engine talks to; the
``build_*`` functions assemble the configurations evaluated in the
paper:

* :func:`build_baseline` -- DRRIP caches + multi-stride L3 prefetcher
  (the strengthened baseline of Sections 5.3/6.3);
* :func:`build_xmem` -- baseline plus the Use-Case-1 cache controller
  (greedy pinning) and the XMem semantic prefetcher;
* :func:`build_xmem_pref` -- the Figure 6 ablation: XMem prefetching
  only, DRRIP cache management unchanged.

Each build returns a :class:`SystemHandle` bundling the engine, memory,
and (when applicable) the XMem library to hand to workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.xmemlib import XMemLib, XMemProcess
from repro.cpu.engine import EngineStats, TraceEngine
from repro.cpu.trace import Trace, strip_xmem
from repro.dram.system import DramSystem
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.prefetch import MultiStridePrefetcher, XMemPrefetcher
from repro.policies.cache_mgmt import CacheController
from repro.sim.config import SimConfig


@dataclass
class MemoryStats:
    """Counters owned by the memory system wrapper."""

    demand_reads: int = 0
    demand_writes: int = 0
    prefetch_reads: int = 0
    writebacks: int = 0


class MemorySystem:
    """The engine-facing memory side of the machine."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        dram: DramSystem,
        stride_prefetcher: Optional[MultiStridePrefetcher] = None,
        xmem_prefetcher: Optional[XMemPrefetcher] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.dram = dram
        self.stride_prefetcher = stride_prefetcher
        self.xmem_prefetcher = xmem_prefetcher
        self._llc_level = len(hierarchy.levels) - 1
        # Per-access bound-method hoists: `access` runs once per trace
        # event and these attribute chains dominate its fixed cost.
        self._hier_access_flat = hierarchy.access_flat
        self._line_addr = hierarchy.line_addr
        self._line_mask = hierarchy._line_mask
        self._dram_access = dram.access_completes
        self._fill_prefetch_flat = hierarchy.fill_prefetch_flat
        #: When a list, every line entering ``_prefetch_ready`` is also
        #: appended here (the vector engine's chunk-invalidation hook).
        self._prefetch_log: Optional[List[int]] = None
        #: line -> DRAM completion time of an in-flight prefetch; a
        #: demand hit to a line that has not arrived yet waits for it
        #: (prefetch timeliness).
        self._prefetch_ready: dict = {}
        #: Buffered writebacks, drained in (bank, row)-sorted batches --
        #: the memory controller's write queue.  Writes leave the
        #: critical path and stop closing rows under demand reads.
        self._write_buffer: List[int] = []
        self.write_drain_threshold = 32
        self.stats = MemoryStats()

    def stat_groups(self):
        """StatGroup protocol: the wrapper, the cache levels, the DRAM
        system (with its per-bank aggregate), and the prefetchers."""
        yield "memory", self.stats
        yield from self.hierarchy.stat_groups()
        yield from self.dram.stat_groups()
        if self.stride_prefetcher is not None:
            yield "prefetch.stride", self.stride_prefetcher.stats
        if self.xmem_prefetcher is not None:
            yield "prefetch.xmem", self.xmem_prefetcher.stats

    def access(self, paddr: int, is_write: bool,
               now: float) -> Tuple[float, bool]:
        """One demand access; returns (completion time, went-to-DRAM)."""
        hit_level, lookup, llc_prefetch_hit, wbs = self._hier_access_flat(
            paddr, is_write)
        t_lookup = now + lookup
        mask = self._line_mask
        line = paddr & mask if mask is not None else self._line_addr(paddr)
        memory_read = hit_level is None
        if memory_read:
            completes = self._dram_access(line, t_lookup, is_write=False)
            if self._prefetch_ready:
                self._prefetch_ready.pop(line, None)
            if is_write:
                self.stats.demand_writes += 1
            else:
                self.stats.demand_reads += 1
        else:
            completes = t_lookup
            if self._prefetch_ready:
                ready = self._prefetch_ready.pop(line, None)
                if ready is not None and ready > completes:
                    # The prefetch was issued but its data has not
                    # arrived: the demand access waits (late prefetch).
                    completes = ready
        if wbs is not None:
            for wb in wbs:
                self._buffer_write(wb, t_lookup)
        # Prefetcher preconditions checked inline: most accesses hit
        # above the LLC and trigger neither engine.
        reached_llc = memory_read or hit_level >= self._llc_level
        if (self.stride_prefetcher is not None and reached_llc) or (
                self.xmem_prefetcher is not None
                and (memory_read or llc_prefetch_hit)):
            self._run_prefetchers(paddr, line, memory_read, reached_llc,
                                  llc_prefetch_hit, now)
        return completes, memory_read

    def _buffer_write(self, line: int, now: float) -> None:
        self.stats.writebacks += 1
        self._write_buffer.append(line)
        if len(self._write_buffer) >= self.write_drain_threshold:
            self.drain_writes(now)

    def drain_writes(self, now: float) -> None:
        """Issue buffered writebacks, sorted for row locality.

        Sorting by (bank, row) is what an FR-FCFS controller's write
        drain achieves: consecutive writes to the same row become row
        hits instead of ping-ponging the row buffer under reads.
        """
        if not self._write_buffer:
            return
        dram = self.dram
        decomposed = [(dram.decomposed(line), line)
                      for line in self._write_buffer]
        decomposed.sort(key=lambda pair: (pair[0].bank_key, pair[0].row,
                                          pair[0].col))
        for _, line in decomposed:
            dram.access_completes(line, now, is_write=True)
        self._write_buffer.clear()

    def _run_prefetchers(self, paddr: int, line: int, memory_read: bool,
                         reached_llc: bool, llc_prefetch_hit: bool,
                         now: float) -> None:
        if self.stride_prefetcher is not None and reached_llc:
            for target in self.stride_prefetcher.observe(line):
                self._prefetch(target, now)
        if self.xmem_prefetcher is not None and (
                memory_read or llc_prefetch_hit):
            # A miss to a pinned atom starts the stream; a demand hit on
            # a prefetched line keeps it running ahead.
            for target in self.xmem_prefetcher.on_demand_miss(paddr):
                self._prefetch(target, now)

    def _prefetch(self, line: int, now: float) -> None:
        memory_read, wb = self._fill_prefetch_flat(line)
        if memory_read:
            self.stats.prefetch_reads += 1
            self._prefetch_ready[line] = self._dram_access(
                line, now, is_write=False)
            if self._prefetch_log is not None:
                self._prefetch_log.append(line)
        if wb is not None:
            self._buffer_write(wb, now)


@dataclass
class SystemHandle:
    """Everything a workload run needs, bundled."""

    name: str
    config: SimConfig
    engine: TraceEngine
    memory: MemorySystem
    xmemlib: Optional[XMemLib] = None
    controller: Optional[CacheController] = None

    def run(self, trace: Trace,
            engine_tier: Optional[str] = None) -> EngineStats:
        """Execute a trace on this machine.

        Machines without an XMem system automatically drop the trace's
        XMem operations (hints are supplemental: the binary still runs).
        The evaluation strategy comes from ``engine_tier`` (or, when
        None, the ``REPRO_ENGINE`` environment variable; default
        ``packed``) -- see :mod:`repro.cpu.tiers`.
        """
        from repro.cpu.tiers import run_tier
        if self.xmemlib is None:
            trace = strip_xmem(trace)
        return run_tier(self.engine, trace, engine_tier)

    @property
    def llc(self):
        """The last-level cache (stats live here)."""
        return self.memory.hierarchy.llc

    @property
    def dram(self) -> DramSystem:
        """The DRAM system (latency/RBL stats live here)."""
        return self.memory.dram

    def stats_registry(self) -> "StatsRegistry":
        """The machine's full stats tree, assembled fresh.

        Groups are live references into the component counters, so a
        registry built before a run snapshots correctly after it.
        Paths: ``engine``, ``engine.mshr``, ``memory``,
        ``cache.<level>``, ``dram``, ``dram.banks``,
        ``prefetch.{stride,xmem}``, and ``amu``/``amu.alb`` on XMem
        machines.
        """
        from repro.sim.stats import StatsRegistry
        registry = StatsRegistry()
        registry.register_provider("engine", self.engine)
        registry.register_provider("", self.memory)
        if self.xmemlib is not None:
            registry.register_provider("amu", self.xmemlib.process.amu)
        return registry

    def stats_snapshot(self) -> dict:
        """One nested, JSON-ready snapshot of every component counter."""
        return self.stats_registry().snapshot()


def _base_parts(config: SimConfig):
    hierarchy = CacheHierarchy(config.levels, config.line_bytes)
    dram = DramSystem(
        geometry=config.dram_geometry,
        timing=config.timing(),
        mapping=config.dram_mapping,
    )
    stride = None
    if config.prefetcher.enabled:
        stride = MultiStridePrefetcher(
            streams=config.prefetcher.streams,
            degree=config.prefetcher.degree,
            line_bytes=config.line_bytes,
        )
    return hierarchy, dram, stride


def build_baseline(config: SimConfig,
                   translate: Optional[Callable[[int], int]] = None
                   ) -> SystemHandle:
    """The strengthened baseline: DRRIP + multi-stride prefetcher."""
    hierarchy, dram, stride = _base_parts(config)
    memory = MemorySystem(hierarchy, dram, stride_prefetcher=stride)
    engine = TraceEngine(memory, xmemlib=None, translate=translate,
                         issue_width=config.cpu.issue_width,
                         window=config.cpu.window)
    return SystemHandle("baseline", config, engine, memory)


def build_xmem(config: SimConfig,
               translate: Optional[Callable[[int], int]] = None,
               process: Optional[XMemProcess] = None) -> SystemHandle:
    """Baseline + Use-Case-1 cache management + XMem prefetching."""
    hierarchy, dram, stride = _base_parts(config)
    xmemlib = XMemLib(process)
    xmem_pf = XMemPrefetcher(
        lookup_atom=xmemlib.process.amu.lookup,
        line_bytes=config.line_bytes,
    )
    memory = MemorySystem(hierarchy, dram, stride_prefetcher=stride,
                          xmem_prefetcher=xmem_pf)
    controller = CacheController(xmemlib, hierarchy.llc,
                                 prefetcher=xmem_pf)
    controller.install(hierarchy)
    engine = TraceEngine(memory, xmemlib=xmemlib, translate=translate,
                         issue_width=config.cpu.issue_width,
                         window=config.cpu.window)
    return SystemHandle("xmem", config, engine, memory,
                        xmemlib=xmemlib, controller=controller)


def build_xmem_pref(config: SimConfig,
                    translate: Optional[Callable[[int], int]] = None
                    ) -> SystemHandle:
    """Figure 6's XMem-Pref: semantic prefetching, DRRIP caching.

    The controller still tracks the "pinned" working set so the
    prefetcher knows what to fetch, but its pin predicate is *not*
    installed -- insertion stays default-priority everywhere.
    """
    hierarchy, dram, stride = _base_parts(config)
    xmemlib = XMemLib()
    xmem_pf = XMemPrefetcher(
        lookup_atom=xmemlib.process.amu.lookup,
        line_bytes=config.line_bytes,
    )
    memory = MemorySystem(hierarchy, dram, stride_prefetcher=stride,
                          xmem_prefetcher=xmem_pf)
    controller = CacheController(xmemlib, hierarchy.llc,
                                 prefetcher=xmem_pf)
    # Deliberately NOT installed on the hierarchy: no pinning.
    engine = TraceEngine(memory, xmemlib=xmemlib, translate=translate,
                         issue_width=config.cpu.issue_width,
                         window=config.cpu.window)
    return SystemHandle("xmem-pref", config, engine, memory,
                        xmemlib=xmemlib, controller=controller)
