"""Analytical hit-rate estimator over :class:`PackedTrace` columns.

:func:`estimate_packed` predicts a run's :class:`EngineStats` in one
pass over the packed columns without evolving the machine: no DRAM
timing, no MSHR, no channel or bank state, no stall modelling.  It
exists for quick sweeps and sanity triage; committed tables must be
produced on an exact tier (``object``/``packed``/``vector``).

Model
-----

* **L1: per-set LRU stack distance.**  One
  :class:`collections.OrderedDict` per set (capacity = ways): an access
  hits iff its stack distance within the set is at most the
  associativity.  The paper machine's L1 *is* LRU and every access both
  probes and fills it, so this automaton is exact for L1.
* **L2/LLC: per-set reuse-profile automaton.**  RRIP-family levels
  carry the machine's actual 2-bit re-reference prediction values and
  insertion rules (SRRIP/BRRIP/DRRIP including the PSEL duel) over
  way-indexed sets, so the reuse profile -- which lines a thrashing or
  scanning stream keeps -- matches the real policy.  LRU levels use the
  stack instead.
* **Cascade + ripple.**  L2 sees only L1 misses, the LLC only L2
  misses; dirty victims ripple downward as in the real hierarchy
  (merging silently when resident, filling when not).
* **Prefetch coverage.**  With a multi-stride prefetcher present, the
  estimator trains the *real* detector logic on the LLC-reached stream
  and installs predicted lines into the LLC automaton, so
  stream-covered misses are classified as (prefetched) hits.

Error model
-----------

* L1 hits/misses are exact (see above).
* ``misses_to_memory`` is approximate.  Unmodelled: LLC pinning and
  the semantic (XMem) prefetcher on machines with an XMem controller,
  prefetch arrival timing (a predicted line is assumed usable by its
  demand access), and MSHR/DRAM back-pressure.  On the 27-workload
  suite catalog the relative miss-count error is bounded at 2%
  (enforced by ``tests/sim/test_analytical.py`` and the fuzz corpus);
  the bound is *empirical* for that catalog, not a guarantee for
  adversarial streams.
* ``cycles``/``stall_cycles`` are coarse: issue time plus an
  MSHR-damped closed-row DRAM service charge per estimated miss.  They
  capture magnitude and ordering, not the measured value; no error
  bound is claimed for them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

try:
    import numpy as _np
except ImportError:          # pragma: no cover - numpy ships in the image
    _np = None

from repro.cpu.engine import EngineStats, TraceEngine
from repro.cpu.trace import PackedTrace
from repro.mem.prefetch import MultiStridePrefetcher
from repro.mem.replacement import (
    BRRIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    RRPV_LONG,
    RRPV_MAX,
    SRRIPPolicy,
)

_INVALID = -1


@dataclass
class AnalyticalEstimate:
    """Per-level detail behind an estimated :class:`EngineStats`."""

    stats: EngineStats
    #: Demand hits per level, L1 outward.
    level_hits: List[int]
    #: Demand misses per level, L1 outward.
    level_misses: List[int]
    #: Estimated prefetch fills installed at the LLC.
    prefetch_fills: int
    #: Estimated demand hits on prefetched LLC lines.
    prefetch_hits: int


class _LruLevel:
    """One LRU level as per-set stacks.

    Entry values are ``[dirty, prefetched]`` flags.
    """

    __slots__ = ("sets", "ways", "set_mask", "line_shift", "tag_shift")

    def __init__(self, cache) -> None:
        self.ways = cache.ways
        self.set_mask = cache._set_mask
        self.line_shift = cache._line_shift
        self.tag_shift = cache._tag_shift
        self.sets = [OrderedDict() for _ in range(cache.num_sets)]

    def probe(self, si: int, tag: int) -> bool:
        od = self.sets[si]
        if tag in od:
            od.move_to_end(tag)
            return True
        return False

    def resident(self, si: int, tag: int) -> bool:
        return tag in self.sets[si]

    def mark_dirty(self, si: int, tag: int) -> None:
        self.sets[si][tag][0] = True

    def take_prefetched(self, si: int, tag: int) -> bool:
        ent = self.sets[si][tag]
        if ent[1]:
            ent[1] = False
            return True
        return False

    def record_miss(self, si: int) -> None:
        pass

    def fill(self, si: int, tag: int, dirty: bool,
             prefetched: bool) -> Optional[Tuple[int, bool]]:
        """Install; return a dirty victim's ``(tag, True)`` or None."""
        od = self.sets[si]
        od[tag] = [dirty, prefetched]
        if len(od) > self.ways:
            vtag, vent = od.popitem(last=False)
            if vent[0]:
                return vtag, True
        return None


class _RripLevel:
    """One RRIP-family level: way-indexed sets with the machine's
    actual RRPV insertion/aging rules (minus pinning)."""

    __slots__ = ("ways", "set_mask", "line_shift", "tag_shift",
                 "tags", "rrpv", "dirty", "valid", "allways", "pf",
                 "insert_long", "duel", "psel", "psel_max", "psel_half",
                 "fill_count", "brrip_period")

    def __init__(self, cache) -> None:
        self.ways = cache.ways
        self.set_mask = cache._set_mask
        self.line_shift = cache._line_shift
        self.tag_shift = cache._tag_shift
        n = cache.num_sets
        w = cache.ways
        self.tags = [[_INVALID] * w for _ in range(n)]
        self.rrpv = [[RRPV_MAX] * w for _ in range(n)]
        self.dirty = [[False] * w for _ in range(n)]
        self.valid = [0] * n
        self.allways = tuple(range(w))
        self.pf = set()
        policy = cache.policy
        self.duel = type(policy) is DRRIPPolicy
        self.insert_long = type(policy) is SRRIPPolicy
        self.psel = (1 << DRRIPPolicy.PSEL_BITS) // 2
        self.psel_max = (1 << DRRIPPolicy.PSEL_BITS) - 1
        self.psel_half = self.psel_max // 2
        self.fill_count = 0
        self.brrip_period = BRRIPPolicy.LONG_INTERVAL_PERIOD

    def probe(self, si: int, tag: int) -> bool:
        row = self.tags[si]
        if tag in row:
            self.rrpv[si][row.index(tag)] = 0
            return True
        return False

    def resident(self, si: int, tag: int) -> bool:
        return tag in self.tags[si]

    def mark_dirty(self, si: int, tag: int) -> None:
        self.dirty[si][self.tags[si].index(tag)] = True

    def take_prefetched(self, si: int, tag: int) -> bool:
        key = (si, tag)
        if key in self.pf:
            self.pf.discard(key)
            return True
        return False

    def record_miss(self, si: int) -> None:
        if not self.duel:
            return
        phase = si % DRRIPPolicy.DUEL_PERIOD
        if phase == 0:
            if self.psel < self.psel_max:
                self.psel += 1
        elif phase == 1:
            if self.psel > 0:
                self.psel -= 1

    def _insert_rrpv(self, si: int) -> int:
        if self.insert_long:
            return RRPV_LONG
        if self.duel:
            phase = si % DRRIPPolicy.DUEL_PERIOD
            if not (phase == 1 or (phase != 0
                                   and self.psel > self.psel_half)):
                return RRPV_LONG
        self.fill_count += 1
        if self.fill_count % self.brrip_period == 0:
            return RRPV_LONG
        return RRPV_MAX

    def fill(self, si: int, tag: int, dirty: bool,
             prefetched: bool) -> Optional[Tuple[int, bool]]:
        row = self.tags[si]
        victim = None
        if self.valid[si] < self.ways:
            way = row.index(_INVALID)
            self.valid[si] += 1
        else:
            rr = self.rrpv[si]
            if RRPV_MAX in rr:
                way = rr.index(RRPV_MAX)
            else:
                bump = RRPV_MAX - max(rr)
                for wy in self.allways:
                    rr[wy] += bump
                way = rr.index(RRPV_MAX)
            vtag = row[way]
            if self.pf:
                self.pf.discard((si, vtag))
            if self.dirty[si][way]:
                victim = (vtag, True)
        row[way] = tag
        self.dirty[si][way] = dirty
        if prefetched:
            self.pf.add((si, tag))
        self.rrpv[si][way] = self._insert_rrpv(si)
        return victim


def _make_level(cache):
    if type(cache.policy) is LRUPolicy:
        return _LruLevel(cache)
    return _RripLevel(cache)


def estimate(engine: TraceEngine, trace) -> AnalyticalEstimate:
    """Estimate a run of ``trace`` on ``engine`` (machine untouched)."""
    if _np is None:
        raise RuntimeError("analytical tier requires numpy")
    if type(trace) is not PackedTrace:
        trace = PackedTrace.from_events(list(trace))
    np = _np

    memory = engine.memory
    hier = memory.hierarchy
    levels = [_make_level(c) for c in hier.levels]
    num_levels = len(levels)
    last = num_levels - 1
    line_bytes = hier.line_bytes
    translate = engine.translate

    # -- Exact columnar accounting -----------------------------------------
    me = (np.frombuffer(trace.meta, dtype=np.int64) if len(trace.meta)
          else np.empty(0, dtype=np.int64))
    va = (np.frombuffer(trace.vaddr, dtype=np.int64) if len(trace.vaddr)
          else np.empty(0, dtype=np.int64))
    counts = me >> 2
    total_work = int(counts.sum())
    work_rows = (me & 2) != 0
    n_mem = len(me) - int(np.count_nonzero(work_rows))
    n_ops = len(trace.xmem)
    instructions = total_work + n_mem + n_ops
    mem_rows = ~work_rows
    addrs = va[mem_rows]
    writes = (me[mem_rows] & 1) != 0

    # -- The cascade ---------------------------------------------------------
    hits = [0] * num_levels
    misses = [0] * num_levels
    pf_fills = 0
    pf_hits = 0

    stride = memory.stride_prefetcher
    observe = None
    if stride is not None:
        # A fresh detector with the machine's parameters: the real
        # training logic, fed the estimator's LLC-reached stream.
        replica = MultiStridePrefetcher(
            streams=stride.max_streams, degree=stride.degree,
            line_bytes=stride.line_bytes,
            region_bytes=stride.region_bytes)
        observe = replica.observe

    line_mask = hier._line_mask
    llc = levels[last]

    def fill(level: int, line: int, dirty: bool,
             prefetched: bool = False) -> None:
        """Install ``line``; ripple a dirty victim down one level."""
        lv = levels[level]
        si = (line >> lv.line_shift) & lv.set_mask
        victim = lv.fill(si, line >> lv.tag_shift, dirty, prefetched)
        if victim is None or level == last:
            return
        vline = (victim[0] << lv.tag_shift) | (si << lv.line_shift)
        nxt = levels[level + 1]
        nsi = (vline >> nxt.line_shift) & nxt.set_mask
        ntag = vline >> nxt.tag_shift
        if nxt.resident(nsi, ntag):
            nxt.mark_dirty(nsi, ntag)     # silent merge, no promotion
        else:
            fill(level + 1, vline, True)

    for addr, w in zip(addrs.tolist(), writes.tolist()):
        if translate is not None:
            addr = translate(addr)
        line = (addr & line_mask if line_mask is not None
                else addr - (addr % line_bytes))
        hit_level = None
        llc_reached = False
        for i in range(num_levels):
            lv = levels[i]
            si = (line >> lv.line_shift) & lv.set_mask
            tag = line >> lv.tag_shift
            if lv.probe(si, tag):
                hits[i] += 1
                if w and i == 0:
                    lv.mark_dirty(si, tag)
                if i == last:
                    llc_reached = True
                    if lv.take_prefetched(si, tag):
                        pf_hits += 1
                hit_level = i
                break
            misses[i] += 1
            lv.record_miss(si)
        if hit_level != 0:
            top = hit_level if hit_level is not None else num_levels
            for i in range(top - 1, -1, -1):
                fill(i, line, w and i == 0)
        if hit_level is None:
            llc_reached = True
        if observe is not None and llc_reached:
            for target in observe(line):
                si = (target >> llc.line_shift) & llc.set_mask
                if not llc.resident(si, target >> llc.tag_shift):
                    pf_fills += 1
                    fill(last, target, False, prefetched=True)

    # -- Coarse timing --------------------------------------------------------
    issue = engine.issue_width
    issue_time = (total_work + n_mem + n_ops) / issue
    timing = memory.dram.timing
    service = timing.t_rcd + timing.t_cl + timing.t_burst
    overlap = max(1, engine.mshr.entries)
    est_misses = misses[last]
    stall = est_misses * service / overlap
    stats = EngineStats(
        cycles=issue_time + stall,
        instructions=instructions,
        mem_accesses=n_mem,
        xmem_instructions=n_ops,
        misses_to_memory=est_misses,
        stall_cycles=stall,
    )
    return AnalyticalEstimate(stats=stats, level_hits=hits,
                              level_misses=misses,
                              prefetch_fills=pf_fills,
                              prefetch_hits=pf_hits)


def estimate_packed(engine: TraceEngine, trace) -> EngineStats:
    """Tier entry point: estimated :class:`EngineStats` for ``trace``.

    The machine is left untouched (no cache/DRAM counters move); only
    ``engine.last_stats`` is set, to mirror the exact tiers' contract.
    """
    result = estimate(engine, trace)
    engine.last_stats = result.stats
    return result.stats
