"""Full-system simulation: configurations, composition, statistics."""

from repro.sim.config import (
    CpuConfig,
    PrefetcherConfig,
    SimConfig,
    scaled_config,
    table3_config,
)
from repro.sim.stats import (
    RunRecord,
    amean,
    format_table,
    geomean,
    slowdown,
    speedup,
)
from repro.sim.corun import CoreStats, CorunSystem, MultiProcessController
from repro.sim.system import (
    MemoryStats,
    MemorySystem,
    SystemHandle,
    build_baseline,
    build_xmem,
    build_xmem_pref,
)

__all__ = [
    "CoreStats",
    "CorunSystem",
    "CpuConfig",
    "MultiProcessController",
    "MemoryStats",
    "MemorySystem",
    "PrefetcherConfig",
    "RunRecord",
    "SimConfig",
    "SystemHandle",
    "amean",
    "build_baseline",
    "build_xmem",
    "build_xmem_pref",
    "format_table",
    "geomean",
    "scaled_config",
    "slowdown",
    "speedup",
    "table3_config",
]
