"""Simulation configurations (Table 3).

``table3_config()`` is the paper's machine: a 3.6 GHz Westmere-like
core with 32 KB L1 / 128 KB L2 / 1 MB-per-core L3 (DRRIP), a 16-stream
multi-stride prefetcher at L3, and DDR3-1066 with 2 channels and 8
banks per rank.

``scaled_config(factor)`` shrinks the caches and DRAM capacity while
preserving every ratio that drives the evaluated phenomena (tile size
vs. cache size, working set vs. cache size, bank count).  Tests and
fast experiments run scaled; benchmarks can run closer to full size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.core.errors import ConfigurationError
from repro.dram.mapping import DramGeometry
from repro.dram.timing import DramTiming, ddr3_1066
from repro.mem.hierarchy import LevelConfig


@dataclass(frozen=True)
class CpuConfig:
    """Core parameters (Table 3, CPU row)."""

    ghz: float = 3.6
    issue_width: int = 4
    #: Outstanding long-latency accesses the core can overlap -- the
    #: ROB/MSHR-limited window of the timing model.
    window: int = 32


@dataclass(frozen=True)
class PrefetcherConfig:
    """The baseline L3 prefetcher (multi-stride, 16 streams)."""

    enabled: bool = True
    streams: int = 16
    degree: int = 2


@dataclass(frozen=True)
class SimConfig:
    """One complete machine configuration."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    levels: List[LevelConfig] = field(default_factory=lambda: [
        LevelConfig("L1", 32 * 1024, 8, latency=4, policy="lru"),
        LevelConfig("L2", 128 * 1024, 8, latency=8, policy="drrip"),
        LevelConfig("L3", 1024 * 1024, 16, latency=27, policy="drrip"),
    ])
    line_bytes: int = 64
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    dram_geometry: DramGeometry = field(default_factory=DramGeometry)
    dram_timing: Optional[DramTiming] = None
    dram_mapping: str = "scheme2"
    #: Per-core memory bandwidth scale (1.0 = the Table 3 2.1 GB/s/core
    #: point).  Figure 6 sweeps roughly {1.0, 0.5, 0.25}.
    bandwidth_scale: float = 1.0

    def timing(self) -> DramTiming:
        """The effective DRAM timing (bandwidth scale applied)."""
        base = self.dram_timing or ddr3_1066(self.cpu.ghz)
        if self.bandwidth_scale == 1.0:
            return base
        return base.scaled_bandwidth(self.bandwidth_scale)

    @property
    def llc_bytes(self) -> int:
        """Capacity of the last-level cache."""
        return self.levels[-1].size_bytes

    def with_llc(self, size_bytes: int) -> "SimConfig":
        """A copy with the LLC resized (the Figure 5 portability sweep)."""
        last = self.levels[-1]
        if size_bytes % (last.ways * self.line_bytes):
            raise ConfigurationError(
                f"LLC size {size_bytes} incompatible with {last.ways} ways"
            )
        levels = list(self.levels)
        levels[-1] = replace(last, size_bytes=size_bytes)
        return replace(self, levels=levels)

    def with_bandwidth(self, scale: float) -> "SimConfig":
        """A copy with scaled per-core DRAM bandwidth (Figure 6)."""
        return replace(self, bandwidth_scale=scale)


def table3_config() -> SimConfig:
    """The paper's evaluation machine (one core's slice)."""
    return SimConfig()


def scaled_config(factor: int = 8,
                  dram_capacity: int = 1 << 26) -> SimConfig:
    """A machine shrunk by ``factor`` for fast simulation.

    Cache sizes divide by ``factor``; associativities, latencies, the
    DRAM organization, and all policies are unchanged, so tile/cache
    and working-set/cache ratios reproduce the paper's regimes at a
    fraction of the trace length.
    """
    if factor <= 0:
        raise ConfigurationError(f"factor must be > 0: {factor}")
    base = table3_config()
    levels = [
        replace(lvl, size_bytes=max(lvl.size_bytes // factor,
                                    lvl.ways * base.line_bytes * 4))
        for lvl in base.levels
    ]
    # Keep set counts power-of-two.
    return replace(
        base,
        levels=levels,
        dram_geometry=DramGeometry(capacity_bytes=dram_capacity),
    )
