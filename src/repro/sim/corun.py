"""Multi-core co-running simulation (the Section 5.1 scenario).

Use Case 1's motivation is that the cache space *actually available* to
an application changes when other applications co-run on the shared
LLC.  This module simulates N cores, each with private L1/L2 and its
own trace, sharing the L3 and DRAM:

* cores advance in timestamp order (the core with the smallest local
  clock steps next), so shared-resource contention interleaves
  naturally;
* each application may carry its own XMem process; the shared LLC's
  pinning decision is *global* -- the paper's greedy algorithm "takes
  the active atoms in all the cores" and pins by reuse until the 75%
  budget fills;
* per-application address spaces are disjoint (each core's addresses
  are offset), so one AAM lookup per application resolves cleanly.

Two interleavers evaluate the same model:

``run_events``
    The legacy per-event loop: an ``argmin`` over core clocks picks
    the next core, which interprets one object event.  O(N) per event
    and per-event Python for every L1 hit.  Kept verbatim as the
    differential oracle (fuzz lane ``corun``, equivalence pins in
    ``tests/sim/test_corun_packed.py``).
``run_packed``
    The PackedTrace-native engine.  A binary heap keyed by
    ``(core.now, core.index)`` schedules cores; between shared-LLC
    interactions a core's private stretch -- L1 hits and Work blocks,
    which touch nothing outside the core -- is fast-forwarded with the
    vector tier's machinery (chunked columnar residency probing,
    :meth:`Cache.apply_hit_run` replay, exact dyadic-grid time
    accumulation), so the core yields control only at *yield points*:
    accesses that can leave the L1 (they may ripple writebacks into
    the shared LLC/DRAM or consume shared prefetch state) and XMemOps
    (they can retrigger the global pinning decision).  Yield points
    execute through the very same ``_access`` path as the legacy
    loop, so shared-resource contention still interleaves in
    timestamp order with the legacy tie-break (lowest core index) and
    the per-core :class:`CoreStats` are bit-identical.

Private events commute with other cores' shared events (disjoint
state), which is why the packed engine may apply a core's private
prefix eagerly while sibling cores are still behind in model time:
only the *order of shared interactions* is observable, and the heap
reproduces the legacy order exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:          # pragma: no cover - numpy ships in the image
    _np = None

from repro.core.errors import ConfigurationError
from repro.core.stats import iter_stat_groups
from repro.core.xmemlib import XMemLib
from repro.cpu.tiers import corun_tier
from repro.cpu.trace import (
    MemAccess,
    META_COUNT_SHIFT,
    META_WORK_BIT,
    META_WRITE_BIT,
    PackedTrace,
    Trace,
    Work,
    XMemOp,
)
from repro.cpu.vector_engine import BATCHABLE_POLICIES, dyadic_k
from repro.dram.system import DramSystem
from repro.mem.cache import Cache
from repro.mem.replacement import LRUPolicy, RandomPolicy
from repro.mem.mshr import MSHRFile
from repro.mem.prefetch import MultiStridePrefetcher, XMemPrefetcher
from repro.sim.config import SimConfig

#: Address-space stride between co-running applications.
APP_SPACE = 1 << 40

#: Events per columnar decomposition chunk of the packed interleaver.
CHUNK = 2048
#: Addresses must stay well inside int64 after the per-app offset for
#: the numpy decomposition; traces outside use the (equally exact)
#: raw scalar planner.
_ADDR_BOUND = 1 << 61

# Yield kinds of a planned cursor.
_Y_MEM, _Y_XMEM, _Y_END = 0, 1, 2


@dataclass
class CoreStats:
    """Per-core results."""

    cycles: float = 0.0
    instructions: int = 0
    mem_accesses: int = 0
    llc_misses: int = 0


class _Core:
    """Private state of one core."""

    def __init__(self, index: int, config: SimConfig,
                 xmemlib: Optional[XMemLib]) -> None:
        self.index = index
        self.offset = index * APP_SPACE
        l1, l2 = config.levels[0], config.levels[1]
        self.l1 = Cache(f"c{index}.L1", l1.size_bytes, l1.ways,
                        config.line_bytes, policy=l1.policy)
        self.l2 = Cache(f"c{index}.L2", l2.size_bytes, l2.ways,
                        config.line_bytes, policy=l2.policy)
        self.l1_lat = l1.latency
        self.l2_lat = l2.latency
        self.xmemlib = xmemlib
        self.xmem_pf: Optional[XMemPrefetcher] = None
        self.now = 0.0
        self.mshr = MSHRFile(config.cpu.window)
        self.stats = CoreStats()
        self.trace: Optional[Iterator] = None
        self.done = False

    def stat_groups(self):
        """StatGroup protocol: the core's private machine state."""
        yield "core", self.stats
        yield "l1", self.l1.stats
        yield "l2", self.l2.stats
        yield "mshr", self.mshr.stats
        if self.xmem_pf is not None:
            yield "prefetch.xmem", self.xmem_pf.stats
        if self.xmemlib is not None:
            yield from iter_stat_groups(self.xmemlib.process.amu, "amu")


class _PackedCursor:
    """Per-core interleaver state over one :class:`PackedTrace`.

    Holds the dense position / XMemOp index pair, the planned yield
    kind, and the current decomposition chunk: per-position set index,
    tag, line key, work count and write flag, pre-split from the
    packed columns in one vectorized pass (numpy planner only).
    """

    __slots__ = ("core", "trace", "tv", "tm", "xmem", "n_dense", "n_x",
                 "pos", "xi", "kind", "va", "me",
                 "cbase", "cend",
                 "csets_l", "ctags_l", "cmem_l", "clkey_l", "cwrite_l",
                 "ccum_l", "cmcum_l")

    def __init__(self, core: _Core, trace: PackedTrace) -> None:
        self.core = core
        self.trace = trace
        self.tv = trace.vaddr
        self.tm = trace.meta
        self.xmem = trace.xmem
        self.n_dense = len(trace.vaddr)
        self.n_x = len(trace.xmem)
        self.pos = 0
        self.xi = 0
        self.kind = _Y_END
        self.va = None
        self.me = None
        if _np is not None and self.n_dense:
            va = _np.frombuffer(trace.vaddr, dtype=_np.int64)
            lo = int(va.min()) + core.offset
            hi = int(va.max()) + core.offset
            if -_ADDR_BOUND < lo and hi < _ADDR_BOUND:
                self.va = va
                self.me = _np.frombuffer(trace.meta, dtype=_np.int64)
        # Decomposition chunk (empty until the first _classify).
        self.cbase = 0
        self.cend = 0
        self.csets_l: list = []
        self.ctags_l: list = []
        self.cmem_l: list = []
        self.clkey_l: list = []
        self.cwrite_l: list = []
        self.ccum_l: list = []
        self.cmcum_l: list = []


class MultiProcessController:
    """The global greedy pinning decision over every app's atoms.

    Mirrors :class:`repro.policies.cache_mgmt.CacheController` but
    walks the active atoms of *all* registered XMem processes, sorted
    together by reuse, against one shared 75% budget.  Addresses are
    per-application physical (offset), so pin lookups dispatch to the
    owning application's AMU.
    """

    def __init__(self, llc: Cache, pin_fraction: float = 0.75) -> None:
        self.llc = llc
        self.pin_fraction = pin_fraction
        self._apps: List[Tuple[int, XMemLib]] = []
        self._pin_spans: Dict[int, List[Tuple[int, int]]] = {}
        self.prefetchers: Dict[int, XMemPrefetcher] = {}

    def register(self, offset: int, xmemlib: XMemLib,
                 prefetcher: Optional[XMemPrefetcher] = None) -> None:
        """Attach one application (by its address-space offset)."""
        self._apps.append((offset, xmemlib))
        if prefetcher is not None:
            self.prefetchers[offset] = prefetcher
        xmemlib.listeners.append(self.refresh)
        self.refresh()

    def refresh(self) -> None:
        """Recompute the global pinning decision."""
        budget = int(self.llc.size_bytes * self.pin_fraction)
        entries = []
        for offset, lib in self._apps:
            for atom in lib.process.active_atoms():
                if atom.reuse > 0:
                    entries.append((atom.reuse, offset, lib, atom))
        entries.sort(key=lambda e: e[0], reverse=True)
        spans: Dict[int, List[Tuple[int, int]]] = {}
        arm: Dict[int, Dict] = {o: {} for o, _ in self._apps}
        for reuse, offset, lib, atom in entries:
            if budget <= 0:
                break
            aam = lib.process.amu.aam
            chunk = aam.config.chunk_bytes
            atom_spans = _coalesce(sorted(aam.mapped_chunks(atom.atom_id)),
                                   chunk)
            size = sum(e - s for s, e in atom_spans)
            take = min(size, budget)
            if take < chunk:
                continue
            taken = _prefix(atom_spans, take)
            spans.setdefault(offset, []).extend(
                (s + offset, e + offset) for s, e in taken
            )
            budget -= take
            if take < size and offset in self.prefetchers:
                from repro.core.pat import translate_for_prefetcher
                attrs = lib.process.gat.get(atom.atom_id)
                if attrs is not None:
                    arm[offset][atom.atom_id] = XMemPrefetcher.entry(
                        translate_for_prefetcher(attrs), atom_spans)
        if spans != self._pin_spans:
            self.llc.unpin_all()
            self._pin_spans = spans
        for offset, pf in self.prefetchers.items():
            pf.set_pinned_atoms(arm.get(offset, {}))

    def pin_predicate(self, global_addr: int) -> bool:
        """Whether a (global) line address belongs to a pinned atom."""
        offset = (global_addr // APP_SPACE) * APP_SPACE
        spans = self._pin_spans.get(offset)
        if not spans:
            return False
        return any(s <= global_addr < e for s, e in spans)

    def stat_groups(self):
        """StatGroup protocol: a lazy summary of the pinning decision."""
        yield "pin", self.pin_summary

    def pin_summary(self) -> Dict[str, int]:
        """Span-level view of the current global pinning decision."""
        spans = [s for lst in self._pin_spans.values() for s in lst]
        return {
            "apps_pinned": sum(1 for lst in self._pin_spans.values()
                               if lst),
            "spans": len(spans),
            "pinned_bytes": sum(e - s for s, e in spans),
        }


class CorunSystem:
    """N cores over a shared LLC + DRAM."""

    def __init__(self, config: SimConfig, n_cores: int,
                 xmem_cores: Sequence[int] = ()) -> None:
        if n_cores <= 0:
            raise ConfigurationError(f"need at least one core: {n_cores}")
        if len(config.levels) != 3:
            raise ConfigurationError("corun expects an L1/L2/L3 config")
        self.config = config
        l3 = config.levels[2]
        self.llc = Cache("sharedL3", l3.size_bytes, l3.ways,
                         config.line_bytes, policy=l3.policy)
        self.llc_lat = l3.latency
        self.dram = DramSystem(geometry=config.dram_geometry,
                               timing=config.timing(),
                               mapping=config.dram_mapping)
        self.stride_pf = MultiStridePrefetcher(
            streams=config.prefetcher.streams,
            degree=config.prefetcher.degree,
            line_bytes=config.line_bytes,
        ) if config.prefetcher.enabled else None
        self.controller = MultiProcessController(self.llc)
        self.cores: List[_Core] = []
        for i in range(n_cores):
            lib = XMemLib() if i in xmem_cores else None
            core = _Core(i, config, lib)
            self.cores.append(core)
            if lib is not None:
                pf = XMemPrefetcher(
                    lookup_atom=self._app_lookup(core.offset, lib),
                    line_bytes=config.line_bytes,
                )
                core.xmem_pf = pf
                self.controller.register(core.offset, lib, pf)
        self._prefetch_ready: Dict[int, float] = {}
        # Hot-loop hoists (issue width, line size) and the exactness
        # ceiling of batched time accumulation (set by packed_eligible).
        self._issue = config.cpu.issue_width
        self._line_bytes = config.line_bytes
        self._now_limit = 0.0

    @staticmethod
    def _app_lookup(offset: int, lib: XMemLib):
        def lookup(global_addr: int):
            return lib.process.amu.lookup(global_addr - offset)
        return lookup

    # -- Stats ----------------------------------------------------------

    def stat_groups(self):
        """StatGroup protocol: shared resources plus per-core groups."""
        yield "llc", self.llc.stats
        yield "dram", self.dram.stats
        yield "dram.banks", self.dram.bank_summary
        if self.stride_pf is not None:
            yield "prefetch.stride", self.stride_pf.stats
        yield from iter_stat_groups(self.controller, "controller")
        for core in self.cores:
            prefix = f"core{core.index}"
            for sub, group in core.stat_groups():
                yield f"{prefix}.{sub}", group

    def stats_registry(self):
        """The system's full stats tree, assembled fresh.

        Groups are live references into the component counters, so a
        registry built before a run snapshots correctly after it.
        Paths: ``llc``, ``dram``, ``dram.banks``, ``prefetch.stride``,
        ``controller.pin``, and per core ``core<i>.{core,l1,l2,mshr,
        prefetch.xmem,amu,amu.alb}``.
        """
        from repro.sim.stats import StatsRegistry
        registry = StatsRegistry()
        registry.register_provider("", self)
        return registry

    def stats_snapshot(self) -> dict:
        """One nested, JSON-ready snapshot of every component counter."""
        return self.stats_registry().snapshot()

    # -- Running --------------------------------------------------------

    def run(self, traces: Sequence[Trace]) -> List[CoreStats]:
        """Interleave one trace per core until all complete.

        All-:class:`PackedTrace` inputs run on the heap-scheduled
        batched interleaver unless ``REPRO_ENGINE=object`` selects the
        legacy loop; object event streams always take the legacy loop.
        Both produce bit-identical :class:`CoreStats`.
        """
        if len(traces) != len(self.cores):
            raise ConfigurationError(
                f"{len(self.cores)} cores need {len(self.cores)} traces"
            )
        if (all(type(t) is PackedTrace for t in traces)
                and corun_tier() == "packed"):
            return self.run_packed(traces)
        return self.run_events(traces)

    def run_events(self, traces: Sequence[Trace]) -> List[CoreStats]:
        """The legacy per-event interleaver (the differential oracle).

        Accepts object event iterables or :class:`PackedTrace` (which
        is unpacked to its event stream).
        """
        if len(traces) != len(self.cores):
            raise ConfigurationError(
                f"{len(self.cores)} cores need {len(self.cores)} traces"
            )
        for core, trace in zip(self.cores, traces):
            if type(trace) is PackedTrace:
                core.trace = trace.events()
            else:
                core.trace = iter(trace)
            core.done = False
        pending = set(range(len(self.cores)))
        while pending:
            core = min((self.cores[i] for i in pending),
                       key=lambda c: c.now)
            if not self._step(core):
                tail = core.mshr.latest_completion()
                if tail is not None and tail > core.now:
                    core.now = tail
                core.mshr.flush()
                core.stats.cycles = core.now
                core.done = True
                pending.discard(core.index)
        return [c.stats for c in self.cores]

    def _step(self, core: _Core) -> bool:
        try:
            ev = next(core.trace)
        except StopIteration:
            return False
        issue = self.config.cpu.issue_width
        if type(ev) is MemAccess:
            if ev.work:
                core.now += ev.work / issue
                core.stats.instructions += ev.work
            core.stats.instructions += 1
            core.stats.mem_accesses += 1
            completes = self._access(core, ev.vaddr + core.offset,
                                     ev.is_write)
            latency = completes - core.now
            if latency > 4.0:
                start = core.mshr.reserve(core.now, completes)
                core.now = max(core.now, start) + 1.0 / issue
            else:
                core.now += 1.0 / issue
        elif type(ev) is Work:
            core.now += ev.count / issue
            core.stats.instructions += ev.count
        elif type(ev) is XMemOp:
            core.stats.instructions += 1
            core.now += 1.0 / issue
            if core.xmemlib is not None:
                getattr(core.xmemlib, ev.method)(*ev.args)
        else:
            raise TypeError(f"not a trace event: {ev!r}")
        return True

    # -- Packed interleaver ---------------------------------------------

    def packed_eligible(self) -> bool:
        """Whether the machine shape admits the batched fast path.

        The gate mirrors :func:`repro.cpu.vector_engine.eligible`:
        plain :class:`Cache` L1s under a batchable policy with
        shift-decomposable geometry, no prefetched L1 tags (co-run
        prefetches only fill the LLC, so this holds by construction),
        and every time quantum on one dyadic grid so batched ``now``
        accumulation is exact.  Failing the gate falls back to
        :meth:`run_events` -- the packed tier is never a different
        model, only a faster evaluation of the same one.
        """
        issue = self.config.cpu.issue_width
        if issue <= 0 or issue & (issue - 1):
            return False
        lats = [float(self.llc_lat)]
        for core in self.cores:
            l1 = core.l1
            if type(l1) is not Cache or l1._line_shift is None:
                return False
            if type(l1.policy) not in BATCHABLE_POLICIES:
                return False
            if l1._prefetched_tags:
                return False
            lats.append(float(core.l1_lat))
            lats.append(float(core.l2_lat))
        timing = self.dram.timing
        k = dyadic_k((1.0 / issue, 1.0, 4.0, timing.t_cl, timing.t_rcd,
                      timing.t_rp, timing.t_burst, *lats))
        if k is None:
            return False
        # Grid points below 2**(52-k) carry <= 52 mantissa bits, so
        # every addition in a batched sum is exact.
        self._now_limit = float(1 << (52 - k))
        return True

    def run_packed(self, traces: Sequence[PackedTrace]) -> List[CoreStats]:
        """The heap-scheduled batched interleaver.

        Bit-identical to :meth:`run_events` on the same traces; falls
        back to it whenever :meth:`packed_eligible` says no.
        """
        if len(traces) != len(self.cores):
            raise ConfigurationError(
                f"{len(self.cores)} cores need {len(self.cores)} traces"
            )
        for trace in traces:
            if type(trace) is not PackedTrace:
                raise ConfigurationError(
                    f"run_packed needs PackedTrace inputs: {trace!r}")
        if not self.packed_eligible():
            return self.run_events(traces)
        for core in self.cores:
            core.trace = None
            core.done = False
        issue = self.config.cpu.issue_width
        self._issue = issue
        cursors = [_PackedCursor(core, trace)
                   for core, trace in zip(self.cores, traces)]
        heap: List[Tuple[float, int]] = []
        for cur in cursors:
            self._plan(cur)
            heappush(heap, (cur.core.now, cur.core.index))
        while heap:
            _, idx = heappop(heap)
            cur = cursors[idx]
            core = cur.core
            kind = cur.kind
            if kind == _Y_END:
                tail = core.mshr.latest_completion()
                if tail is not None and tail > core.now:
                    core.now = tail
                core.mshr.flush()
                core.stats.cycles = core.now
                core.done = True
                continue
            if kind == _Y_XMEM:
                op = cur.xmem[cur.xi][1]
                core.stats.instructions += 1
                core.now += 1.0 / issue
                if core.xmemlib is not None:
                    getattr(core.xmemlib, op.method)(*op.args)
                cur.xi += 1
            else:
                self._exec_packed_event(cur)
            self._plan(cur)
            heappush(heap, (core.now, idx))
        return [c.stats for c in self.cores]

    def _exec_packed_event(self, cur: _PackedCursor) -> None:
        """Execute the dense event at ``cur.pos`` with the legacy
        arithmetic (same operations, same order as :meth:`_step`)."""
        core = cur.core
        issue = self._issue
        pos = cur.pos
        m = cur.tm[pos]
        cur.pos = pos + 1
        if m & META_WORK_BIT:
            count = m >> META_COUNT_SHIFT
            core.now += count / issue
            core.stats.instructions += count
            return
        work = m >> META_COUNT_SHIFT
        if work:
            core.now += work / issue
            core.stats.instructions += work
        core.stats.instructions += 1
        core.stats.mem_accesses += 1
        addr = cur.tv[pos] + core.offset
        completes = self._access(core, addr, bool(m & META_WRITE_BIT))
        latency = completes - core.now
        if latency > 4.0:
            start = core.mshr.reserve(core.now, completes)
            core.now = max(core.now, start) + 1.0 / issue
        else:
            core.now += 1.0 / issue

    def _plan(self, cur: _PackedCursor) -> None:
        """Fast-forward the core's private prefix and record the next
        yield point in ``cur.kind``.

        Applies batched L1-hit/Work stretches eagerly (they commute
        with other cores' shared events), stopping at the first access
        that can leave the L1, at the next XMemOp position, or at the
        end of the trace.
        """
        n_dense = cur.n_dense
        while True:
            pos = cur.pos
            if cur.xi < cur.n_x and cur.xmem[cur.xi][0] <= pos:
                cur.kind = _Y_XMEM
                return
            if pos >= n_dense:
                cur.kind = _Y_END
                return
            bound = cur.xmem[cur.xi][0] if cur.xi < cur.n_x else n_dense
            if not self._advance(cur, bound):
                cur.kind = _Y_MEM
                return
            # Reached the bound: loop to emit the XMemOp / END, or to
            # continue into the next inter-op window.

    def _advance(self, cur: _PackedCursor, bound: int) -> bool:
        """Consume private events up to ``bound``; True iff reached."""
        if cur.va is None:
            return self._advance_scalar(cur, bound)
        while cur.pos < bound:
            if cur.pos >= cur.cend:
                self._classify(cur)
            hi = cur.cend if cur.cend < bound else bound
            if not self._advance_scalar_snap(cur, hi):
                return False
        return True

    def _classify(self, cur: _PackedCursor) -> None:
        """Decompose the next chunk of packed columns in one pass.

        One vectorized sweep splits each position into L1 set index,
        tag, line key, work count and write flag (the loop-header
        decomposition of the vector tier), so the planner's walk needs
        no per-event address arithmetic.  Residency is *not*
        snapshotted: a chunk's own misses fill lines its later
        positions reuse, so a static residency table misclassifies
        whole miss-then-reuse groups -- the planner probes the live
        tag table instead, which can never go stale.
        """
        pos = cur.pos
        stop = pos + CHUNK
        if stop > cur.n_dense:
            stop = cur.n_dense
        cur.cbase = pos
        cur.cend = stop
        l1 = cur.core.l1
        m = cur.me[pos:stop]
        v = cur.va[pos:stop]
        ga = v + cur.core.offset
        lkey = ga >> l1._line_shift
        is_mem = (m & META_WORK_BIT) == 0
        cur.csets_l = (lkey & l1._set_mask).tolist()
        cur.ctags_l = (ga >> l1._tag_shift).tolist()
        cur.cmem_l = is_mem.tolist()
        cur.clkey_l = lkey.tolist()
        cur.cwrite_l = ((m & META_WRITE_BIT) != 0).tolist()
        # Inclusive prefix sums of the work counts and the MemAccess
        # flags: any walked range's instruction/access totals become
        # two subtractions instead of per-event accumulation.
        cur.ccum_l = (m >> META_COUNT_SHIFT).cumsum().tolist()
        cur.cmcum_l = is_mem.cumsum().tolist()

    def _advance_scalar_snap(self, cur: _PackedCursor, bound: int) -> bool:
        """Fused live-probing planner over the chunk's snapshot columns.

        Walks positions with set/tag/write pre-decomposed (no per-event
        address arithmetic), probing the *live* L1 tag table, and
        applies each hit's replacement/dirty effect inline -- the same
        per-event state writes the legacy hit path performs (LRU: one
        clock tick and a stamp; RRIP: RRPV promotion to 0; random:
        nothing), so no replay pass is needed.  Counters and model time
        for the whole run then commit in one batched step.  Probes are
        live, so snapshot staleness never matters here.  True iff
        ``bound`` reached.
        """
        core = cur.core
        l1 = core.l1
        l1_tags = l1._tags
        l1_dirty = l1._dirty
        base = cur.cbase
        cmem = cur.cmem_l
        csets = cur.csets_l
        ctags = cur.ctags_l
        cwr = cur.cwrite_l
        start = pos = cur.pos
        i = pos - base
        pol = l1.policy
        tpol = type(pol)
        if tpol is LRUPolicy:
            clock = pol._clock
            stamp = pol._stamp
            while pos < bound:
                if cmem[i]:
                    sidx = csets[i]
                    tags = l1_tags[sidx]
                    try:
                        w = tags.index(ctags[i])
                    except ValueError:
                        break
                    clock += 1
                    stamp[sidx][w] = clock
                    if cwr[i]:
                        l1_dirty[sidx][w] = True
                pos += 1
                i += 1
            pol._clock = clock
        elif tpol is RandomPolicy:
            while pos < bound:
                if cmem[i]:
                    sidx = csets[i]
                    tags = l1_tags[sidx]
                    if cwr[i]:
                        try:
                            w = tags.index(ctags[i])
                        except ValueError:
                            break
                        l1_dirty[sidx][w] = True
                    elif ctags[i] not in tags:
                        break
                pos += 1
                i += 1
        else:
            # The RRIP family: a hit promotes the line to RRPV 0.
            rrpv = pol._rrpv
            while pos < bound:
                if cmem[i]:
                    sidx = csets[i]
                    tags = l1_tags[sidx]
                    try:
                        w = tags.index(ctags[i])
                    except ValueError:
                        break
                    rrpv[sidx][w] = 0
                    if cwr[i]:
                        l1_dirty[sidx][w] = True
                pos += 1
                i += 1
        if pos > start:
            i0 = start - base
            i1 = pos - base - 1
            ccum = cur.ccum_l
            cmcum = cur.cmcum_l
            total = ccum[i1] - (ccum[i0 - 1] if i0 else 0)
            n_mem = cmcum[i1] - (cmcum[i0 - 1] if i0 else 0)
            self._commit_run(cur, start, pos, total, n_mem)
            cur.pos = pos
        return pos >= bound

    def _advance_scalar(self, cur: _PackedCursor, bound: int) -> bool:
        """Fallback planner over the raw packed columns (no numpy, or
        addresses outside the int64-safe window).

        Interprets hit events one at a time with the exact legacy
        arithmetic -- pure Python ints, so it is exact for any
        addresses -- and yields at the first probe miss.  True iff
        ``bound`` reached.
        """
        core = cur.core
        l1 = core.l1
        l1_tags = l1._tags
        ls = l1._line_shift
        sm = l1._set_mask
        ts = l1._tag_shift
        lb = self._line_bytes
        offs = core.offset
        issue = self._issue
        stats = core.stats
        tv, tm = cur.tv, cur.tm
        pos = cur.pos
        while pos < bound:
            m = tm[pos]
            if m & META_WORK_BIT:
                count = m >> META_COUNT_SHIFT
                core.now += count / issue
                stats.instructions += count
                pos += 1
                continue
            ga = tv[pos] + offs
            if (ga >> ts) not in l1_tags[(ga >> ls) & sm]:
                break
            work = m >> META_COUNT_SHIFT
            if work:
                core.now += work / issue
                stats.instructions += work
            stats.instructions += 1
            stats.mem_accesses += 1
            l1.access(ga - ga % lb, bool(m & META_WRITE_BIT))
            # L1 hit: completes - now is the 1.0 L1 latency, which
            # never exceeds the 4.0 MSHR threshold.
            core.now += 1.0 / issue
            pos += 1
        cur.pos = pos
        return pos >= bound

    def _commit_run(self, cur: _PackedCursor, begin: int, end: int,
                    total: int, n_mem: int) -> None:
        """Apply an accumulated hit run's counters and time in one step.

        Replacement and dirty state were already written inline by the
        fused walk; what remains advances by run totals -- ``now`` by
        the run's exact issue-slot sum (dyadic grid), the core and L1
        counters by batch increments.  Past the exactness ceiling --
        unreachable in practice -- model time is re-walked event by
        event with legacy rounding instead.
        """
        core = cur.core
        issue = self._issue
        add = (total + n_mem) / issue
        if core.now + add >= self._now_limit:
            self._commit_sequential(cur, begin, end, total, n_mem)
            return
        core.stats.instructions += total + n_mem
        if total:
            core.now += total / issue
        if n_mem:
            core.stats.mem_accesses += n_mem
            core.now += n_mem * (1.0 / issue)
            l1stats = core.l1.stats
            l1stats.accesses += n_mem
            l1stats.hits += n_mem

    def _commit_sequential(self, cur: _PackedCursor, begin: int,
                           end: int, total: int, n_mem: int) -> None:
        """Event-by-event time replay of a known-hit run (legacy float
        rounding beyond the dyadic-grid ceiling).  Replacement state
        was already applied by the fused walk; only ``now`` needs the
        per-event rounding, and the integer counters batch as usual."""
        core = cur.core
        issue = self._issue
        tm = cur.tm
        for pos in range(begin, end):
            m = tm[pos]
            if m & META_WORK_BIT:
                core.now += (m >> META_COUNT_SHIFT) / issue
                continue
            work = m >> META_COUNT_SHIFT
            if work:
                core.now += work / issue
            # L1 hit: completes - now is the 1.0 L1 latency, which
            # never exceeds the 4.0 MSHR threshold.
            core.now += 1.0 / issue
        core.stats.instructions += total + n_mem
        core.stats.mem_accesses += n_mem
        l1stats = core.l1.stats
        l1stats.accesses += n_mem
        l1stats.hits += n_mem

    # -- Shared memory path (both interleavers) -------------------------

    def _access(self, core: _Core, addr: int, is_write: bool) -> float:
        line = addr - addr % self._line_bytes
        now = core.now
        # Private L1.
        if core.l1.access(line, is_write).hit:
            return now + 1.0
        t = now + core.l1_lat
        # Private L2.
        if core.l2.access(line, False).hit:
            self._fill_private(core, line, is_write, l2_resident=True)
            return t + core.l2_lat
        t += core.l2_lat
        # Shared L3.
        result = self.llc.access(line, False)
        t += self.llc_lat
        if self.stride_pf is not None:
            for target in self.stride_pf.observe(line):
                self._prefetch(target, now)
        if result.hit:
            ready = self._prefetch_ready.pop(line, None)
            if ready is not None and ready > t:
                t = ready
            self._fill_private(core, line, is_write)
            return t
        core.stats.llc_misses += 1
        res = self.dram.access(line, t, is_write=False)
        self._prefetch_ready.pop(line, None)
        wb = self.llc.fill(line,
                           pinned=self.controller.pin_predicate(line))
        if wb is not None:
            self.dram.access(wb, t, is_write=True)
        if core.xmem_pf is not None:
            for target in core.xmem_pf.on_demand_miss(line):
                self._prefetch(target, now)
        self._fill_private(core, line, is_write)
        return res.completes_at

    def _fill_private(self, core: _Core, line: int, is_write: bool,
                      l2_resident: bool = False) -> None:
        # Callers establish the line's L2 state within the same
        # ``_access`` (nothing in between touches the private levels):
        # a resident merge with no flags is a no-op, and an absent
        # line can fill without the presence re-scan.  The writeback
        # ripples keep plain :meth:`Cache.fill` -- an L1 victim is
        # usually still L2-resident.
        if not l2_resident:
            wb2 = core.l2.fill_absent(line)
            if wb2 is not None:
                wb3 = self.llc.fill(wb2, dirty=True)
                if wb3 is not None:
                    self.dram.access(wb3, core.now, is_write=True)
        wb1 = core.l1.fill_absent(line, dirty=is_write)
        if wb1 is not None:
            wb2 = core.l2.fill(wb1, dirty=True)
            if wb2 is not None:
                wb3 = self.llc.fill(wb2, dirty=True)
                if wb3 is not None:
                    self.dram.access(wb3, core.now, is_write=True)

    def _prefetch(self, line: int, now: float) -> None:
        if self.llc.probe(line):
            return
        res = self.dram.access(line, now, is_write=False)
        self._prefetch_ready[line] = res.completes_at
        wb = self.llc.fill(line, prefetch=True,
                           pinned=self.controller.pin_predicate(line))
        if wb is not None:
            self.dram.access(wb, now, is_write=True)


def _coalesce(chunks: List[int], chunk_bytes: int
              ) -> List[Tuple[int, int]]:
    """Chunk indices -> coalesced (start, end) byte spans."""
    spans: List[Tuple[int, int]] = []
    for c in chunks:
        start = c * chunk_bytes
        if spans and spans[-1][1] == start:
            spans[-1] = (spans[-1][0], start + chunk_bytes)
        else:
            spans.append((start, start + chunk_bytes))
    return spans


def _prefix(spans: List[Tuple[int, int]], budget: int
            ) -> List[Tuple[int, int]]:
    """Leading ``budget`` bytes of a span list."""
    out: List[Tuple[int, int]] = []
    remaining = budget
    for s, e in spans:
        if remaining <= 0:
            break
        take = min(e - s, remaining)
        out.append((s, s + take))
        remaining -= take
    return out
