"""Multi-core co-running simulation (the Section 5.1 scenario).

Use Case 1's motivation is that the cache space *actually available* to
an application changes when other applications co-run on the shared
LLC.  This module simulates N cores, each with private L1/L2 and its
own trace, sharing the L3 and DRAM:

* cores advance in timestamp order (the core with the smallest local
  clock steps next), so shared-resource contention interleaves
  naturally;
* each application may carry its own XMem process; the shared LLC's
  pinning decision is *global* -- the paper's greedy algorithm "takes
  the active atoms in all the cores" and pins by reuse until the 75%
  budget fills;
* per-application address spaces are disjoint (each core's addresses
  are offset), so one AAM lookup per application resolves cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.xmemlib import XMemLib
from repro.cpu.trace import MemAccess, Trace, Work, XMemOp
from repro.dram.system import DramSystem
from repro.mem.cache import Cache
from repro.mem.mshr import MSHRFile
from repro.mem.prefetch import MultiStridePrefetcher, XMemPrefetcher
from repro.sim.config import SimConfig

#: Address-space stride between co-running applications.
APP_SPACE = 1 << 40


@dataclass
class CoreStats:
    """Per-core results."""

    cycles: float = 0.0
    instructions: int = 0
    mem_accesses: int = 0
    llc_misses: int = 0


class _Core:
    """Private state of one core."""

    def __init__(self, index: int, config: SimConfig,
                 xmemlib: Optional[XMemLib]) -> None:
        self.index = index
        self.offset = index * APP_SPACE
        l1, l2 = config.levels[0], config.levels[1]
        self.l1 = Cache(f"c{index}.L1", l1.size_bytes, l1.ways,
                        config.line_bytes, policy=l1.policy)
        self.l2 = Cache(f"c{index}.L2", l2.size_bytes, l2.ways,
                        config.line_bytes, policy=l2.policy)
        self.l1_lat = l1.latency
        self.l2_lat = l2.latency
        self.xmemlib = xmemlib
        self.now = 0.0
        self.mshr = MSHRFile(config.cpu.window)
        self.stats = CoreStats()
        self.trace: Optional[Iterator] = None
        self.done = False


class MultiProcessController:
    """The global greedy pinning decision over every app's atoms.

    Mirrors :class:`repro.policies.cache_mgmt.CacheController` but
    walks the active atoms of *all* registered XMem processes, sorted
    together by reuse, against one shared 75% budget.  Addresses are
    per-application physical (offset), so pin lookups dispatch to the
    owning application's AMU.
    """

    def __init__(self, llc: Cache, pin_fraction: float = 0.75) -> None:
        self.llc = llc
        self.pin_fraction = pin_fraction
        self._apps: List[Tuple[int, XMemLib]] = []
        self._pin_spans: Dict[int, List[Tuple[int, int]]] = {}
        self.prefetchers: Dict[int, XMemPrefetcher] = {}

    def register(self, offset: int, xmemlib: XMemLib,
                 prefetcher: Optional[XMemPrefetcher] = None) -> None:
        """Attach one application (by its address-space offset)."""
        self._apps.append((offset, xmemlib))
        if prefetcher is not None:
            self.prefetchers[offset] = prefetcher
        xmemlib.listeners.append(self.refresh)
        self.refresh()

    def refresh(self) -> None:
        """Recompute the global pinning decision."""
        budget = int(self.llc.size_bytes * self.pin_fraction)
        entries = []
        for offset, lib in self._apps:
            for atom in lib.process.active_atoms():
                if atom.reuse > 0:
                    entries.append((atom.reuse, offset, lib, atom))
        entries.sort(key=lambda e: e[0], reverse=True)
        spans: Dict[int, List[Tuple[int, int]]] = {}
        arm: Dict[int, Dict] = {o: {} for o, _ in self._apps}
        for reuse, offset, lib, atom in entries:
            if budget <= 0:
                break
            aam = lib.process.amu.aam
            chunk = aam.config.chunk_bytes
            atom_spans = _coalesce(sorted(aam.mapped_chunks(atom.atom_id)),
                                   chunk)
            size = sum(e - s for s, e in atom_spans)
            take = min(size, budget)
            if take < chunk:
                continue
            taken = _prefix(atom_spans, take)
            spans.setdefault(offset, []).extend(
                (s + offset, e + offset) for s, e in taken
            )
            budget -= take
            if take < size and offset in self.prefetchers:
                from repro.core.pat import translate_for_prefetcher
                attrs = lib.process.gat.get(atom.atom_id)
                if attrs is not None:
                    arm[offset][atom.atom_id] = XMemPrefetcher.entry(
                        translate_for_prefetcher(attrs), atom_spans)
        if spans != self._pin_spans:
            self.llc.unpin_all()
            self._pin_spans = spans
        for offset, pf in self.prefetchers.items():
            pf.set_pinned_atoms(arm.get(offset, {}))

    def pin_predicate(self, global_addr: int) -> bool:
        """Whether a (global) line address belongs to a pinned atom."""
        offset = (global_addr // APP_SPACE) * APP_SPACE
        spans = self._pin_spans.get(offset)
        if not spans:
            return False
        return any(s <= global_addr < e for s, e in spans)


class CorunSystem:
    """N cores over a shared LLC + DRAM."""

    def __init__(self, config: SimConfig, n_cores: int,
                 xmem_cores: Sequence[int] = ()) -> None:
        if n_cores <= 0:
            raise ConfigurationError(f"need at least one core: {n_cores}")
        if len(config.levels) != 3:
            raise ConfigurationError("corun expects an L1/L2/L3 config")
        self.config = config
        l3 = config.levels[2]
        self.llc = Cache("sharedL3", l3.size_bytes, l3.ways,
                         config.line_bytes, policy=l3.policy)
        self.llc_lat = l3.latency
        self.dram = DramSystem(geometry=config.dram_geometry,
                               timing=config.timing(),
                               mapping=config.dram_mapping)
        self.stride_pf = MultiStridePrefetcher(
            streams=config.prefetcher.streams,
            degree=config.prefetcher.degree,
            line_bytes=config.line_bytes,
        ) if config.prefetcher.enabled else None
        self.controller = MultiProcessController(self.llc)
        self.cores: List[_Core] = []
        for i in range(n_cores):
            lib = XMemLib() if i in xmem_cores else None
            core = _Core(i, config, lib)
            self.cores.append(core)
            if lib is not None:
                pf = XMemPrefetcher(
                    lookup_atom=self._app_lookup(core.offset, lib),
                    line_bytes=config.line_bytes,
                )
                core.xmem_pf = pf
                self.controller.register(core.offset, lib, pf)
            else:
                core.xmem_pf = None
        self._prefetch_ready: Dict[int, float] = {}

    @staticmethod
    def _app_lookup(offset: int, lib: XMemLib):
        def lookup(global_addr: int):
            return lib.process.amu.lookup(global_addr - offset)
        return lookup

    # -- Running --------------------------------------------------------

    def run(self, traces: Sequence[Trace]) -> List[CoreStats]:
        """Interleave one trace per core until all complete."""
        if len(traces) != len(self.cores):
            raise ConfigurationError(
                f"{len(self.cores)} cores need {len(self.cores)} traces"
            )
        for core, trace in zip(self.cores, traces):
            core.trace = iter(trace)
            core.done = False
        pending = set(range(len(self.cores)))
        while pending:
            core = min((self.cores[i] for i in pending),
                       key=lambda c: c.now)
            if not self._step(core):
                tail = core.mshr.latest_completion()
                if tail is not None and tail > core.now:
                    core.now = tail
                core.mshr.flush()
                core.stats.cycles = core.now
                core.done = True
                pending.discard(core.index)
        return [c.stats for c in self.cores]

    def _step(self, core: _Core) -> bool:
        try:
            ev = next(core.trace)
        except StopIteration:
            return False
        issue = self.config.cpu.issue_width
        if type(ev) is MemAccess:
            if ev.work:
                core.now += ev.work / issue
                core.stats.instructions += ev.work
            core.stats.instructions += 1
            core.stats.mem_accesses += 1
            completes = self._access(core, ev.vaddr + core.offset,
                                     ev.is_write)
            latency = completes - core.now
            if latency > 4.0:
                start = core.mshr.reserve(core.now, completes)
                core.now = max(core.now, start) + 1.0 / issue
            else:
                core.now += 1.0 / issue
        elif type(ev) is Work:
            core.now += ev.count / issue
            core.stats.instructions += ev.count
        elif type(ev) is XMemOp:
            core.stats.instructions += 1
            core.now += 1.0 / issue
            if core.xmemlib is not None:
                getattr(core.xmemlib, ev.method)(*ev.args)
        else:
            raise TypeError(f"not a trace event: {ev!r}")
        return True

    def _access(self, core: _Core, addr: int, is_write: bool) -> float:
        line = addr - addr % self.config.line_bytes
        now = core.now
        # Private L1.
        if core.l1.access(line, is_write).hit:
            return now + 1.0
        t = now + core.l1_lat
        # Private L2.
        if core.l2.access(line, False).hit:
            self._fill_private(core, line, is_write)
            return t + core.l2_lat
        t += core.l2_lat
        # Shared L3.
        result = self.llc.access(line, False)
        t += self.llc_lat
        if self.stride_pf is not None:
            for target in self.stride_pf.observe(line):
                self._prefetch(target, now)
        if result.hit:
            ready = self._prefetch_ready.pop(line, None)
            if ready is not None and ready > t:
                t = ready
            self._fill_private(core, line, is_write)
            return t
        core.stats.llc_misses += 1
        res = self.dram.access(line, t, is_write=False)
        self._prefetch_ready.pop(line, None)
        wb = self.llc.fill(line,
                           pinned=self.controller.pin_predicate(line))
        if wb is not None:
            self.dram.access(wb, t, is_write=True)
        if core.xmem_pf is not None:
            for target in core.xmem_pf.on_demand_miss(line):
                self._prefetch(target, now)
        self._fill_private(core, line, is_write)
        return res.completes_at

    def _fill_private(self, core: _Core, line: int,
                      is_write: bool) -> None:
        wb2 = core.l2.fill(line)
        if wb2 is not None:
            wb3 = self.llc.fill(wb2, dirty=True)
            if wb3 is not None:
                self.dram.access(wb3, core.now, is_write=True)
        wb1 = core.l1.fill(line, dirty=is_write)
        if wb1 is not None:
            wb2 = core.l2.fill(wb1, dirty=True)
            if wb2 is not None:
                wb3 = self.llc.fill(wb2, dirty=True)
                if wb3 is not None:
                    self.dram.access(wb3, core.now, is_write=True)

    def _prefetch(self, line: int, now: float) -> None:
        if self.llc.probe(line):
            return
        res = self.dram.access(line, now, is_write=False)
        self._prefetch_ready[line] = res.completes_at
        wb = self.llc.fill(line, prefetch=True,
                           pinned=self.controller.pin_predicate(line))
        if wb is not None:
            self.dram.access(wb, now, is_write=True)


def _coalesce(chunks: List[int], chunk_bytes: int
              ) -> List[Tuple[int, int]]:
    """Chunk indices -> coalesced (start, end) byte spans."""
    spans: List[Tuple[int, int]] = []
    for c in chunks:
        start = c * chunk_bytes
        if spans and spans[-1][1] == start:
            spans[-1] = (spans[-1][0], start + chunk_bytes)
        else:
            spans.append((start, start + chunk_bytes))
    return spans


def _prefix(spans: List[Tuple[int, int]], budget: int
            ) -> List[Tuple[int, int]]:
    """Leading ``budget`` bytes of a span list."""
    out: List[Tuple[int, int]] = []
    remaining = budget
    for s, e in spans:
        if remaining <= 0:
            break
        take = min(e - s, remaining)
        out.append((s, s + take))
        remaining -= take
    return out
