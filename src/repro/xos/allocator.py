"""Page-frame allocation policies.

Which frame backs a freshly touched page determines its DRAM bank.
Three policies:

* :class:`SequentialAllocator` -- lowest free frame first (Buddy-like
  contiguity, the unstrengthened default).
* :class:`RandomizedAllocator` -- random free frame.  The paper
  strengthens its baseline with randomized virtual-to-physical mapping,
  "shown to perform better than the Buddy algorithm [23]" (Section
  6.3).
* :class:`BankTargetAllocator` -- the XMem policy's workhorse: draws
  frames from an assigned set of banks (falling back to any frame when
  the banks are exhausted), so a data structure lands where the
  Section 6.2 algorithm decided.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.xos.phys import BankKey, FramePool


class FrameAllocator:
    """Interface: pick a frame for (process, atom) context."""

    name = "abstract"

    def __init__(self, pool: FramePool) -> None:
        self.pool = pool

    def allocate(self, atom_id: Optional[int] = None) -> int:
        raise NotImplementedError


class SequentialAllocator(FrameAllocator):
    """Lowest-numbered free frame (contiguous, Buddy-like)."""

    name = "sequential"

    def allocate(self, atom_id: Optional[int] = None) -> int:
        return self.pool.alloc_any(randomize=False)


class RandomizedAllocator(FrameAllocator):
    """Uniformly random free frame (the strengthened baseline [23])."""

    name = "randomized"

    def allocate(self, atom_id: Optional[int] = None) -> int:
        return self.pool.alloc_any(randomize=True)


class BankTargetAllocator(FrameAllocator):
    """Frames drawn from per-atom bank assignments (Use Case 2).

    ``assignments`` maps atom IDs to the banks chosen by the placement
    algorithm.  Pages of unassigned atoms (or plain data) fall back to
    the ``fallback`` policy over the whole pool.
    """

    name = "bank_target"

    def __init__(self, pool: FramePool,
                 assignments: Optional[Dict[int, Sequence[BankKey]]] = None,
                 randomize_within_banks: bool = True) -> None:
        super().__init__(pool)
        self.assignments: Dict[int, Sequence[BankKey]] = dict(
            assignments or {}
        )
        self.randomize_within_banks = randomize_within_banks
        self.fallbacks = 0

    def assign(self, atom_id: int, banks: Sequence[BankKey]) -> None:
        """Record/replace the bank set for one atom."""
        self.assignments[atom_id] = list(banks)

    def allocate(self, atom_id: Optional[int] = None) -> int:
        banks = self.assignments.get(atom_id) if atom_id is not None \
            else None
        if banks:
            frame = self.pool.alloc_in_banks(
                banks, randomize=self.randomize_within_banks
            )
            if frame is not None:
                return frame
        self.fallbacks += 1
        return self.pool.alloc_any(randomize=True)


ALLOCATORS = {
    cls.name: cls
    for cls in (SequentialAllocator, RandomizedAllocator,
                BankTargetAllocator)
}
