"""Use Case 2: data placement in DRAM (Section 6.2).

The OS takes the attributes of every atom (from the atom segment /
GAT), translates them to DRAM primitives (high-RBL? irregular? how
hot?), and decides which banks each data structure's pages should be
drawn from:

1. **Isolate** data structures with high row-buffer locality in
   dedicated banks -- but only those hot enough that dedicating a bank
   to them does not reduce overall memory-level parallelism, and not
   write-heavy ones (their writeback stream would fight their own
   reads inside a small bank set);
2. **Spread** every other data structure across all the unallocated
   banks to maximize MLP.

Placement can only steer pages, and under channel-interleaved
controller mappings a page spans a *group* of banks; the algorithm
therefore allocates whole isolation groups (see
:meth:`repro.xos.phys.FramePool.bank_groups`).  With a page-per-bank
mapping every group is a single bank and the behaviour reduces to the
paper's description.

The output feeds :class:`repro.xos.allocator.BankTargetAllocator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.attributes import AtomAttributes
from repro.core.pat import DramPrimitives, translate_for_dram
from repro.xos.phys import BankKey

#: An atom must carry at least this share of the total access intensity
#: before a bank is dedicated to it (the MLP guard of Section 6.2).
MIN_INTENSITY_SHARE = 0.10

#: At most this fraction of all banks may be dedicated to isolated
#: structures; the rest stay in the spread pool for MLP.
MAX_ISOLATION_FRACTION = 0.5


@dataclass
class PlacementDecision:
    """The bank map the algorithm produces."""

    #: atom id -> dedicated banks (high-RBL isolated structures).
    isolated: Dict[int, List[BankKey]] = field(default_factory=dict)
    #: banks shared by everything else.
    spread_banks: List[BankKey] = field(default_factory=list)

    def banks_for(self, atom_id: Optional[int]) -> List[BankKey]:
        """The banks the given atom's pages should come from."""
        if atom_id is not None and atom_id in self.isolated:
            return self.isolated[atom_id]
        return self.spread_banks

    def as_assignments(self, atom_ids: Sequence[int]
                       ) -> Dict[int, List[BankKey]]:
        """Expand into the allocator's atom -> banks table."""
        return {a: self.banks_for(a) for a in atom_ids}


def _interleave_channels(banks: Sequence[BankKey]) -> List[BankKey]:
    """Order banks so consecutive picks alternate channels (MLP)."""
    return sorted(banks, key=lambda b: (b[2], b[1], b[0]))


def _unit_key(unit: FrozenSet[BankKey]) -> Tuple:
    """Stable ordering for isolation units (by bank index first)."""
    return tuple(sorted((b[2], b[1], b[0]) for b in unit))


def plan_placement(
    atoms: Dict[int, Tuple[AtomAttributes, int]],
    all_banks: Sequence[BankKey],
    groups: Optional[Sequence[FrozenSet[BankKey]]] = None,
    min_intensity_share: float = MIN_INTENSITY_SHARE,
    max_isolation_fraction: float = MAX_ISOLATION_FRACTION,
) -> PlacementDecision:
    """Run the Section 6.2 algorithm.

    ``atoms`` maps atom id -> (attributes, footprint bytes).  ``groups``
    are the page-placement units of the controller mapping (defaults to
    one bank per unit).
    """
    banks = list(all_banks)
    units: List[FrozenSet[BankKey]] = sorted(
        (groups if groups is not None
         else [frozenset({b}) for b in banks]),
        key=_unit_key,
    )
    prims: Dict[int, DramPrimitives] = {
        a: translate_for_dram(attrs) for a, (attrs, _) in atoms.items()
    }
    total_intensity = sum(p.intensity for p in prims.values()) or 1

    # Step 1: pick the isolation candidates -- high RBL, hot enough,
    # and not write-heavy.
    candidates = sorted(
        (a for a, p in prims.items()
         if p.high_rbl
         and not p.write_heavy
         and p.intensity / total_intensity >= min_intensity_share),
        key=lambda a: prims[a].intensity,
        reverse=True,
    )

    decision = PlacementDecision()
    budget = int(len(banks) * max_isolation_fraction)
    if candidates and budget > 0:
        remaining_banks = budget
        pool = list(units)
        for position, atom_id in enumerate(candidates):
            if remaining_banks <= 0 or not pool:
                break
            # Banks proportional to the atom's share of the *total*
            # access intensity; leave at least one unit for every
            # candidate still waiting.
            share = prims[atom_id].intensity / total_intensity
            still_waiting = len(candidates) - position - 1
            unit_size = len(pool[0])
            reserve = still_waiting * unit_size
            cap = max(unit_size, remaining_banks - reserve)
            want = max(1, min(cap, round(len(all_banks) * share)))
            chosen: List[BankKey] = []
            while pool and len(chosen) < want:
                unit = pool.pop(0)
                chosen.extend(sorted(unit))
            decision.isolated[atom_id] = _interleave_channels(chosen)
            remaining_banks -= len(chosen)

    # Step 2: everything else spreads across the unallocated banks.
    taken = {b for chosen in decision.isolated.values() for b in chosen}
    decision.spread_banks = [b for b in _interleave_channels(all_banks)
                             if b not in taken]
    if not decision.spread_banks:
        # Degenerate configuration: never leave the spread pool empty.
        decision.spread_banks = _interleave_channels(all_banks)
    return decision


def plan_from_gat(gat, footprints: Dict[int, int],
                  all_banks: Sequence[BankKey],
                  groups: Optional[Sequence[FrozenSet[BankKey]]] = None,
                  **kw) -> PlacementDecision:
    """Convenience: plan placement straight from a process's GAT."""
    atoms = {atom_id: (attrs, footprints.get(atom_id, 0))
             for atom_id, attrs in gat}
    return plan_placement(atoms, all_banks, groups=groups, **kw)
