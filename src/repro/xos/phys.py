"""Physical memory: the frame pool, organized by DRAM bank.

The OS's lever for Use Case 2 is the virtual-to-physical mapping: by
choosing *which frame* backs a page, it chooses which DRAM bank(s) the
page's data lives in.  The frame pool therefore indexes free frames by
the bank they decompose to under the memory controller's address
mapping.

Bank sets are computed lazily: frames are scanned (decomposed at the
interleave granularity) only as allocations demand them, so building a
pool over a multi-GB capacity is cheap.

Frames that span multiple banks (possible under channel- or
bank-interleaved mapping schemes with interleave granularity smaller
than a page) are indexed under every bank they touch.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.errors import AllocationError, ConfigurationError
from repro.dram.mapping import AddressMapping, DramGeometry

#: Conventional page size.
PAGE_BYTES = 4096

#: Interleave granularity: mapping schemes rotate fields no finer than
#: the col_low group (8 lines = 512 B), so sampling a frame at this
#: step finds every bank it touches.
SCAN_STEP_BYTES = 512

BankKey = Tuple[int, int, int]


class FramePool:
    """All physical frames of the machine, with per-bank free lists."""

    def __init__(self, geometry: DramGeometry, mapping: AddressMapping,
                 page_bytes: int = PAGE_BYTES, seed: int = 0) -> None:
        if page_bytes <= 0 or page_bytes % geometry.line_bytes:
            raise ConfigurationError(
                f"page size {page_bytes} must be a positive multiple of "
                f"the line size"
            )
        self.geometry = geometry
        self.mapping = mapping
        self.page_bytes = page_bytes
        self.num_frames = geometry.capacity_bytes // page_bytes
        self._rng = random.Random(seed)
        self._free: Set[int] = set(range(self.num_frames))
        self._banks_of: Dict[int, FrozenSet[BankKey]] = {}
        self._free_by_bank: Dict[BankKey, Set[int]] = defaultdict(set)
        self._seq_next = 0

    # -- Lazy bank discovery ---------------------------------------------------

    def frame_banks(self, frame: int) -> FrozenSet[BankKey]:
        """The banks frame ``frame`` touches under the controller map."""
        banks = self._banks_of.get(frame)
        if banks is None:
            base = frame * self.page_bytes
            step = min(SCAN_STEP_BYTES, self.page_bytes)
            banks = frozenset(
                self.mapping.decompose(base + off).bank_key
                for off in range(0, self.page_bytes, step)
            )
            self._banks_of[frame] = banks
            if frame in self._free:
                for bank in banks:
                    self._free_by_bank[bank].add(frame)
        return banks

    # -- Queries ------------------------------------------------------------

    @property
    def free_frames(self) -> int:
        """Number of currently unallocated frames."""
        return len(self._free)

    def free_in_bank(self, bank: BankKey) -> int:
        """Free *indexed* frames touching ``bank`` (lazy lower bound)."""
        return len(self._free_by_bank.get(bank, ()))

    @property
    def all_banks(self) -> List[BankKey]:
        """Every bank key of the machine, in a stable order."""
        g = self.geometry
        return [(c, r, b)
                for c in range(g.channels)
                for r in range(g.ranks_per_channel)
                for b in range(g.banks_per_rank)]

    def bank_groups(self, sample: int = 1024) -> List[FrozenSet[BankKey]]:
        """Partition banks into minimal page-placement units.

        Under channel- or bank-interleaved mappings a single frame can
        span several banks; placement can then only steer data at the
        granularity of the *group* of banks that co-occur within
        frames.  Computed by union-find over a sample of frames spread
        across the whole capacity.
        """
        parent: Dict[BankKey, BankKey] = {b: b for b in self.all_banks}

        def find(b: BankKey) -> BankKey:
            while parent[b] != b:
                parent[b] = parent[parent[b]]
                b = parent[b]
            return b

        def union(a: BankKey, b: BankKey) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        step = max(1, self.num_frames // sample)
        for frame in range(0, self.num_frames, step):
            banks = list(self.frame_banks(frame))
            for other in banks[1:]:
                union(banks[0], other)
        groups: Dict[BankKey, Set[BankKey]] = {}
        for b in self.all_banks:
            groups.setdefault(find(b), set()).add(b)
        return sorted((frozenset(g) for g in groups.values()),
                      key=lambda g: sorted(g))

    # -- Allocation -------------------------------------------------------------

    def alloc_any(self, randomize: bool = False) -> int:
        """Allocate an arbitrary frame (lowest-numbered, or random)."""
        if not self._free:
            raise AllocationError("out of physical frames")
        if randomize:
            # Probe random frame numbers instead of materializing the
            # (large) free set; falls back to an arbitrary free frame.
            frame = None
            for _ in range(64):
                probe = self._rng.randrange(self.num_frames)
                if probe in self._free:
                    frame = probe
                    break
            if frame is None:
                frame = next(iter(self._free))
        else:
            frame = self._lowest_free()
        self._take(frame)
        return frame

    def _lowest_free(self) -> int:
        """The lowest free frame, tracked by a rising watermark."""
        while (self._seq_next < self.num_frames
               and self._seq_next not in self._free):
            self._seq_next += 1
        if self._seq_next < self.num_frames:
            return self._seq_next
        return min(self._free)  # only frees below the watermark remain

    #: Random probes attempted before falling back to a linear scan.
    PROBE_ATTEMPTS = 512

    def alloc_in_banks(self, banks: Sequence[BankKey],
                       randomize: bool = False) -> Optional[int]:
        """Allocate a frame confined to ``banks``; None if impossible.

        Prefers frames *entirely* inside the bank set (so the placement
        decision is not diluted); falls back to frames merely touching
        it.  The randomized path probes uniformly over the whole
        capacity, so allocations stay spread across the machine even
        when the controller mapping places whole channels in distinct
        halves of the physical address space.
        """
        bankset = set(banks)
        if randomize:
            for _ in range(self.PROBE_ATTEMPTS):
                frame = self._rng.randrange(self.num_frames)
                if frame in self._free and \
                        self.frame_banks(frame) <= bankset:
                    self._take(frame)
                    return frame
        # Deterministic (or post-probe) path: full lazy scan for a pure
        # frame, then for any frame touching the set.
        pure = impure = None
        for frame in range(self.num_frames):
            if frame not in self._free:
                continue
            fb = self.frame_banks(frame)
            if fb <= bankset:
                pure = frame
                break
            if impure is None and fb & bankset:
                impure = frame
        frame = pure if pure is not None else impure
        if frame is None:
            return None
        self._take(frame)
        return frame

    def _take(self, frame: int) -> None:
        self.frame_banks(frame)  # ensure indexed
        self._free.discard(frame)
        for bank in self._banks_of[frame]:
            self._free_by_bank[bank].discard(frame)

    def free(self, frame: int) -> None:
        """Return a frame to the pool."""
        if not 0 <= frame < self.num_frames:
            raise AllocationError(f"bogus frame {frame}")
        if frame in self._free:
            raise AllocationError(f"double free of frame {frame}")
        self._free.add(frame)
        for bank in self._banks_of.get(frame, ()):
            self._free_by_bank[bank].add(frame)
