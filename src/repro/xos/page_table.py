"""Per-process page table: the virtual-to-physical mapping.

Besides ``translate`` (one address), the table offers
``translate_range``, which splits a virtual range into the physical
ranges backing it -- the MMU service the AMU uses when executing
``ATOM_MAP`` (Section 4.1.3).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.errors import TranslationError
from repro.core.ranges import AddressRange


class PageTable:
    """A flat vpage -> pframe map (the model of a radix page table)."""

    def __init__(self, page_bytes: int = 4096) -> None:
        self.page_bytes = page_bytes
        self._map: Dict[int, int] = {}

    def map_page(self, vpage: int, pframe: int) -> None:
        """Install a translation (overwrites an existing one)."""
        self._map[vpage] = pframe

    def unmap_page(self, vpage: int) -> Optional[int]:
        """Remove a translation; returns the frame it held, if any."""
        return self._map.pop(vpage, None)

    def frame_of(self, vpage: int) -> Optional[int]:
        """The frame backing ``vpage``, or None."""
        return self._map.get(vpage)

    def is_mapped(self, vaddr: int) -> bool:
        """Whether ``vaddr`` has a translation."""
        return (vaddr // self.page_bytes) in self._map

    def translate(self, vaddr: int) -> int:
        """VA -> PA; raises :class:`TranslationError` when unmapped."""
        frame = self._map.get(vaddr // self.page_bytes)
        if frame is None:
            raise TranslationError(vaddr)
        return frame * self.page_bytes + (vaddr % self.page_bytes)

    def translate_range(self, rng: AddressRange
                        ) -> Tuple[AddressRange, ...]:
        """Split a VA range into the PA ranges backing it.

        Unmapped pages inside the range raise; the AMU treats that as a
        skip (hints never fault the program).
        """
        return tuple(self._iter_pa_ranges(rng))

    def _iter_pa_ranges(self, rng: AddressRange) -> Iterator[AddressRange]:
        if rng.size == 0:
            return
        page = self.page_bytes
        va = rng.start
        run_start: Optional[int] = None
        run_end = 0
        while va < rng.end:
            page_end = min((va // page + 1) * page, rng.end)
            pa = self.translate(va)
            size = page_end - va
            if run_start is not None and pa == run_end:
                run_end += size
            else:
                if run_start is not None:
                    yield AddressRange(run_start, run_end)
                run_start = pa
                run_end = pa + size
            va = page_end
        if run_start is not None:
            yield AddressRange(run_start, run_end)

    @property
    def mapped_pages(self) -> int:
        """Number of live translations."""
        return len(self._map)

    def items(self) -> Iterator[Tuple[int, int]]:
        """(vpage, pframe) pairs, sorted by vpage."""
        return iter(sorted(self._map.items()))
