"""The user-level memory allocator, atom-aware (Section 4.1.2).

The paper augments ``malloc`` with an Atom ID parameter::

    A = malloc(size, atomID); AtomMap(atomID, A, size);

so the OS knows the atom of a virtual range *before* virtual pages are
mapped to physical pages and can place them intelligently.  This module
provides that allocator: a bump allocator over the process's virtual
address space that

* reserves page-aligned VA ranges,
* records the static VA-range -> atom mapping for the OS to query, and
* eagerly asks the OS for physical frames chosen by the active frame-
  allocation policy (passing the Atom ID down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.errors import AllocationError
from repro.core.ranges import AddressRange

#: Base of the simulated heap.
HEAP_BASE = 0x1000_0000


@dataclass(frozen=True)
class Allocation:
    """One live heap allocation."""

    va_range: AddressRange
    atom_id: Optional[int]

    @property
    def start(self) -> int:
        """Base virtual address."""
        return self.va_range.start

    @property
    def size(self) -> int:
        """Requested (page-rounded) size."""
        return self.va_range.size


class HeapAllocator:
    """Page-granular bump allocator with atom bookkeeping.

    ``back_page`` is the OS hook called once per fresh page with
    ``(vpage, atom_id)``; it allocates a frame under the active policy
    and installs the translation.
    """

    def __init__(self, back_page: Callable[[int, Optional[int]], None],
                 page_bytes: int = 4096, base: int = HEAP_BASE) -> None:
        self.page_bytes = page_bytes
        self._brk = base
        self._back_page = back_page
        self._live: Dict[int, Allocation] = {}
        #: Static VA-range -> atom records, in allocation order (the
        #: mapping the OS may query, Section 4.1.2).
        self.static_atom_map: List[Allocation] = []

    def malloc(self, size: int, atom_id: Optional[int] = None) -> int:
        """Allocate ``size`` bytes; returns the base virtual address."""
        if size <= 0:
            raise AllocationError(f"malloc size must be > 0, got {size}")
        page = self.page_bytes
        rounded = (size + page - 1) // page * page
        base = self._brk
        self._brk += rounded
        alloc = Allocation(AddressRange.from_size(base, rounded), atom_id)
        self._live[base] = alloc
        if atom_id is not None:
            self.static_atom_map.append(alloc)
        for vpage in range(base // page, (base + rounded) // page):
            self._back_page(vpage, atom_id)
        return base

    def free(self, va: int) -> Allocation:
        """Release an allocation (bookkeeping only; VA is not reused)."""
        try:
            return self._live.pop(va)
        except KeyError:
            raise AllocationError(f"free of unallocated address {va:#x}"
                                  ) from None

    def allocation_at(self, va: int) -> Optional[Allocation]:
        """The live allocation containing ``va``, if any."""
        for alloc in self._live.values():
            if va in alloc.va_range:
                return alloc
        return None

    def atom_of_range(self, va: int) -> Optional[int]:
        """The statically recorded atom for a VA (the OS query)."""
        alloc = self.allocation_at(va)
        return alloc.atom_id if alloc else None

    @property
    def live_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(a.size for a in self._live.values())
