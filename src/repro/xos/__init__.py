"""OS substrate: physical memory, page tables, allocators, placement."""

from repro.xos.allocator import (
    ALLOCATORS,
    BankTargetAllocator,
    FrameAllocator,
    RandomizedAllocator,
    SequentialAllocator,
)
from repro.xos.loader import OperatingSystem, Process
from repro.xos.page_table import PageTable
from repro.xos.phys import BankKey, FramePool, PAGE_BYTES
from repro.xos.placement import (
    MAX_ISOLATION_FRACTION,
    MIN_INTENSITY_SHARE,
    PlacementDecision,
    plan_from_gat,
    plan_placement,
)
from repro.xos.numa import (
    NumaCandidate,
    NumaMachine,
    NumaTrafficModel,
    REPLICATED,
    first_touch_numa,
    plan_numa_placement,
)
from repro.xos.virt import GuestProcess, Hypervisor, VirtualMachine
from repro.xos.vmalloc import Allocation, HeapAllocator, HEAP_BASE

__all__ = [
    "ALLOCATORS",
    "Allocation",
    "BankKey",
    "BankTargetAllocator",
    "FrameAllocator",
    "FramePool",
    "GuestProcess",
    "Hypervisor",
    "NumaCandidate",
    "NumaMachine",
    "NumaTrafficModel",
    "REPLICATED",
    "VirtualMachine",
    "first_touch_numa",
    "plan_numa_placement",
    "HEAP_BASE",
    "HeapAllocator",
    "MAX_ISOLATION_FRACTION",
    "MIN_INTENSITY_SHARE",
    "OperatingSystem",
    "PAGE_BYTES",
    "PageTable",
    "PlacementDecision",
    "Process",
    "RandomizedAllocator",
    "SequentialAllocator",
    "plan_from_gat",
    "plan_placement",
]
