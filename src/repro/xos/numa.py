"""NUMA data placement from atom semantics (Table 1, row 7).

On a multi-socket machine, a page served from the local node is much
cheaper than from a remote one.  Without semantics, the OS profiles or
migrates reactively; with XMem the application expresses (i) *which
threads access which data* (data partitioning) and (ii) *read-write
characteristics*, enabling two static decisions the paper lists:

* co-locate each partition with the thread that accesses it;
* replicate READ-ONLY data on every node that reads it (replication is
  only safe because the data is known not to be written).

The model: ``NumaMachine`` with N nodes and local/remote latencies;
``plan_numa_placement`` consumes per-atom affinity + RWChar and emits
a node assignment (possibly "replicated"); ``NumaTrafficModel``
evaluates average access latency for a given access matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.core.attributes import AtomAttributes, RWChar
from repro.core.errors import ConfigurationError

#: Marker node id for replicated (per-node copy) placement.
REPLICATED = -1


@dataclass(frozen=True)
class NumaMachine:
    """Node count and the local/remote latency split."""

    nodes: int = 2
    local_latency: float = 90.0
    remote_latency: float = 220.0

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError("need at least one node")
        if self.remote_latency < self.local_latency:
            raise ConfigurationError(
                "remote access cannot be cheaper than local"
            )


@dataclass(frozen=True)
class NumaCandidate:
    """One data structure with its thread-affinity semantics.

    ``accesses_by_node`` is the expressed (or profiled) share of
    accesses issued from each node's threads.
    """

    atom_id: int
    attributes: AtomAttributes
    accesses_by_node: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.accesses_by_node or \
                any(a < 0 for a in self.accesses_by_node):
            raise ConfigurationError("bad access distribution")

    @property
    def dominant_node(self) -> int:
        """The node issuing the most accesses."""
        return max(range(len(self.accesses_by_node)),
                   key=lambda n: self.accesses_by_node[n])

    @property
    def shared(self) -> bool:
        """True when no node owns a 2/3 majority of the accesses."""
        total = sum(self.accesses_by_node) or 1.0
        return max(self.accesses_by_node) / total < (2 / 3)


def plan_numa_placement(candidates: Sequence[NumaCandidate],
                        machine: NumaMachine) -> Dict[int, int]:
    """atom id -> node id (or REPLICATED).

    Rules (Table 1 row 7): private data co-locates with its dominant
    node; shared READ-ONLY data replicates; shared writable data goes
    to its dominant node (replication would need coherence).
    """
    out: Dict[int, int] = {}
    for cand in candidates:
        if len(cand.accesses_by_node) != machine.nodes:
            raise ConfigurationError(
                f"atom {cand.atom_id}: distribution has "
                f"{len(cand.accesses_by_node)} nodes, machine has "
                f"{machine.nodes}"
            )
        if cand.shared and cand.attributes.access.rw is RWChar.READ_ONLY:
            out[cand.atom_id] = REPLICATED
        else:
            out[cand.atom_id] = cand.dominant_node
    return out


def first_touch_numa(candidates: Sequence[NumaCandidate],
                     machine: NumaMachine,
                     touching_node: int = 0) -> Dict[int, int]:
    """The no-semantics baseline: everything lands where the
    initializing thread first touched it (commonly node 0)."""
    return {c.atom_id: touching_node for c in candidates}


class NumaTrafficModel:
    """Average access latency under a placement."""

    def __init__(self, machine: NumaMachine) -> None:
        self.machine = machine

    def atom_latency(self, cand: NumaCandidate, node: int) -> float:
        """Mean latency for one atom given its home node."""
        total = sum(cand.accesses_by_node) or 1.0
        m = self.machine
        if node == REPLICATED:
            # Every reader hits its local copy.
            return m.local_latency
        local_share = cand.accesses_by_node[node] / total
        return (local_share * m.local_latency
                + (1 - local_share) * m.remote_latency)

    def mean_latency(self, candidates: Sequence[NumaCandidate],
                     placement: Mapping[int, int]) -> float:
        """Access-weighted mean latency over all atoms."""
        weighted = 0.0
        weight = 0.0
        for cand in candidates:
            w = sum(cand.accesses_by_node)
            weighted += w * self.atom_latency(
                cand, placement[cand.atom_id])
            weight += w
        return weighted / weight if weight else 0.0
