"""XMem in virtualized environments (Section 4.3).

A guest OS runs processes over *guest-physical* memory that the
hypervisor backs with *host-physical* frames -- two levels of
translation.  Section 4.3 argues XMem needs **no changes** to work
here:

* the AAM is indexed by **host** physical address, so it is globally
  shared across VMs;
* the AST and PATs are per-process and reload on context switch;
* the GAT is maintained by each guest OS;
* ``ATOM_MAP`` translates guest-virtual ranges all the way down to
  host-physical ranges through the composed MMU.

This module provides the hypervisor and guest plumbing, and
``make_guest_process`` wires a process whose XMem translate hook is
the *composed* (gVA -> gPA -> hPA) translation -- the property the
Section 4.3 tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.errors import AllocationError
from repro.core.ranges import AddressRange
from repro.core.xmemlib import XMemLib, XMemProcess
from repro.xos.page_table import PageTable


class Hypervisor:
    """Backs guest-physical memory with host-physical frames.

    A minimal second-stage translation: each VM gets an extended page
    table (EPT) mapping guest frames to host frames on demand.
    """

    def __init__(self, host_frames: int, page_bytes: int = 4096) -> None:
        self.page_bytes = page_bytes
        self.host_frames = host_frames
        self._free = list(range(host_frames - 1, -1, -1))
        self._epts: Dict[int, PageTable] = {}
        self._next_vm = 1

    def create_vm(self) -> "VirtualMachine":
        """Boot a VM with an empty extended page table."""
        vm_id = self._next_vm
        self._next_vm += 1
        self._epts[vm_id] = PageTable(self.page_bytes)
        return VirtualMachine(vm_id, self)

    def back_guest_frame(self, vm_id: int, gframe: int) -> int:
        """Allocate a host frame behind a guest frame (EPT fill)."""
        if not self._free:
            raise AllocationError("hypervisor out of host frames")
        hframe = self._free.pop()
        self._epts[vm_id].map_page(gframe, hframe)
        return hframe

    def second_stage(self, vm_id: int, gpa: int) -> int:
        """gPA -> hPA, faulting in the backing frame on first touch."""
        ept = self._epts[vm_id]
        gframe = gpa // self.page_bytes
        if ept.frame_of(gframe) is None:
            self.back_guest_frame(vm_id, gframe)
        return ept.translate(gpa)


@dataclass
class VirtualMachine:
    """One VM: a guest OS with its own first-stage page tables."""

    vm_id: int
    hypervisor: Hypervisor
    _next_gframe: int = 0
    guest_tables: Dict[int, PageTable] = field(default_factory=dict)
    _next_pid: int = 1

    def create_guest_process(self) -> "GuestProcess":
        """The guest OS spawns a process."""
        pid = self._next_pid
        self._next_pid += 1
        table = PageTable(self.hypervisor.page_bytes)
        self.guest_tables[pid] = table
        return GuestProcess(self, pid, table)

    def allocate_guest_frame(self) -> int:
        """Guest-physical frame allocation (guest OS buddy stand-in)."""
        frame = self._next_gframe
        self._next_gframe += 1
        return frame

    def translate_to_host(self, pid: int, gva: int) -> int:
        """The composed gVA -> gPA -> hPA walk the hardware performs."""
        gpa = self.guest_tables[pid].translate(gva)
        return self.hypervisor.second_stage(self.vm_id, gpa)


class GuestProcess:
    """A process inside a VM, with an unchanged XMem stack on top.

    The XMem process's MMU hook is the composed two-stage translation,
    so the AAM ends up indexed by host-physical addresses -- exactly
    the Section 4.3 design.
    """

    def __init__(self, vm: VirtualMachine, pid: int,
                 table: PageTable) -> None:
        self.vm = vm
        self.pid = pid
        self.page_table = table
        self.xmem = XMemProcess(translate=self._translate_range)
        self.xmemlib = XMemLib(self.xmem)
        self._brk = 0x4000_0000

    # -- Guest memory management -------------------------------------

    def malloc(self, size: int) -> int:
        """Guest-virtual allocation, eagerly backed via the guest OS."""
        if size <= 0:
            raise AllocationError(f"size must be > 0: {size}")
        page = self.vm.hypervisor.page_bytes
        rounded = (size + page - 1) // page * page
        base = self._brk
        self._brk += rounded
        for gvpage in range(base // page, (base + rounded) // page):
            self.page_table.map_page(gvpage,
                                     self.vm.allocate_guest_frame())
        return base

    def translate(self, gva: int) -> int:
        """gVA -> hPA (what loads and stores see)."""
        return self.vm.translate_to_host(self.pid, gva)

    # -- MMU hook for the AMU -------------------------------------------

    def _translate_range(self, rng: AddressRange
                         ) -> Tuple[AddressRange, ...]:
        """Split a guest-VA range into host-PA ranges, page by page."""
        page = self.vm.hypervisor.page_bytes
        out = []
        va = rng.start
        while va < rng.end:
            page_end = min((va // page + 1) * page, rng.end)
            hpa = self.translate(va)
            size = page_end - va
            if out and out[-1].end == hpa:
                out[-1] = AddressRange(out[-1].start, hpa + size)
            else:
                out.append(AddressRange.from_size(hpa, size))
            va = page_end
        return tuple(out)
