"""Processes and the operating system.

:class:`OperatingSystem` owns the physical frame pool and creates
:class:`Process` objects, each wiring together

* a page table (the MMU the AMU consults for ``ATOM_MAP``),
* an atom-aware heap (:mod:`repro.xos.vmalloc`),
* a per-process XMem view (GAT + AMU + PATs), and
* the frame-allocation policy (baseline randomized, or the Use-Case-2
  bank-targeting allocator fed by the placement algorithm).

``load_program`` models the Section 3.5.2 load path: read the binary's
atom segment, fill the GAT, run the Attribute Translator, and -- when a
placement-capable allocator is active -- run the Section 6.2 placement
algorithm over the freshly loaded attributes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.errors import ConfigurationError
from repro.core.segment import AtomSegment, load_segment
from repro.core.xmemlib import XMemLib, XMemProcess
from repro.dram.mapping import DramGeometry, make_mapping
from repro.xos.allocator import (
    ALLOCATORS,
    BankTargetAllocator,
    FrameAllocator,
)
from repro.xos.page_table import PageTable
from repro.xos.phys import FramePool, PAGE_BYTES
from repro.xos.placement import PlacementDecision, plan_from_gat
from repro.xos.vmalloc import HeapAllocator


class Process:
    """One running program: address space + heap + XMem state."""

    def __init__(self, pid: int, allocator: FrameAllocator,
                 page_bytes: int = PAGE_BYTES,
                 max_atoms: int = 256) -> None:
        self.pid = pid
        self.page_table = PageTable(page_bytes)
        self.allocator = allocator
        self.xmem = XMemProcess(
            max_atoms=max_atoms,
            translate=self.page_table.translate_range,
        )
        self.xmemlib = XMemLib(self.xmem)
        self.heap = HeapAllocator(self._back_page, page_bytes)
        self.placement: Optional[PlacementDecision] = None
        #: Back-reference to the owning OS (set by ``create_process``).
        self.os: Optional["OperatingSystem"] = None

    def _back_page(self, vpage: int, atom_id: Optional[int]) -> None:
        frame = self.allocator.allocate(atom_id)
        self.page_table.map_page(vpage, frame)

    # -- The augmented allocation API (Section 4.1.2) ------------------

    def malloc(self, size: int, atom_id: Optional[int] = None) -> int:
        """``A = malloc(size, atomID)``: atom-aware allocation."""
        return self.heap.malloc(size, atom_id)

    def malloc_mapped(self, size: int, atom_id: int) -> int:
        """The compiler's combined idiom: malloc + AtomMap + Activate."""
        va = self.heap.malloc(size, atom_id)
        self.xmemlib.atom_map(atom_id, va, size)
        self.xmemlib.atom_activate(atom_id)
        return va

    def translate(self, vaddr: int) -> int:
        """MMU translation for the execution engine."""
        return self.page_table.translate(vaddr)


class OperatingSystem:
    """The machine-wide OS: frame pool + process management."""

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        mapping: str = "scheme2",
        allocator: str = "randomized",
        page_bytes: int = PAGE_BYTES,
        seed: int = 0,
    ) -> None:
        self.geometry = geometry or DramGeometry()
        self.mapping = make_mapping(mapping, self.geometry)
        self.pool = FramePool(self.geometry, self.mapping,
                              page_bytes=page_bytes, seed=seed)
        if allocator not in ALLOCATORS:
            raise ConfigurationError(
                f"unknown allocator {allocator!r}; "
                f"choices: {sorted(ALLOCATORS)}"
            )
        self.allocator_name = allocator
        self.page_bytes = page_bytes
        self._next_pid = 1
        self.processes: Dict[int, Process] = {}

    def _make_allocator(self) -> FrameAllocator:
        cls = ALLOCATORS[self.allocator_name]
        return cls(self.pool)

    def create_process(self, max_atoms: int = 256) -> Process:
        """Spawn a process with a fresh address space."""
        proc = Process(self._next_pid, self._make_allocator(),
                       page_bytes=self.page_bytes, max_atoms=max_atoms)
        proc.os = self
        self.processes[proc.pid] = proc
        self._next_pid += 1
        return proc

    def load_program(self, proc: Process,
                     segment: AtomSegment) -> int:
        """The load-time path: atom segment -> GAT -> PATs -> placement.

        Returns the number of atoms loaded.
        """
        loaded = load_segment(segment, proc.xmem.gat)
        proc.xmem.retranslate()
        if loaded and isinstance(proc.allocator, BankTargetAllocator):
            self.apply_placement(proc)
        return loaded

    def apply_placement(self, proc: Process) -> PlacementDecision:
        """Run the Section 6.2 algorithm and arm the allocator with it.

        Requires the process to use a :class:`BankTargetAllocator`.
        """
        if not isinstance(proc.allocator, BankTargetAllocator):
            raise ConfigurationError(
                "placement needs the bank_target allocator; "
                f"process uses {proc.allocator.name!r}"
            )
        footprints = {atom.atom_id: atom.working_set_bytes
                      for atom in proc.xmem.atoms.values()}
        decision = plan_from_gat(proc.xmem.gat, footprints,
                                 self.pool.all_banks,
                                 groups=self.pool.bank_groups())
        proc.placement = decision
        atom_ids = [atom_id for atom_id, _ in proc.xmem.gat]
        proc.allocator.assignments.update(
            decision.as_assignments(atom_ids)
        )
        return decision
