"""Atom Management Unit (AMU) and Atom Lookaside Buffer (ALB).

Section 4.2, component (4).  The AMU is the hardware unit that

* interprets the XMem ISA instructions, updating the Atom Address Map
  (ATOM_MAP/ATOM_UNMAP) and Atom Status Table (ATOM_ACTIVATE/
  ATOM_DEACTIVATE);
* serves ``ATOM_LOOKUP`` requests from other hardware components,
  returning the *active* atom (if any) for a physical address.

To avoid a memory access per lookup, the AMU fronts the AAM with an
**atom lookaside buffer (ALB)** -- an LRU cache whose tags are physical
page indexes and whose data are the atom IDs of every chunk in the
page, exactly like a TLB fronts the page table.  The paper finds a
256-entry ALB covers 98.9% of lookups; the bench
``benchmarks/test_sec42_alb_hitrate.py`` reproduces that experiment.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.aam import AAMConfig, AtomAddressMap
from repro.core.ast_table import AtomStatusTable
from repro.core.errors import TranslationError
from repro.core.isa import (
    AtomInstruction,
    AtomMapInstruction,
    AtomOpcode,
    AtomStatusInstruction,
)
from repro.core.ranges import AddressRange

#: Paper configuration: 256-entry ALB.
DEFAULT_ALB_ENTRIES = 256

#: Translate one VA range to a sequence of PA ranges (the MMU's job).
TranslateFn = Callable[[AddressRange], Tuple[AddressRange, ...]]


@dataclass
class ALBStats:
    """Hit/miss counters for the atom lookaside buffer."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total ATOM_LOOKUP requests served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without touching the AAM."""
        return self.hits / self.lookups if self.lookups else 0.0


class AtomLookasideBuffer:
    """LRU page-granular cache of AAM entries."""

    def __init__(self, entries: int = DEFAULT_ALB_ENTRIES) -> None:
        self.entries = entries
        self._lines: "OrderedDict[int, Tuple[Optional[int], ...]]" = (
            OrderedDict()
        )
        self.stats = ALBStats()

    def lookup(self, page_index: int
               ) -> Optional[Tuple[Optional[int], ...]]:
        """Cached chunk->atom data for a page, or None on ALB miss."""
        data = self._lines.get(page_index)
        if data is None:
            self.stats.misses += 1
            return None
        self._lines.move_to_end(page_index)
        self.stats.hits += 1
        return data

    def fill(self, page_index: int,
             data: Tuple[Optional[int], ...]) -> None:
        """Install a page's AAM data, evicting LRU if full."""
        if page_index in self._lines:
            self._lines.move_to_end(page_index)
        self._lines[page_index] = data
        while len(self._lines) > self.entries:
            self._lines.popitem(last=False)

    def invalidate_page(self, page_index: int) -> None:
        """Drop one page (called when the AAM entry changes)."""
        self._lines.pop(page_index, None)

    def flush(self) -> None:
        """Drop everything (context switch, Section 4.4)."""
        self._lines.clear()

    def __len__(self) -> int:
        return len(self._lines)


@dataclass
class AMUStats:
    """Operation counters for the Atom Management Unit."""

    map_instructions: int = 0
    unmap_instructions: int = 0
    activate_instructions: int = 0
    deactivate_instructions: int = 0
    lookups: int = 0
    chunks_written: int = 0

    @property
    def xmem_instructions(self) -> int:
        """Total XMem ISA instructions executed (Section 4.4 overhead)."""
        return (self.map_instructions + self.unmap_instructions
                + self.activate_instructions + self.deactivate_instructions)

    @property
    def chunks_per_map(self) -> float:
        """Mean AAM chunks written per ATOM_MAP (0.0 when none ran)."""
        if not self.map_instructions:
            return 0.0
        return self.chunks_written / self.map_instructions


class AtomManagementUnit:
    """The hardware home of the AAM + AST, with an ALB front.

    ``translate`` is the MMU hook: given a VA range it returns the PA
    ranges backing it.  The identity translation is the default so the
    AMU is usable standalone in unit tests.
    """

    def __init__(
        self,
        aam_config: Optional[AAMConfig] = None,
        max_atoms: int = 256,
        alb_entries: int = DEFAULT_ALB_ENTRIES,
        translate: Optional[TranslateFn] = None,
    ) -> None:
        self.aam = AtomAddressMap(aam_config)
        self.ast = AtomStatusTable(max_atoms)
        self.alb = AtomLookasideBuffer(alb_entries)
        self.translate: TranslateFn = translate or (lambda rng: (rng,))
        self.stats = AMUStats()
        # ``lookup`` runs once per prefetcher probe (hot path): shift/
        # mask forms of the address split (page_bytes and chunk_bytes
        # are powers of two in every shipped config; fall back to the
        # div/mod path otherwise) and pre-bound methods so the per-call
        # cost is not attribute-chain traversal.  All of alb/aam/ast
        # mutate in place (flush/restore included), so the bindings
        # stay valid for the unit's lifetime.
        cfg = self.aam.config
        page = cfg.page_bytes
        chunk = cfg.chunk_bytes
        if page & (page - 1) == 0 and chunk & (chunk - 1) == 0:
            self._page_shift: Optional[int] = page.bit_length() - 1
            self._chunk_shift = chunk.bit_length() - 1
            self._page_mask = page - 1
        else:
            self._page_shift = None
            self._chunk_shift = 0
            self._page_mask = 0
        self._alb_lookup = self.alb.lookup
        self._alb_fill = self.alb.fill
        self._aam_lookup_page = self.aam.lookup_page
        self._ast_is_active = self.ast.is_active

    def stat_groups(self):
        """StatGroup protocol: the unit's counters and its ALB."""
        yield "", self.stats
        yield "alb", self.alb.stats

    # -- Instruction interpretation -------------------------------------

    def execute(self, instr: AtomInstruction) -> None:
        """Interpret one XMem ISA instruction."""
        if isinstance(instr, AtomMapInstruction):
            if instr.opcode is AtomOpcode.ATOM_MAP:
                self._do_map(instr)
            elif instr.opcode is AtomOpcode.ATOM_UNMAP:
                self._do_unmap(instr)
            else:  # pragma: no cover - constructor prevents this
                raise ValueError(f"bad opcode {instr.opcode}")
        elif isinstance(instr, AtomStatusInstruction):
            if instr.opcode is AtomOpcode.ATOM_ACTIVATE:
                self.ast.activate(instr.atom_id)
                self.stats.activate_instructions += 1
            elif instr.opcode is AtomOpcode.ATOM_DEACTIVATE:
                self.ast.deactivate(instr.atom_id)
                self.stats.deactivate_instructions += 1
            else:  # pragma: no cover
                raise ValueError(f"bad opcode {instr.opcode}")
        else:
            raise TypeError(f"not an XMem instruction: {instr!r}")

    def _pa_ranges(self, instr: AtomMapInstruction):
        for va_range in instr.va_ranges:
            try:
                yield from self.translate(va_range)
            except TranslationError:
                # Hint-only semantics: an unmapped VA range contributes no
                # AAM entries but never faults the program.
                continue

    def _do_map(self, instr: AtomMapInstruction) -> None:
        self.stats.map_instructions += 1
        for pa_range in self._pa_ranges(instr):
            self.stats.chunks_written += self.aam.map_range(
                pa_range, instr.atom_id
            )
            self._invalidate_alb(pa_range)

    def _do_unmap(self, instr: AtomMapInstruction) -> None:
        self.stats.unmap_instructions += 1
        for pa_range in self._pa_ranges(instr):
            self.aam.unmap_range(pa_range, instr.atom_id)
            self._invalidate_alb(pa_range)

    def _invalidate_alb(self, pa_range: AddressRange) -> None:
        page = self.aam.config.page_bytes
        for page_index in pa_range.chunks(page):
            self.alb.invalidate_page(page_index)

    # -- Lookups ---------------------------------------------------------

    def lookup(self, paddr: int) -> Optional[int]:
        """ATOM_LOOKUP: the *active* atom ID for a physical address.

        Consults the ALB first; on a miss, reads the AAM and fills the
        ALB with the whole page.  Returns None when the address is not
        mapped to any atom or the mapped atom is inactive.
        """
        self.stats.lookups += 1
        page_shift = self._page_shift
        if page_shift is not None:
            page_index = paddr >> page_shift
            chunk_in_page = (paddr & self._page_mask) >> self._chunk_shift
        else:
            cfg = self.aam.config
            page_index = paddr // cfg.page_bytes
            chunk_in_page = (paddr % cfg.page_bytes) // cfg.chunk_bytes
        data = self._alb_lookup(page_index)
        if data is None:
            data = self._aam_lookup_page(page_index)
            self._alb_fill(page_index, data)
        atom_id = data[chunk_in_page]
        if atom_id is None or not self._ast_is_active(atom_id):
            return None
        return atom_id

    def lookup_raw(self, paddr: int) -> Optional[int]:
        """The mapped atom ID regardless of activation (debug/tests)."""
        return self.aam.lookup(paddr)

    # -- Context switches -------------------------------------------------

    def context_switch(self, ast_snapshot: bytes) -> None:
        """Flush the ALB and reload the AST for the incoming process.

        The AAM is global (PA-indexed) and survives context switches;
        the AST and PATs are per-process state (Section 4.3).
        """
        self.alb.flush()
        self.ast.restore(ast_snapshot)
