"""Atom attributes: the program semantics an atom conveys (Section 3.3).

An atom carries three classes of attributes:

1. **Data value properties** -- the type and properties of the values in
   the data pool the atom is mapped to (``INT32``, ``SPARSE``,
   ``POINTER``, ...).  Implemented as an extensible bit-set so new
   properties can be added without changing the wire format.
2. **Access properties** -- how the data is accessed: the access pattern
   (:class:`PatternType` with an optional stride), read/write
   characteristics (:class:`RWChar`), and an 8-bit relative access
   intensity ("hotness").
3. **Data locality** -- an 8-bit relative reuse value; the working-set
   size is *inferred from the size of data the atom is mapped to* (the
   paper, Section 3.3), so it is not stored here.

Attributes are immutable once an atom is created (Section 3.2), which is
why every class in this module is a frozen dataclass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional

from repro.core.errors import InvalidAttributeError

#: Domain of the 8-bit relative quantities (reuse, access intensity).
U8_MIN, U8_MAX = 0, 255


class DataType(enum.Enum):
    """Primitive data type of the values mapped to an atom.

    Used, e.g., by compression (FP-specific vs. delta encoding) and by
    approximation techniques (Table 1).
    """

    UNKNOWN = "unknown"
    INT8 = "int8"
    INT16 = "int16"
    INT32 = "int32"
    INT64 = "int64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    CHAR8 = "char8"

    @property
    def size_bytes(self) -> int:
        """Size of one element of this type, in bytes (0 if unknown)."""
        return _DATA_TYPE_SIZES[self]


_DATA_TYPE_SIZES = {
    DataType.UNKNOWN: 0,
    DataType.INT8: 1,
    DataType.INT16: 2,
    DataType.INT32: 4,
    DataType.INT64: 8,
    DataType.FLOAT32: 4,
    DataType.FLOAT64: 8,
    DataType.CHAR8: 1,
}


class DataProperty(enum.Flag):
    """Extensible bit-set of value properties (one bit per property).

    The paper implements data-value properties "as an extensible list
    using a single bit for each attribute"; :class:`enum.Flag` gives us
    exactly that encoding.
    """

    NONE = 0
    SPARSE = enum.auto()
    APPROXIMABLE = enum.auto()
    POINTER = enum.auto()
    INDEX = enum.auto()
    COMPRESSIBLE = enum.auto()
    READ_MOSTLY = enum.auto()


class PatternType(enum.Enum):
    """Access-pattern classes defined by the paper (Section 3.3).

    * ``REGULAR``  -- strided; the stride is carried alongside.
    * ``IRREGULAR`` -- repeatable within the data range but with no fixed
      stride (e.g., graph traversals over a fixed edge list).
    * ``NON_DET`` -- no repeated pattern at all.
    """

    REGULAR = "regular"
    IRREGULAR = "irregular"
    NON_DET = "non_det"


class RWChar(enum.Enum):
    """Read/write characteristics of the data at a given time.

    ``WRITE_HEAVY`` implements the extension the paper explicitly
    anticipates ("it could also be extended to include varying degrees
    of read-write intensity"): data that is written on a large fraction
    of its accesses, which placement policies treat differently from
    read-mostly data (a write-heavy stream's writeback traffic competes
    with its own reads for banks).
    """

    READ_ONLY = "read_only"
    READ_WRITE = "read_write"
    WRITE_HEAVY = "write_heavy"
    WRITE_ONLY = "write_only"


def _check_u8(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise InvalidAttributeError(f"{name} must be an int, got {value!r}")
    if not U8_MIN <= value <= U8_MAX:
        raise InvalidAttributeError(
            f"{name} must be in [{U8_MIN}, {U8_MAX}], got {value}"
        )


@dataclass(frozen=True)
class DataValueProperties:
    """Class-1 attributes: what the data *is*."""

    data_type: DataType = DataType.UNKNOWN
    properties: DataProperty = DataProperty.NONE

    def has(self, prop: DataProperty) -> bool:
        """Return True if ``prop`` is set on this atom's data."""
        return bool(self.properties & prop)


@dataclass(frozen=True)
class AccessPattern:
    """The ``AccessPattern`` attribute: a pattern type plus stride.

    ``stride_bytes`` is meaningful only for ``REGULAR`` patterns; it is
    the distance, in bytes, between consecutive accesses.  A stride of 0
    with a REGULAR pattern is rejected (it would express "no movement").
    """

    pattern: PatternType = PatternType.NON_DET
    stride_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pattern is PatternType.REGULAR:
            if self.stride_bytes is None or self.stride_bytes == 0:
                raise InvalidAttributeError(
                    "REGULAR access pattern requires a non-zero stride"
                )
        elif self.stride_bytes is not None:
            raise InvalidAttributeError(
                f"stride is only meaningful for REGULAR patterns, "
                f"got {self.pattern.value} with stride {self.stride_bytes}"
            )

    @property
    def is_prefetchable(self) -> bool:
        """Whether a simple engine can prefetch this pattern.

        REGULAR patterns are directly prefetchable with a stride engine;
        IRREGULAR patterns are prefetchable by replay/streaming over the
        mapped range; NON_DET patterns are not prefetchable.
        """
        return self.pattern is not PatternType.NON_DET


@dataclass(frozen=True)
class AccessProperties:
    """Class-2 attributes: how the data is *accessed*."""

    pattern: AccessPattern = field(default_factory=AccessPattern)
    rw: RWChar = RWChar.READ_WRITE
    access_intensity: int = 0

    def __post_init__(self) -> None:
        _check_u8("access_intensity", self.access_intensity)


@dataclass(frozen=True)
class DataLocality:
    """Class-3 attributes: locality semantics.

    ``reuse`` is the paper's 8-bit relative reuse value: 0 means no
    reuse; larger values mean more reuse *relative to other atoms*.  The
    working-set size is derived from the atom's current mapping, not
    stored here.
    """

    reuse: int = 0

    def __post_init__(self) -> None:
        _check_u8("reuse", self.reuse)


@dataclass(frozen=True)
class AtomAttributes:
    """The full, immutable attribute record of one atom.

    This is the unit summarized by the compiler into the atom segment,
    loaded by the OS into the Global Attribute Table, and translated by
    the hardware Attribute Translator into per-component primitives.
    """

    name: str = ""
    data: DataValueProperties = field(default_factory=DataValueProperties)
    access: AccessProperties = field(default_factory=AccessProperties)
    locality: DataLocality = field(default_factory=DataLocality)

    #: Storage footprint of one attribute record in the GAT; the paper's
    #: overhead analysis (Section 4.4) budgets 19 bytes per atom.
    ENCODED_SIZE_BYTES = 19

    @property
    def reuse(self) -> int:
        """Shortcut for the locality reuse value."""
        return self.locality.reuse

    @property
    def access_intensity(self) -> int:
        """Shortcut for the access-intensity ranking."""
        return self.access.access_intensity

    @property
    def pattern(self) -> AccessPattern:
        """Shortcut for the access pattern."""
        return self.access.pattern

    def describe(self) -> str:
        """One-line human-readable summary, for logs and reports."""
        bits = [p.name for p in DataProperty if p is not DataProperty.NONE
                and self.data.has(p)]
        stride = (f" stride={self.access.pattern.stride_bytes}"
                  if self.access.pattern.stride_bytes is not None else "")
        return (
            f"{self.name or '<anon>'}: {self.data.data_type.value}"
            f"[{','.join(bits) or '-'}] "
            f"{self.access.pattern.pattern.value}{stride} "
            f"{self.access.rw.value} hot={self.access_intensity} "
            f"reuse={self.reuse}"
        )


def make_attributes(
    name: str = "",
    *,
    data_type: DataType = DataType.UNKNOWN,
    properties: Iterable[DataProperty] = (),
    pattern: PatternType = PatternType.NON_DET,
    stride_bytes: Optional[int] = None,
    rw: RWChar = RWChar.READ_WRITE,
    access_intensity: int = 0,
    reuse: int = 0,
) -> AtomAttributes:
    """Convenience constructor assembling an :class:`AtomAttributes`.

    This is the flat keyword form used by :func:`repro.core.xmemlib.
    XMemLib.create_atom`; it folds the three attribute classes into one
    call the way the paper's ``CreateAtom`` does.
    """
    prop_bits = DataProperty.NONE
    for prop in properties:
        prop_bits |= prop
    return AtomAttributes(
        name=name,
        data=DataValueProperties(data_type=data_type, properties=prop_bits),
        access=AccessProperties(
            pattern=AccessPattern(pattern=pattern, stride_bytes=stride_bytes),
            rw=rw,
            access_intensity=access_intensity,
        ),
        locality=DataLocality(reuse=reuse),
    )


#: The set of attribute names understood by version 1 of the atom-segment
#: format (see :mod:`repro.core.segment`).  Kept as a frozenset so tests
#: can assert forward compatibility (unknown attributes are ignored).
V1_ATTRIBUTE_FIELDS: FrozenSet[str] = frozenset(
    {"name", "data_type", "properties", "pattern", "stride_bytes", "rw",
     "access_intensity", "reuse"}
)
