"""Address-range arithmetic shared by the XMem mapping machinery.

An :class:`AddressRange` is a half-open byte interval ``[start, end)``.
Atoms map to *sets* of such ranges (possibly non-contiguous, Section
3.2 "Flexible mapping to data"); :class:`RangeSet` maintains a
normalized (sorted, coalesced) set with add/remove/query operations.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.core.errors import AddressRangeError


@dataclass(frozen=True, order=True)
class AddressRange:
    """A half-open interval of byte addresses ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise AddressRangeError(
                f"invalid range [{self.start:#x}, {self.end:#x})"
            )

    @classmethod
    def from_size(cls, start: int, size: int) -> "AddressRange":
        """Build a range from a base address and byte size."""
        if size < 0:
            raise AddressRangeError(f"negative size {size}")
        return cls(start, start + size)

    @property
    def size(self) -> int:
        """Number of bytes covered by the range."""
        return self.end - self.start

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        """True if the two ranges share at least one byte."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "AddressRange") -> "AddressRange":
        """The overlapping sub-range (empty range at 0 if disjoint)."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo >= hi:
            return AddressRange(0, 0)
        return AddressRange(lo, hi)

    def chunks(self, granularity: int) -> Iterator[int]:
        """Yield the granularity-aligned chunk indices the range touches.

        Used by the AAM, which tracks atom IDs per fixed-size chunk
        (512 B by default).
        """
        if granularity <= 0:
            raise AddressRangeError(f"granularity must be > 0: {granularity}")
        if self.size == 0:
            return
        first = self.start // granularity
        last = (self.end - 1) // granularity
        yield from range(first, last + 1)


class RangeSet:
    """A normalized set of disjoint, sorted address ranges.

    Adjacent and overlapping ranges are coalesced on insertion, so the
    internal representation is canonical: equality of two RangeSets is
    equality of the byte sets they cover.
    """

    def __init__(self, ranges: Iterable[AddressRange] = ()) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        for rng in ranges:
            self.add(rng)

    def add(self, rng: AddressRange) -> None:
        """Insert ``rng``, coalescing with neighbours."""
        if rng.size == 0:
            return
        start, end = rng.start, rng.end
        # Find the window of existing ranges that touch [start, end].
        i = bisect.bisect_left(self._ends, start)
        j = bisect.bisect_right(self._starts, end)
        if i < j:
            start = min(start, self._starts[i])
            end = max(end, self._ends[j - 1])
        self._starts[i:j] = [start]
        self._ends[i:j] = [end]

    def remove(self, rng: AddressRange) -> None:
        """Remove the bytes of ``rng`` from the set (splitting as needed)."""
        if rng.size == 0:
            return
        new_starts: List[int] = []
        new_ends: List[int] = []
        for s, e in zip(self._starts, self._ends):
            if e <= rng.start or s >= rng.end:
                new_starts.append(s)
                new_ends.append(e)
                continue
            if s < rng.start:
                new_starts.append(s)
                new_ends.append(rng.start)
            if e > rng.end:
                new_starts.append(rng.end)
                new_ends.append(e)
        self._starts = new_starts
        self._ends = new_ends

    def __contains__(self, addr: int) -> bool:
        i = bisect.bisect_right(self._starts, addr) - 1
        return i >= 0 and addr < self._ends[i]

    def __iter__(self) -> Iterator[AddressRange]:
        for s, e in zip(self._starts, self._ends):
            yield AddressRange(s, e)

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:
        parts = ", ".join(f"[{s:#x},{e:#x})" for s, e in
                          zip(self._starts, self._ends))
        return f"RangeSet({parts})"

    @property
    def total_bytes(self) -> int:
        """Total number of bytes covered (the atom's working-set size)."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def spans(self) -> List[Tuple[int, int]]:
        """The (start, end) pairs as plain tuples (for serialization)."""
        return list(zip(self._starts, self._ends))

    def copy(self) -> "RangeSet":
        """A deep copy of this range set."""
        out = RangeSet()
        out._starts = list(self._starts)
        out._ends = list(self._ends)
        return out
