"""XMemLib: the application-facing library (Sections 3.5.1, 4.1.1).

``XMemLib`` exposes the three operator families of Table 2:

* ``create_atom``       -- CREATE: returns an atom ID; repeated calls
  with identical attributes (the same static call site) return the same
  ID without re-creating the atom.
* ``atom_map`` / ``atom_unmap`` (and the 2-D/3-D variants) -- MAP/UNMAP:
  issue ``ATOM_MAP``/``ATOM_UNMAP`` instructions to the AMU, which
  translates the VA ranges through the MMU and updates the AAM.
* ``atom_activate`` / ``atom_deactivate`` -- ACTIVATE/DEACTIVATE: issue
  status instructions that flip the AST bit.

The library is bound to one :class:`XMemProcess`, the per-process view
of the whole XMem system (GAT + AMU + PATs + the software atom
registry).  Everything is hint-based: no call here can raise on account
of program data being absent, and dropping every call leaves program
functionality unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.aam import AAMConfig
from repro.core.amu import AtomManagementUnit, TranslateFn
from repro.core.atom import MAX_ATOMS_PER_PROCESS, Atom
from repro.core.attributes import (
    AtomAttributes,
    DataProperty,
    DataType,
    PatternType,
    RWChar,
    make_attributes,
)
from repro.core.errors import AtomCapacityError, UnknownAtomError
from repro.core.gat import GlobalAttributeTable
from repro.core.isa import (
    atom_activate,
    atom_deactivate,
    atom_map,
    atom_unmap,
)
from repro.core.pat import (
    AttributeTranslator,
    PrivateAttributeTable,
    make_standard_pats,
)
from repro.core.ranges import AddressRange
from repro.core.segment import AtomSegment, summarize


@dataclass
class XMemProcess:
    """Per-process XMem state: registry, GAT, AMU, PATs, translator."""

    aam_config: Optional[AAMConfig] = None
    max_atoms: int = MAX_ATOMS_PER_PROCESS
    alb_entries: int = 256
    translate: Optional[TranslateFn] = None

    atoms: Dict[int, Atom] = field(default_factory=dict, init=False)
    gat: GlobalAttributeTable = field(init=False)
    amu: AtomManagementUnit = field(init=False)
    pats: Dict[str, PrivateAttributeTable] = field(init=False)
    translator: AttributeTranslator = field(
        default_factory=AttributeTranslator, init=False
    )

    def __post_init__(self) -> None:
        self.gat = GlobalAttributeTable(self.max_atoms)
        self.amu = AtomManagementUnit(
            aam_config=self.aam_config,
            max_atoms=self.max_atoms,
            alb_entries=self.alb_entries,
            translate=self.translate,
        )
        self.pats = make_standard_pats()

    def retranslate(self) -> None:
        """Refill every PAT from the GAT (program load / context switch)."""
        self.translator.translate(self.gat, self.pats)

    def atom_for_paddr(self, paddr: int) -> Optional[Atom]:
        """The active atom describing a physical address, if any.

        This is the query interface architectural components use
        (Figure 1, arrow 4): ALB/AAM lookup plus AST check, then the
        software-side Atom object for its attributes and mapping.
        """
        atom_id = self.amu.lookup(paddr)
        if atom_id is None:
            return None
        return self.atoms.get(atom_id)

    def active_atoms(self) -> List[Atom]:
        """All currently active atoms, in ID order."""
        return [self.atoms[i] for i in self.amu.ast.active_ids()
                if i in self.atoms]


class XMemLib:
    """The Table 2 function-call interface, bound to one process."""

    def __init__(self, process: Optional[XMemProcess] = None) -> None:
        self.process = process or XMemProcess()
        self._create_sites: Dict[AtomAttributes, int] = {}
        self._next_id = 0
        #: Callbacks fired after any MAP/UNMAP/ACTIVATE/DEACTIVATE --
        #: how hardware controllers (e.g., the Use-Case-1 cache policy)
        #: learn that the active-atom list changed.
        self.listeners: List[callable] = []

    def _notify(self) -> None:
        for listener in self.listeners:
            listener()

    # -- CREATE ----------------------------------------------------------

    def create_atom(
        self,
        name: str = "",
        *,
        data_type: DataType = DataType.UNKNOWN,
        properties: Tuple[DataProperty, ...] = (),
        pattern: PatternType = PatternType.NON_DET,
        stride_bytes: Optional[int] = None,
        rw: RWChar = RWChar.READ_WRITE,
        access_intensity: int = 0,
        reuse: int = 0,
    ) -> int:
        """CREATE: make an atom with immutable attributes, return its ID.

        Repeated calls with identical attributes model repeated
        execution of the same static ``CreateAtom`` call site (e.g.,
        inside a loop) and return the existing ID without creating a
        new atom.
        """
        attrs = make_attributes(
            name=name,
            data_type=data_type,
            properties=properties,
            pattern=pattern,
            stride_bytes=stride_bytes,
            rw=rw,
            access_intensity=access_intensity,
            reuse=reuse,
        )
        existing = self._create_sites.get(attrs)
        if existing is not None:
            return existing
        if self._next_id >= self.process.max_atoms:
            raise AtomCapacityError(
                f"process atom budget ({self.process.max_atoms}) exhausted"
            )
        atom_id = self._next_id
        self._next_id += 1
        self.process.atoms[atom_id] = Atom(atom_id, attrs)
        self.process.gat.install(atom_id, attrs)
        self._create_sites[attrs] = atom_id
        return atom_id

    def _atom(self, atom_id: int) -> Atom:
        try:
            return self.process.atoms[atom_id]
        except KeyError:
            raise UnknownAtomError(atom_id) from None

    # -- MAP / UNMAP -----------------------------------------------------

    def atom_map(self, atom_id: int, start: int, size: int) -> None:
        """MAP a 1-D VA range [start, start+size) to the atom."""
        self._map_ranges(atom_id, (AddressRange.from_size(start, size),),
                         unmap=False)

    def atom_unmap(self, atom_id: int, start: int, size: int) -> None:
        """UNMAP a 1-D VA range from the atom."""
        self._map_ranges(atom_id, (AddressRange.from_size(start, size),),
                         unmap=True)

    def atom_map_2d(self, atom_id: int, start: int, size_x: int,
                    size_y: int, len_x: int) -> None:
        """MAP a 2-D block: ``size_y`` rows of ``size_x`` bytes, in a
        structure whose full row is ``len_x`` bytes (Table 2 AtomMap2D).
        """
        self._map_ranges(atom_id,
                         _block_2d(start, size_x, size_y, len_x),
                         unmap=False)

    def atom_unmap_2d(self, atom_id: int, start: int, size_x: int,
                      size_y: int, len_x: int) -> None:
        """UNMAP a 2-D block (inverse of :meth:`atom_map_2d`)."""
        self._map_ranges(atom_id,
                         _block_2d(start, size_x, size_y, len_x),
                         unmap=True)

    def atom_map_3d(self, atom_id: int, start: int, size_x: int,
                    size_y: int, size_z: int, len_x: int,
                    len_y: int) -> None:
        """MAP a 3-D block of ``size_z`` planes of 2-D blocks.

        ``len_x`` is the row length and ``len_y`` the number of rows per
        plane of the enclosing structure, both in bytes/rows.
        """
        self._map_ranges(
            atom_id,
            _block_3d(start, size_x, size_y, size_z, len_x, len_y),
            unmap=False,
        )

    def atom_unmap_3d(self, atom_id: int, start: int, size_x: int,
                      size_y: int, size_z: int, len_x: int,
                      len_y: int) -> None:
        """UNMAP a 3-D block (inverse of :meth:`atom_map_3d`)."""
        self._map_ranges(
            atom_id,
            _block_3d(start, size_x, size_y, size_z, len_x, len_y),
            unmap=True,
        )

    def _map_ranges(self, atom_id: int,
                    ranges: Tuple[AddressRange, ...], *,
                    unmap: bool) -> None:
        atom = self._atom(atom_id)
        if unmap:
            for rng in ranges:
                atom.unmap_range(rng)
            self.process.amu.execute(atom_unmap(atom_id, ranges))
        else:
            for rng in ranges:
                atom.map_range(rng)
            self.process.amu.execute(atom_map(atom_id, ranges))
        self._notify()

    def atom_remap(self, atom_id: int, start: int, size: int) -> None:
        """Convenience: drop the atom's whole mapping, then map a new
        1-D range.  This is the per-tile idiom of Section 5.2 ("when the
        program is done with one partition, it unmaps the current
        partition and maps the next partition to the same atom").
        """
        atom = self._atom(atom_id)
        old = tuple(atom.iter_ranges())
        if old:
            self._map_ranges(atom_id, old, unmap=True)
        self.atom_map(atom_id, start, size)

    def atom_remap_2d(self, atom_id: int, start: int, size_x: int,
                      size_y: int, len_x: int) -> None:
        """Drop the atom's mapping, then map a 2-D block (tile slide)."""
        atom = self._atom(atom_id)
        old = tuple(atom.iter_ranges())
        if old:
            self._map_ranges(atom_id, old, unmap=True)
        self.atom_map_2d(atom_id, start, size_x, size_y, len_x)

    # -- ACTIVATE / DEACTIVATE --------------------------------------------

    def atom_activate(self, atom_id: int) -> None:
        """ACTIVATE: the atom's attributes become valid for its data."""
        self._atom(atom_id).activate()
        self.process.amu.execute(atom_activate(atom_id))
        self._notify()

    def atom_deactivate(self, atom_id: int) -> None:
        """DEACTIVATE: the atom's attributes stop applying."""
        self._atom(atom_id).deactivate()
        self.process.amu.execute(atom_deactivate(atom_id))
        self._notify()

    # -- Compile/load-time glue -------------------------------------------

    def compile_segment(self) -> AtomSegment:
        """The compiler pass: summarize all created atoms (Section 3.5.2)."""
        pairs = sorted(
            (atom_id, atom.attributes)
            for atom_id, atom in self.process.atoms.items()
        )
        return summarize(pairs)

    @property
    def xmem_instruction_count(self) -> int:
        """XMem ISA instructions this process has executed so far."""
        return self.process.amu.stats.xmem_instructions


def _block_2d(start: int, size_x: int, size_y: int, len_x: int
              ) -> Tuple[AddressRange, ...]:
    """Linearize a 2-D block into per-row 1-D VA ranges."""
    return tuple(
        AddressRange.from_size(start + row * len_x, size_x)
        for row in range(size_y)
    )


def _block_3d(start: int, size_x: int, size_y: int, size_z: int,
              len_x: int, len_y: int) -> Tuple[AddressRange, ...]:
    """Linearize a 3-D block into per-row 1-D VA ranges."""
    plane_bytes = len_x * len_y
    ranges: List[AddressRange] = []
    for plane in range(size_z):
        ranges.extend(
            _block_2d(start + plane * plane_bytes, size_x, size_y, len_x)
        )
    return tuple(ranges)
