"""The atom segment: compile-time summarization of atoms (Section 3.5.2).

At compile time, the compiler walks the program's ``CreateAtom`` calls,
assigns consecutive atom IDs, and emits a table of (atom ID ->
attributes) into a dedicated *atom segment* of the object file.  The
segment carries a **version identifier** so the attribute format can
evolve across architecture generations: newer loaders interpret newer
fields, older XMem systems skip unknown formats entirely, and unknown
*fields* inside a known format are ignored (forward compatibility).

At load time the OS reads the segment and fills the process's Global
Attribute Table (:mod:`repro.core.gat`).

We serialize to a plain dict-of-dicts (JSON-shaped) rather than packed
bytes; the compatibility and versioning *behaviour* is what the paper
specifies, and that is fully exercised here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.core.attributes import (
    AtomAttributes,
    DataProperty,
    DataType,
    PatternType,
    RWChar,
    V1_ATTRIBUTE_FIELDS,
    make_attributes,
)
from repro.core.errors import XMemError
from repro.core.gat import GlobalAttributeTable

#: The format version this implementation emits.
CURRENT_VERSION = 1

#: Versions this implementation knows how to interpret.
SUPPORTED_VERSIONS = frozenset({1})


class SegmentFormatError(XMemError):
    """The atom segment is malformed (not merely unknown-version)."""


@dataclass
class AtomSegment:
    """The serialized atom table embedded in a program binary."""

    version: int = CURRENT_VERSION
    entries: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def atom_count(self) -> int:
        """Number of atoms summarized in the segment."""
        return len(self.entries)


def encode_attributes(attrs: AtomAttributes) -> Dict[str, Any]:
    """Serialize one attribute record into the v1 segment encoding."""
    return {
        "name": attrs.name,
        "data_type": attrs.data.data_type.value,
        "properties": [p.name for p in DataProperty
                       if p is not DataProperty.NONE and attrs.data.has(p)],
        "pattern": attrs.access.pattern.pattern.value,
        "stride_bytes": attrs.access.pattern.stride_bytes,
        "rw": attrs.access.rw.value,
        "access_intensity": attrs.access.access_intensity,
        "reuse": attrs.reuse,
    }


def decode_attributes(entry: Dict[str, Any]) -> AtomAttributes:
    """Deserialize one v1 entry, ignoring unknown fields.

    Unknown fields are silently skipped -- that is the forward-
    compatibility rule -- but known fields with bad values raise
    :class:`SegmentFormatError` because they indicate corruption, not a
    newer format.
    """
    known = {k: v for k, v in entry.items() if k in V1_ATTRIBUTE_FIELDS}
    try:
        return make_attributes(
            name=known.get("name", ""),
            data_type=DataType(known.get("data_type", "unknown")),
            properties=[DataProperty[p] for p in known.get("properties", [])],
            pattern=PatternType(known.get("pattern", "non_det")),
            stride_bytes=known.get("stride_bytes"),
            rw=RWChar(known.get("rw", "read_write")),
            access_intensity=known.get("access_intensity", 0),
            reuse=known.get("reuse", 0),
        )
    except (KeyError, ValueError, XMemError) as exc:
        raise SegmentFormatError(f"bad segment entry {entry!r}: {exc}") from exc


def summarize(atoms: List[Tuple[int, AtomAttributes]]) -> AtomSegment:
    """The compiler pass: summarize created atoms into a segment.

    ``atoms`` must be (atom_id, attributes) with consecutive IDs from 0,
    because the AST and GAT index by ID.
    """
    expected = list(range(len(atoms)))
    if [a for a, _ in atoms] != expected:
        raise SegmentFormatError(
            f"atom ids must be consecutive from 0, got {[a for a, _ in atoms]}"
        )
    return AtomSegment(
        version=CURRENT_VERSION,
        entries=[encode_attributes(attrs) for _, attrs in atoms],
    )


def load_segment(segment: AtomSegment, gat: GlobalAttributeTable) -> int:
    """The OS loader: fill the GAT from a binary's atom segment.

    Returns the number of atoms loaded.  An unknown segment version is
    *ignored* (returns 0): "older XMem architectures can simply ignore
    unknown formats" -- the program still runs, just without hints.
    """
    if segment.version not in SUPPORTED_VERSIONS:
        return 0
    for atom_id, entry in enumerate(segment.entries):
        gat.install(atom_id, decode_attributes(entry))
    return segment.atom_count
