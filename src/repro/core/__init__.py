"""XMem core: the Atom abstraction and the end-to-end XMem system.

This package is the paper's primary contribution: the atom
(:mod:`repro.core.atom`), its attributes (:mod:`repro.core.attributes`),
the application library (:mod:`repro.core.xmemlib`), and the hardware/OS
machinery -- AAM, AST, GAT, PATs, Attribute Translator, and the AMU with
its lookaside buffer.
"""

from repro.core.aam import AAMConfig, AtomAddressMap
from repro.core.amu import AtomLookasideBuffer, AtomManagementUnit
from repro.core.ast_table import AtomStatusTable
from repro.core.atom import Atom, AtomState, MAX_ATOMS_PER_PROCESS
from repro.core.attributes import (
    AccessPattern,
    AccessProperties,
    AtomAttributes,
    DataLocality,
    DataProperty,
    DataType,
    DataValueProperties,
    PatternType,
    RWChar,
    make_attributes,
)
from repro.core.errors import (
    AddressRangeError,
    AllocationError,
    AtomCapacityError,
    AtomError,
    ConfigurationError,
    ImmutableAttributeError,
    InvalidAttributeError,
    MappingError,
    TranslationError,
    UnknownAtomError,
    XMemError,
)
from repro.core.gat import GlobalAttributeTable
from repro.core.profiler import AccessProfiler, RegionProfile
from repro.core.pat import (
    AttributeTranslator,
    CachePrimitives,
    CompressionPrimitives,
    DramPrimitives,
    PrefetcherPrimitives,
    PrivateAttributeTable,
    make_standard_pats,
)
from repro.core.ranges import AddressRange, RangeSet
from repro.core.segment import AtomSegment, load_segment, summarize
from repro.core.xmemlib import XMemLib, XMemProcess

__all__ = [
    "AAMConfig",
    "AccessProfiler",
    "RegionProfile",
    "AccessPattern",
    "AccessProperties",
    "AddressRange",
    "AddressRangeError",
    "AllocationError",
    "Atom",
    "AtomAddressMap",
    "AtomAttributes",
    "AtomCapacityError",
    "AtomError",
    "AtomLookasideBuffer",
    "AtomManagementUnit",
    "AtomSegment",
    "AtomState",
    "AtomStatusTable",
    "AttributeTranslator",
    "CachePrimitives",
    "CompressionPrimitives",
    "ConfigurationError",
    "DataLocality",
    "DataProperty",
    "DataType",
    "DataValueProperties",
    "DramPrimitives",
    "GlobalAttributeTable",
    "ImmutableAttributeError",
    "InvalidAttributeError",
    "MAX_ATOMS_PER_PROCESS",
    "MappingError",
    "PatternType",
    "PrefetcherPrimitives",
    "PrivateAttributeTable",
    "RWChar",
    "RangeSet",
    "TranslationError",
    "UnknownAtomError",
    "XMemError",
    "XMemLib",
    "XMemProcess",
    "load_segment",
    "make_attributes",
    "make_standard_pats",
    "summarize",
]
