"""Dynamic profiling: inferring atom attributes from an access stream.

Section 3.5.1 names three ways atoms get expressed: program annotation,
static compiler analysis, or **dynamic profiling**.  This module is the
profiling path: it watches a memory trace, builds per-region access
profiles, and infers the atom attributes a programmer would have
written -- pattern (with stride), read/write character, relative access
intensity, and relative reuse.  ``instrument`` then creates, maps, and
activates the inferred atoms through XMemLib.

Regions are either supplied explicitly (e.g., the allocator's
structure boundaries) or derived from fixed-size virtual regions.

Classification heuristics:

* **REGULAR**   -- one delta dominates the consecutive-access deltas;
* **IRREGULAR** -- no dominant stride, but the visit sequence repeats
  (the second pass over the region re-walks the first pass's order);
* **NON_DET**   -- neither.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.attributes import (
    AtomAttributes,
    PatternType,
    RWChar,
    make_attributes,
)
from repro.core.errors import ConfigurationError
from repro.core.ranges import AddressRange

#: Fraction of deltas one stride must own to classify as REGULAR.
STRIDE_DOMINANCE = 0.6
#: Length of the visit-order fingerprint used for IRREGULAR detection.
FINGERPRINT_LEN = 64
#: Fraction of post-warmup accesses that must re-walk the recorded
#: visit order to call the region IRREGULAR (repeatable).  A region
#: whose accesses are random re-syncs constantly but almost never
#: *follows* the order, so its share stays near zero.
REPEAT_THRESHOLD = 0.5
#: Below this write share, data profiles as READ_ONLY.
READ_ONLY_MAX_WRITE_SHARE = 0.02
#: At and above this write share, data profiles as WRITE_HEAVY.
WRITE_HEAVY_MIN_SHARE = 0.5

LINE = 64


@dataclass
class RegionProfile:
    """Raw per-region observation state."""

    region: AddressRange
    accesses: int = 0
    writes: int = 0
    last_addr: Optional[int] = None
    deltas: Counter = field(default_factory=Counter)
    unique_lines: set = field(default_factory=set)
    #: First FINGERPRINT_LEN distinct-line visit order.
    fingerprint: List[int] = field(default_factory=list)
    #: Matches of later visits against the fingerprint.
    replay_hits: int = 0
    replay_total: int = 0
    _replay_pos: int = 0
    _fp_index: Dict[int, int] = field(default_factory=dict)

    def observe(self, addr: int, is_write: bool) -> None:
        """Record one access to this region."""
        self.accesses += 1
        if is_write:
            self.writes += 1
        if self.last_addr is not None:
            delta = addr - self.last_addr
            if delta:
                self.deltas[delta] += 1
        self.last_addr = addr
        line = addr // LINE
        self.unique_lines.add(line)
        if len(self.fingerprint) < FINGERPRINT_LEN:
            if not self.fingerprint or self.fingerprint[-1] != line:
                self.fingerprint.append(line)
                self._fp_index[line] = len(self.fingerprint) - 1
        else:
            # Compare later traffic against the recorded visit order:
            # a hit means the access *follows* the order; a known line
            # out of order merely re-synchronizes the cursor.
            expected = self.fingerprint[self._replay_pos]
            self.replay_total += 1
            if line == expected:
                self.replay_hits += 1
                self._replay_pos = (self._replay_pos + 1) \
                    % len(self.fingerprint)
            else:
                pos = self._fp_index.get(line)
                if pos is not None:
                    self._replay_pos = (pos + 1) % len(self.fingerprint)

    # -- Derived quantities ------------------------------------------------

    @property
    def write_share(self) -> float:
        """Fraction of accesses that write."""
        return self.writes / self.accesses if self.accesses else 0.0

    @property
    def dominant_stride(self) -> Optional[int]:
        """The stride owning >= STRIDE_DOMINANCE of deltas, if any."""
        total = sum(self.deltas.values())
        if not total:
            return None
        stride, count = self.deltas.most_common(1)[0]
        return stride if count / total >= STRIDE_DOMINANCE else None

    @property
    def replay_share(self) -> float:
        """How much of the later traffic re-walks the fingerprint."""
        return self.replay_hits / self.replay_total \
            if self.replay_total else 0.0

    @property
    def reuse_factor(self) -> float:
        """Mean touches per distinct line."""
        return self.accesses / len(self.unique_lines) \
            if self.unique_lines else 0.0

    def classify_pattern(self) -> Tuple[PatternType, Optional[int]]:
        """(pattern, stride) per the module heuristics."""
        stride = self.dominant_stride
        if stride is not None:
            return PatternType.REGULAR, stride
        if self.replay_share >= REPEAT_THRESHOLD:
            return PatternType.IRREGULAR, None
        return PatternType.NON_DET, None

    def classify_rw(self) -> RWChar:
        """RWChar from the observed write share."""
        share = self.write_share
        if share <= READ_ONLY_MAX_WRITE_SHARE:
            return RWChar.READ_ONLY
        if share >= WRITE_HEAVY_MIN_SHARE:
            return RWChar.WRITE_HEAVY
        return RWChar.READ_WRITE


class AccessProfiler:
    """Observes a trace and infers per-region atom attributes."""

    def __init__(self,
                 regions: Optional[Iterable[Tuple[str, AddressRange]]]
                 = None,
                 region_bytes: int = 1 << 20) -> None:
        if regions is None and region_bytes <= 0:
            raise ConfigurationError("region_bytes must be positive")
        self.region_bytes = region_bytes
        self._named: List[Tuple[str, AddressRange, RegionProfile]] = []
        if regions is not None:
            for name, rng in regions:
                self._named.append((name, rng, RegionProfile(rng)))
        self._auto: Dict[int, RegionProfile] = {}

    # -- Observation -----------------------------------------------------

    def observe(self, addr: int, is_write: bool = False) -> None:
        """Feed one access."""
        for _name, rng, prof in self._named:
            if addr in rng:
                prof.observe(addr, is_write)
                return
        key = addr // self.region_bytes
        prof = self._auto.get(key)
        if prof is None:
            base = key * self.region_bytes
            prof = self._auto[key] = RegionProfile(
                AddressRange.from_size(base, self.region_bytes)
            )
        prof.observe(addr, is_write)

    def observe_trace(self, trace) -> int:
        """Feed a whole trace of MemAccess events; returns count."""
        from repro.cpu.trace import MemAccess
        n = 0
        for ev in trace:
            if isinstance(ev, MemAccess):
                self.observe(ev.vaddr, ev.is_write)
                n += 1
        return n

    # -- Inference ----------------------------------------------------------

    def profiles(self) -> List[Tuple[str, RegionProfile]]:
        """All touched regions, named ones first."""
        out = [(name, prof) for name, _rng, prof in self._named
               if prof.accesses]
        out.extend((f"region@{k * self.region_bytes:#x}", p)
                   for k, p in sorted(self._auto.items())
                   if p.accesses)
        return out

    def infer_attributes(self) -> Dict[str, AtomAttributes]:
        """The inferred atom attributes, one per touched region.

        Intensity and reuse are *relative* 8-bit quantities (Section
        3.3), so they are scaled against the hottest / most-reused
        region in this profile.
        """
        profs = self.profiles()
        if not profs:
            return {}
        max_acc = max(p.accesses for _, p in profs)
        max_reuse = max(p.reuse_factor for _, p in profs)
        out = {}
        for name, prof in profs:
            pattern, stride = prof.classify_pattern()
            reuse = 0
            if max_reuse > 1.0 and prof.reuse_factor > 1.0:
                reuse = round(255 * (prof.reuse_factor - 1.0)
                              / (max_reuse - 1.0))
            out[name] = make_attributes(
                name,
                pattern=pattern,
                stride_bytes=stride,
                rw=prof.classify_rw(),
                access_intensity=max(
                    1, round(255 * prof.accesses / max_acc)),
                reuse=min(255, reuse),
            )
        return out

    def instrument(self, lib) -> Dict[str, int]:
        """Create, map, and activate atoms for every inferred region.

        Returns region name -> atom id.  This is the full profiling
        path of Figure 1: the application did not annotate anything;
        the profile stands in for it.
        """
        attrs = self.infer_attributes()
        spans = {name: rng for name, rng, _ in self._named}
        for key in self._auto:
            base = key * self.region_bytes
            spans[f"region@{base:#x}"] = AddressRange.from_size(
                base, self.region_bytes)
        out = {}
        for name, a in attrs.items():
            atom_id = lib.create_atom(
                name,
                pattern=a.access.pattern.pattern,
                stride_bytes=a.access.pattern.stride_bytes,
                rw=a.access.rw,
                access_intensity=a.access_intensity,
                reuse=a.reuse,
            )
            rng = spans[name]
            lib.atom_map(atom_id, rng.start, rng.size)
            lib.atom_activate(atom_id)
            out[name] = atom_id
        return out
