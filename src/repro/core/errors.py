"""Exception hierarchy for the XMem system.

All XMem errors derive from :class:`XMemError` so callers can catch the
whole family with a single ``except`` clause.  The hierarchy mirrors the
places where the paper's invariants (Section 3.2) can be violated:
attribute immutability, the many-to-one VA-to-atom mapping, atom-ID
capacity, and the operator state machine.
"""

from __future__ import annotations


class XMemError(Exception):
    """Base class for every error raised by the XMem system."""


class AtomError(XMemError):
    """Base class for errors concerning a specific atom."""


class UnknownAtomError(AtomError):
    """An operation referenced an atom ID that was never created."""

    def __init__(self, atom_id: int) -> None:
        super().__init__(f"unknown atom id {atom_id}")
        self.atom_id = atom_id


class AtomCapacityError(AtomError):
    """The per-process atom-ID space (default 256 IDs) is exhausted."""


class ImmutableAttributeError(AtomError):
    """An attempt was made to mutate the attributes of a created atom.

    Section 3.2: "While atoms are dynamically created, the attributes of
    an atom cannot be changed once created."
    """


class MappingError(XMemError):
    """Base class for errors in the VA/PA <-> atom mapping machinery."""


class AddressRangeError(MappingError):
    """A virtual-address range is malformed (negative size, overflow...)."""


class InvalidAttributeError(XMemError):
    """An attribute value is outside its defined domain.

    For example, reuse and access-intensity are 8-bit quantities
    (Section 3.3); values outside [0, 255] are rejected at creation.
    """


class TranslationError(XMemError):
    """The MMU could not translate a virtual address (unmapped page)."""

    def __init__(self, vaddr: int) -> None:
        super().__init__(f"no translation for virtual address {vaddr:#x}")
        self.vaddr = vaddr


class AllocationError(XMemError):
    """The OS could not satisfy a physical/virtual memory allocation."""


class ConfigurationError(XMemError):
    """A simulator component was configured with inconsistent parameters."""


class ScenarioError(ConfigurationError):
    """A declarative scenario spec or imported trace is malformed.

    Raised by :mod:`repro.scenarios` for schema violations, malformed
    importer input (truncated lines, bad hex, out-of-range sizes), and
    integrity-check failures.  Subclasses :class:`ConfigurationError`
    so every existing boundary keeps working: the CLI's exit-2 paths
    and ``repro serve``'s HTTP-400 mapping catch it for free.
    """
