"""Overhead model reproducing the arithmetic of Section 4.4.

Four overhead categories:

1. **Memory storage** -- AAM, AST, GAT, PATs.  With the defaults the AAM
   is 0.2% of physical memory (16 MB on an 8 GB system), the AST 32 B,
   and the GAT a few KB.
2. **Instructions** -- XMem ISA instructions executed relative to total
   instructions; the paper measures 0.014% on average, at most 0.2%.
3. **Hardware area** -- the AMU + Attribute Translator measure
   0.144 mm^2 at 14 nm (CACTI 6.5), 0.03% of a Xeon E5-2698.  We carry
   these as constants and expose the ratio computation.
4. **Context switch** -- one extra register (~1 ns on a 3-5 us switch)
   plus flushing the ALB and PATs (~700 ns).

These numbers anchor ``benchmarks/test_sec44_overheads.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aam import AAMConfig
from repro.core.attributes import AtomAttributes

#: CACTI 6.5 @ 14 nm area of AMU + Attribute Translator (paper value).
XMEM_HW_AREA_MM2 = 0.144
#: Die area of the reference Xeon E5-2698 used for the ratio.
XEON_E5_2698_AREA_MM2 = 480.0

#: Context-switch costs from Section 4.4 (nanoseconds).
EXTRA_REGISTER_SWITCH_NS = 1.0
ALB_PAT_FLUSH_NS = 700.0
TYPICAL_CONTEXT_SWITCH_NS = 4000.0


@dataclass(frozen=True)
class StorageOverheads:
    """Byte counts of every XMem table for one configuration."""

    aam_bytes: int
    ast_bytes: int
    gat_bytes: int
    phys_memory_bytes: int

    @property
    def aam_fraction(self) -> float:
        """AAM size as a fraction of physical memory (paper: 0.2%)."""
        return self.aam_bytes / self.phys_memory_bytes

    @property
    def total_bytes(self) -> int:
        """All table storage combined."""
        return self.aam_bytes + self.ast_bytes + self.gat_bytes


def storage_overheads(
    phys_memory_bytes: int,
    aam_config: AAMConfig = AAMConfig(),
    max_atoms: int = 256,
) -> StorageOverheads:
    """Compute the Section 4.4(1) storage numbers for a configuration."""
    ast_bytes = (max_atoms + 7) // 8
    gat_bytes = max_atoms * AtomAttributes.ENCODED_SIZE_BYTES
    return StorageOverheads(
        aam_bytes=aam_config.storage_bytes(phys_memory_bytes),
        ast_bytes=ast_bytes,
        gat_bytes=gat_bytes,
        phys_memory_bytes=phys_memory_bytes,
    )


def instruction_overhead(xmem_instructions: int,
                         total_instructions: int) -> float:
    """Fraction of dynamic instructions that are XMem operations.

    The paper reports 0.014% average / 0.2% worst case across its
    workloads; our instrumented Polybench runs land in the same band.
    """
    if total_instructions <= 0:
        return 0.0
    return xmem_instructions / total_instructions


def hardware_area_fraction(
    xmem_area_mm2: float = XMEM_HW_AREA_MM2,
    cpu_area_mm2: float = XEON_E5_2698_AREA_MM2,
) -> float:
    """XMem hardware area relative to the CPU die (paper: 0.03%)."""
    return xmem_area_mm2 / cpu_area_mm2


def context_switch_overhead_fraction(
    switch_ns: float = TYPICAL_CONTEXT_SWITCH_NS,
) -> float:
    """Added context-switch latency as a fraction of a typical switch.

    One extra register save plus the ALB/PAT flush, over a 3-5 us
    context switch: well under 20%.
    """
    added = EXTRA_REGISTER_SWITCH_NS + ALB_PAT_FLUSH_NS
    return added / switch_ns
