"""Atom Status Table (AST) -- Section 4.2, component (2).

A per-process bitmap recording which atoms are currently active.
``CreateAtom`` assigns IDs consecutively from 0, so the table is
indexed directly by atom ID.  With the paper's 256-atom budget the AST
is 256 bits = 32 B per application.
"""

from __future__ import annotations

from repro.core.atom import MAX_ATOMS_PER_PROCESS
from repro.core.errors import ConfigurationError, UnknownAtomError


class AtomStatusTable:
    """Bitmap of atom activation state, updated by the AMU.

    The table deliberately models the hardware structure: a fixed-size
    bit vector, not a Python set, so the storage-overhead arithmetic of
    Section 4.4 falls out of the geometry.
    """

    def __init__(self, max_atoms: int = MAX_ATOMS_PER_PROCESS) -> None:
        if max_atoms <= 0:
            raise ConfigurationError(f"max_atoms must be > 0: {max_atoms}")
        self.max_atoms = max_atoms
        self._bits = bytearray((max_atoms + 7) // 8)

    def _check(self, atom_id: int) -> None:
        if not 0 <= atom_id < self.max_atoms:
            raise UnknownAtomError(atom_id)

    def activate(self, atom_id: int) -> None:
        """Set the active bit for ``atom_id`` (ATOM_ACTIVATE)."""
        self._check(atom_id)
        self._bits[atom_id >> 3] |= 1 << (atom_id & 7)

    def deactivate(self, atom_id: int) -> None:
        """Clear the active bit for ``atom_id`` (ATOM_DEACTIVATE)."""
        self._check(atom_id)
        self._bits[atom_id >> 3] &= ~(1 << (atom_id & 7))

    def is_active(self, atom_id: int) -> bool:
        """Whether ``atom_id`` is currently active."""
        self._check(atom_id)
        return bool(self._bits[atom_id >> 3] & (1 << (atom_id & 7)))

    def active_ids(self) -> list:
        """All active atom IDs, in increasing order."""
        return [i for i in range(self.max_atoms) if self.is_active(i)]

    def clear(self) -> None:
        """Deactivate every atom (process teardown / exec)."""
        for i in range(len(self._bits)):
            self._bits[i] = 0

    @property
    def storage_bytes(self) -> int:
        """Bitmap size in bytes: 32 B at the default 256-atom budget."""
        return len(self._bits)

    def snapshot(self) -> bytes:
        """Immutable copy of the bitmap (saved on context switch)."""
        return bytes(self._bits)

    def restore(self, snapshot: bytes) -> None:
        """Reload the bitmap from a context-switch snapshot."""
        if len(snapshot) != len(self._bits):
            raise ConfigurationError(
                f"snapshot size {len(snapshot)} != AST size {len(self._bits)}"
            )
        self._bits = bytearray(snapshot)
