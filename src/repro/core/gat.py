"""Global Attribute Table (GAT) -- Section 4.2, component (3).

The GAT is the OS-managed, kernel-space table holding the immutable
attributes of every atom in a process.  It is filled at program-load
time from the binary's atom segment (:mod:`repro.core.segment`), and a
per-process pointer register selects the live GAT on a context switch.

Because attributes are immutable, the GAT is write-once per atom ID.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.atom import MAX_ATOMS_PER_PROCESS
from repro.core.attributes import AtomAttributes
from repro.core.errors import (
    AtomCapacityError,
    ImmutableAttributeError,
    UnknownAtomError,
)


class GlobalAttributeTable:
    """Per-process atom-ID -> attributes table, managed by the OS."""

    def __init__(self, max_atoms: int = MAX_ATOMS_PER_PROCESS) -> None:
        self.max_atoms = max_atoms
        self._entries: Dict[int, AtomAttributes] = {}

    def install(self, atom_id: int, attributes: AtomAttributes) -> None:
        """Record the attributes of a newly created atom.

        Raises :class:`ImmutableAttributeError` if the slot is already
        occupied with *different* attributes (re-installing identical
        attributes is idempotent, matching repeated ``CreateAtom`` calls
        at the same program point returning the same ID).
        """
        if not 0 <= atom_id < self.max_atoms:
            raise AtomCapacityError(
                f"atom id {atom_id} outside 0..{self.max_atoms - 1}"
            )
        existing = self._entries.get(atom_id)
        if existing is not None and existing != attributes:
            raise ImmutableAttributeError(
                f"atom {atom_id} already has attributes; create a new atom "
                f"to express different semantics"
            )
        self._entries[atom_id] = attributes

    def lookup(self, atom_id: int) -> AtomAttributes:
        """Attributes of ``atom_id``; raises if never installed."""
        try:
            return self._entries[atom_id]
        except KeyError:
            raise UnknownAtomError(atom_id) from None

    def get(self, atom_id: int) -> Optional[AtomAttributes]:
        """Attributes of ``atom_id`` or None (non-raising variant)."""
        return self._entries.get(atom_id)

    def __contains__(self, atom_id: int) -> bool:
        return atom_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[int, AtomAttributes]]:
        return iter(sorted(self._entries.items()))

    @property
    def storage_bytes(self) -> int:
        """Kernel-space footprint of the table.

        Section 4.4: 19 B of attributes per atom; with the full 256-atom
        budget provisioned the GAT is ~4.8 KB, and the paper's "2.8 KB"
        figure corresponds to the attribute payload of about 150 atoms.
        We account for the dense table over ``max_atoms`` slots.
        """
        return self.max_atoms * AtomAttributes.ENCODED_SIZE_BYTES
