"""Atom Address Map (AAM) -- Section 4.2, component (1).

The AAM answers "which atom (if any) does this *physical* address map
to?".  Exact per-byte tracking would be prohibitively large, so the AAM
stores one atom ID per fixed-size *address-range unit* (chunk).  The
system default is 8 cache lines = 512 B, giving 0.2% storage overhead
with 8-bit atom IDs; a 1 KB unit with 6-bit IDs gives 0.07%.

Because XMem is hint-based, this approximation can cause optimization
inaccuracy at chunk boundaries but never affects correctness.

The table is indexed by physical page: conceptually, entry ``p`` holds
the atom IDs of every chunk inside physical page ``p``.  We model it as
a dict keyed by chunk index (sparse -- only mapped chunks are stored),
while the *storage overhead model* accounts for the dense table the
hardware would provision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.atom import resolve_overlap
from repro.core.errors import ConfigurationError
from repro.core.ranges import AddressRange

#: Paper default: 8 cache lines of 64 B.
DEFAULT_CHUNK_BYTES = 512
#: Paper default: 8-bit atom IDs.
DEFAULT_ATOM_ID_BITS = 8


@dataclass(frozen=True)
class AAMConfig:
    """Geometry of the Atom Address Map."""

    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    atom_id_bits: int = DEFAULT_ATOM_ID_BITS
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0 or self.chunk_bytes & (self.chunk_bytes - 1):
            raise ConfigurationError(
                f"chunk_bytes must be a positive power of two, "
                f"got {self.chunk_bytes}"
            )
        if not 1 <= self.atom_id_bits <= 16:
            raise ConfigurationError(
                f"atom_id_bits must be in [1, 16], got {self.atom_id_bits}"
            )
        if self.page_bytes % self.chunk_bytes:
            raise ConfigurationError(
                f"page size {self.page_bytes} not a multiple of chunk size "
                f"{self.chunk_bytes}"
            )

    @property
    def max_atom_id(self) -> int:
        """Largest representable atom ID."""
        return (1 << self.atom_id_bits) - 1

    @property
    def chunks_per_page(self) -> int:
        """Number of address-range units per physical page."""
        return self.page_bytes // self.chunk_bytes

    def storage_overhead_fraction(self) -> float:
        """Fraction of physical memory the dense AAM consumes.

        One atom ID (``atom_id_bits`` bits) per ``chunk_bytes`` bytes.
        With the defaults this is 8 bits / 512 B = 0.195% -- the paper's
        "0.2% storage overhead"; 6 bits / 1 KB gives 0.073% ("0.07%").
        """
        return self.atom_id_bits / 8 / self.chunk_bytes

    def storage_bytes(self, phys_memory_bytes: int) -> int:
        """Dense AAM size in bytes for a given physical memory size."""
        chunks = phys_memory_bytes // self.chunk_bytes
        return (chunks * self.atom_id_bits + 7) // 8


class AtomAddressMap:
    """The physical-address -> atom-ID map.

    ``map_range``/``unmap_range`` are invoked by the AMU when the CPU
    executes ``ATOM_MAP``/``ATOM_UNMAP``; ``lookup`` serves
    ``ATOM_LOOKUP`` requests from hardware components (through the AMU's
    atom lookaside buffer).
    """

    def __init__(self, config: Optional[AAMConfig] = None) -> None:
        self.config = config or AAMConfig()
        #: chunk index -> atom ID (sparse model of the dense table).
        self._chunks: Dict[int, int] = {}

    # -- Updates (from the AMU) ----------------------------------------

    def map_range(self, pa_range: AddressRange, atom_id: int) -> int:
        """Associate every chunk touched by ``pa_range`` with ``atom_id``.

        Returns the number of chunk entries written.  A chunk already
        owned by another atom is overwritten: the many-to-one invariant
        says the latest mapping wins (:func:`resolve_overlap`).
        """
        if not 0 <= atom_id <= self.config.max_atom_id:
            raise ConfigurationError(
                f"atom id {atom_id} exceeds {self.config.atom_id_bits}-bit "
                f"AAM encoding"
            )
        written = 0
        for chunk in pa_range.chunks(self.config.chunk_bytes):
            self._chunks[chunk] = resolve_overlap(
                self._chunks.get(chunk), atom_id
            )
            written += 1
        return written

    def unmap_range(self, pa_range: AddressRange,
                    atom_id: Optional[int] = None) -> int:
        """Clear chunks touched by ``pa_range``.

        If ``atom_id`` is given, only chunks currently owned by that atom
        are cleared (so unmapping atom A does not destroy a later mapping
        of the same bytes to atom B).  Returns chunks cleared.
        """
        cleared = 0
        for chunk in pa_range.chunks(self.config.chunk_bytes):
            owner = self._chunks.get(chunk)
            if owner is None:
                continue
            if atom_id is not None and owner != atom_id:
                continue
            del self._chunks[chunk]
            cleared += 1
        return cleared

    def clear(self) -> None:
        """Drop every mapping (e.g., on process teardown)."""
        self._chunks.clear()

    # -- Lookups (from components, via the AMU/ALB) --------------------

    def lookup(self, paddr: int) -> Optional[int]:
        """Atom ID owning the chunk containing ``paddr``, or None."""
        return self._chunks.get(paddr // self.config.chunk_bytes)

    def lookup_page(self, page_index: int) -> Tuple[Optional[int], ...]:
        """All chunk entries of one physical page (the ALB fill unit).

        The ALB caches whole pages: its tag is the physical page index
        and its data is this tuple.
        """
        base = page_index * self.config.chunks_per_page
        return tuple(
            self._chunks.get(base + i)
            for i in range(self.config.chunks_per_page)
        )

    def mapped_chunks(self, atom_id: int) -> Iterable[int]:
        """Chunk indices currently owned by ``atom_id`` (for tests)."""
        return (c for c, a in self._chunks.items() if a == atom_id)

    @property
    def mapped_chunk_count(self) -> int:
        """Number of chunks with a live atom mapping."""
        return len(self._chunks)

    def footprint_bytes(self, atom_id: int) -> int:
        """Bytes of physical memory currently mapped to ``atom_id``.

        Measured at chunk granularity, since that is all the hardware
        table knows.
        """
        count = sum(1 for a in self._chunks.values() if a == atom_id)
        return count * self.config.chunk_bytes
