"""The Atom: XMem's hardware-software abstraction (Sections 3.1-3.2).

An atom is a named region of semantically-similar program data.  It has
three components:

* **Attributes** -- immutable program semantics (:class:`AtomAttributes`);
* **Mapping** -- the set of virtual-address ranges it currently
  describes (a :class:`RangeSet`; possibly non-contiguous);
* **State** -- ``ACTIVE`` or ``INACTIVE``; attributes are recognized by
  the system only while the atom is active.

The invariants of Section 3.2 are enforced here:

* *Immutable attributes*: ``attributes`` is a frozen dataclass and the
  ``Atom`` exposes no setter; callers who need different attributes
  create a new atom.
* *Flexible mapping*: ``map_range``/``unmap_range`` may be called any
  number of times with ranges of any size.
* *Activation/deactivation*: toggling state is cheap and does not touch
  the mapping.

The *many-to-one VA-atom* invariant is global across atoms, so it is
enforced by the mapping tables (:mod:`repro.core.aam`), not here.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional

from repro.core.attributes import AtomAttributes
from repro.core.ranges import AddressRange, RangeSet

#: Default size of the per-process atom-ID space.  Section 4.2 assumes up
#: to 256 atoms per application ("all benchmarks in our experiments had
#: under 10 atoms").
MAX_ATOMS_PER_PROCESS = 256


class AtomState(enum.Enum):
    """Activation state of an atom (Section 3.1)."""

    INACTIVE = "inactive"
    ACTIVE = "active"


class Atom:
    """One atom instance, identified by a process-local integer ID.

    Atoms are created through :class:`repro.core.xmemlib.XMemLib` (the
    ``CREATE`` operator), not constructed directly by applications.
    """

    __slots__ = ("atom_id", "attributes", "_mapping", "_state")

    def __init__(self, atom_id: int, attributes: AtomAttributes) -> None:
        self.atom_id = atom_id
        self.attributes = attributes
        self._mapping = RangeSet()
        self._state = AtomState.INACTIVE

    # -- State ---------------------------------------------------------

    @property
    def state(self) -> AtomState:
        """Current activation state."""
        return self._state

    @property
    def is_active(self) -> bool:
        """True while the system should honour this atom's attributes."""
        return self._state is AtomState.ACTIVE

    def activate(self) -> None:
        """Mark the atom's attributes valid for its mapped data."""
        self._state = AtomState.ACTIVE

    def deactivate(self) -> None:
        """Mark the atom's attributes invalid (mapping is retained)."""
        self._state = AtomState.INACTIVE

    # -- Mapping -------------------------------------------------------

    def map_range(self, rng: AddressRange) -> None:
        """Map a virtual-address range to this atom."""
        self._mapping.add(rng)

    def unmap_range(self, rng: AddressRange) -> None:
        """Remove a virtual-address range from this atom's mapping."""
        self._mapping.remove(rng)

    def unmap_all(self) -> None:
        """Drop the entire mapping (used when re-purposing an atom)."""
        self._mapping = RangeSet()

    def covers(self, vaddr: int) -> bool:
        """True if ``vaddr`` is currently mapped to this atom."""
        return vaddr in self._mapping

    def iter_ranges(self) -> Iterator[AddressRange]:
        """Iterate over the atom's mapped ranges (sorted, disjoint)."""
        return iter(self._mapping)

    @property
    def mapping(self) -> RangeSet:
        """The atom's mapped ranges (a live view; do not mutate)."""
        return self._mapping

    @property
    def working_set_bytes(self) -> int:
        """The working-set size the atom expresses (Section 3.3).

        The paper infers the working set "from the size of data the atom
        is mapped to"; it is therefore a property of the mapping, not a
        stored attribute.
        """
        return self._mapping.total_bytes

    # -- Convenience ---------------------------------------------------

    @property
    def name(self) -> str:
        """The atom's human-readable name (may be empty)."""
        return self.attributes.name

    @property
    def reuse(self) -> int:
        """The atom's 8-bit relative reuse value."""
        return self.attributes.reuse

    def __repr__(self) -> str:
        return (
            f"Atom(id={self.atom_id}, name={self.name!r}, "
            f"state={self._state.value}, "
            f"ws={self.working_set_bytes}B, ranges={len(self._mapping)})"
        )


def describe_atom(atom: Atom) -> str:
    """Multi-line description of an atom, for debug dumps."""
    lines = [repr(atom), f"  {atom.attributes.describe()}"]
    for rng in atom.iter_ranges():
        lines.append(f"  [{rng.start:#x}, {rng.end:#x}) {rng.size} bytes")
    return "\n".join(lines)


def resolve_overlap(
    existing: Optional[int], incoming: int
) -> int:
    """Resolution rule when a VA chunk is mapped to a second atom.

    The many-to-one invariant says any VA maps to *at most one* atom at a
    time; the latest mapping wins (the program remaps data "to a
    different atom that describes it better", Section 3.2).  Kept as a
    named function so the policy is explicit and testable.
    """
    return incoming
