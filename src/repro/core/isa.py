"""XMem ISA extension (Section 4.1.3).

Two new instruction families let XMemLib talk to the hardware at run
time:

* ``ATOM_MAP`` / ``ATOM_UNMAP`` -- tell the Atom Management Unit (AMU)
  to update the address ranges of an atom.  The mapping parameters
  (base, sizes, row length for 2-D blocks) are conveyed through
  AMU-specific registers; here they travel as fields of the instruction
  object.
* ``ATOM_ACTIVATE`` / ``ATOM_DEACTIVATE`` -- tell the AMU to flip the
  atom's bit in the Atom Status Table.

Instructions are plain frozen dataclasses: the trace engine counts them
(for the Section 4.4 instruction-overhead experiment) and the AMU
interprets them.  They deliberately carry *virtual* addresses -- the
AMU asks the MMU for translations, exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.core.ranges import AddressRange


class AtomOpcode(enum.Enum):
    """Opcodes of the XMem ISA extension."""

    ATOM_MAP = "atom_map"
    ATOM_UNMAP = "atom_unmap"
    ATOM_ACTIVATE = "atom_activate"
    ATOM_DEACTIVATE = "atom_deactivate"


@dataclass(frozen=True)
class AtomInstruction:
    """Base class: one executed XMem instruction."""

    opcode: AtomOpcode
    atom_id: int


@dataclass(frozen=True)
class AtomMapInstruction(AtomInstruction):
    """ATOM_MAP / ATOM_UNMAP with the VA ranges being (un)mapped.

    Multi-dimensional XMemLib calls (``AtomMap2D``/``AtomMap3D``) are
    linearized by the library into a tuple of 1-D VA ranges before the
    instruction is issued; the AMU then broadcasts the higher-dimensional
    geometry to components that want it (Section 4.2).
    """

    va_ranges: Tuple[AddressRange, ...] = field(default=())

    @property
    def total_bytes(self) -> int:
        """Bytes covered by this (un)map operation."""
        return sum(r.size for r in self.va_ranges)


@dataclass(frozen=True)
class AtomStatusInstruction(AtomInstruction):
    """ATOM_ACTIVATE / ATOM_DEACTIVATE."""


def atom_map(atom_id: int, va_ranges: Tuple[AddressRange, ...]
             ) -> AtomMapInstruction:
    """Build an ATOM_MAP instruction."""
    return AtomMapInstruction(AtomOpcode.ATOM_MAP, atom_id, va_ranges)


def atom_unmap(atom_id: int, va_ranges: Tuple[AddressRange, ...]
               ) -> AtomMapInstruction:
    """Build an ATOM_UNMAP instruction."""
    return AtomMapInstruction(AtomOpcode.ATOM_UNMAP, atom_id, va_ranges)


def atom_activate(atom_id: int) -> AtomStatusInstruction:
    """Build an ATOM_ACTIVATE instruction."""
    return AtomStatusInstruction(AtomOpcode.ATOM_ACTIVATE, atom_id)


def atom_deactivate(atom_id: int) -> AtomStatusInstruction:
    """Build an ATOM_DEACTIVATE instruction."""
    return AtomStatusInstruction(AtomOpcode.ATOM_DEACTIVATE, atom_id)
