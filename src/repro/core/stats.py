"""Stat-group primitives shared by every simulated component.

The observability layer (:mod:`repro.sim.stats`) assembles one
queryable tree out of the per-component counter objects.  The pieces
the *components themselves* need live here, at the bottom of the
import graph, so ``repro.mem`` / ``repro.dram`` / ``repro.cpu`` can
use them without importing the simulation package:

* :class:`Histogram` -- a power-of-two-bucketed latency histogram,
  cheap enough to update on the DRAM access path.
* :func:`stat_values` -- the **StatGroup protocol**: any dataclass of
  numeric counters (plus numeric ``@property`` derived rates) *is* a
  stat group; this function extracts its name -> value mapping.  A
  plain mapping or a zero-argument callable returning one also
  qualifies (used for lazily aggregated groups, e.g. per-bank DRAM
  totals).

Composite components additionally implement ``stat_groups()`` yielding
``(relative_path, group)`` pairs, which is how they register their
sub-trees into a :class:`repro.sim.stats.StatsRegistry`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Mapping, Tuple, Union

#: What a stat group flattens to: plain counters, or one nested level
#: (histogram buckets).
StatValue = Union[int, float, Dict[str, Union[int, float]]]


class Histogram:
    """Power-of-two-bucketed histogram of non-negative samples.

    Each sample lands in the smallest bucket ``2**k`` that is >= its
    value (minimum bucket 1).  The bucket dict stays small (one entry
    per occupied power of two), updates are O(1), and two histograms
    merge by adding bucket counts -- the properties the stats tree
    needs from a latency histogram.
    """

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def record(self, value: float) -> None:
        """Add one sample (negative values clamp to the first bucket)."""
        v = int(value)
        bound = 1 if v <= 1 else 1 << (v - 1).bit_length()
        buckets = self.buckets
        buckets[bound] = buckets.get(bound, 0) + 1
        self.count += 1
        self.total += value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one."""
        for bound, n in other.buckets.items():
            self.buckets[bound] = self.buckets.get(bound, 0) + n
        self.count += other.count
        self.total += other.total

    @property
    def mean(self) -> float:
        """Mean of the recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Union[int, float]]:
        """JSON-ready form: count, sum, mean, and sorted buckets."""
        out: Dict[str, Union[int, float]] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
        }
        for bound in sorted(self.buckets):
            out[f"le_{bound}"] = self.buckets[bound]
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.buckets == other.buckets
                and self.count == other.count
                and self.total == other.total)

    def __repr__(self) -> str:
        return (f"Histogram(count={self.count}, mean={self.mean:.1f}, "
                f"buckets={len(self.buckets)})")


def _numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def stat_values(group: object) -> Dict[str, StatValue]:
    """Extract the name -> value mapping of one stat group.

    Accepts, in order of preference:

    * a zero-argument callable returning a mapping (lazy aggregate);
    * a mapping of names to numbers;
    * a dataclass instance: every numeric field is a counter, every
      :class:`Histogram` field expands to its bucket dict, and every
      numeric ``@property`` on the class is a derived rate.

    Field order follows the dataclass declaration; derived properties
    follow, sorted by name -- deterministic output for byte-stable
    JSON documents.
    """
    if callable(group) and not dataclasses.is_dataclass(group):
        group = group()
    if isinstance(group, Mapping):
        return dict(group)
    if not dataclasses.is_dataclass(group) or isinstance(group, type):
        raise TypeError(
            f"not a stat group (dataclass/mapping/callable): {group!r}"
        )
    out: Dict[str, StatValue] = {}
    for f in dataclasses.fields(group):
        value = getattr(group, f.name)
        if isinstance(value, Histogram):
            out[f.name] = value.to_dict()
        elif isinstance(value, bool):
            out[f.name] = int(value)
        elif _numeric(value):
            out[f.name] = value
        # Non-numeric fields (params dicts, names) are not counters.
    derived = {}
    for klass in type(group).__mro__:
        for name, attr in vars(klass).items():
            if isinstance(attr, property) and name not in derived:
                value = getattr(group, name)
                if _numeric(value):
                    derived[name] = value
    for name in sorted(derived):
        out[name] = derived[name]
    return out


def iter_stat_groups(provider: object,
                     prefix: str = "") -> Iterator[Tuple[str, object]]:
    """Yield ``(path, group)`` for a provider, prefixing sub-paths.

    A *provider* implements ``stat_groups()``; a bare stat group is
    yielded as itself under ``prefix``.
    """
    groups = getattr(provider, "stat_groups", None)
    if groups is None:
        yield prefix, provider
        return
    for sub, group in groups():
        if prefix and sub:
            yield f"{prefix}.{sub}", group
        else:
            yield prefix or sub, group
