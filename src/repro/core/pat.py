"""Private Attribute Tables (PATs) and the Attribute Translator.

Section 3.4 / 4.2: the high-level atom attributes in the GAT are "too
complex and excessive for easy interpretation by components like the
cache or prefetcher", so at program-load time (and after a context
switch) a hardware *Attribute Translator* converts each atom's
attributes into small, component-specific primitives, stored privately
at each component in its PAT.

This module defines the primitive records for the components evaluated
in the paper (cache, prefetcher, memory controller/DRAM placement,
compression engine) and the translator that produces them.  Adding a new
component means adding a primitive record and a translation rule --
nothing else in the system changes, which is the extensibility property
the paper argues for (Challenge 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

from repro.core.attributes import (
    AtomAttributes,
    DataProperty,
    DataType,
    PatternType,
    RWChar,
)
from repro.core.gat import GlobalAttributeTable

T = TypeVar("T")


# -- Per-component primitives ------------------------------------------


@dataclass(frozen=True)
class CachePrimitives:
    """What a cache needs to know about an atom (Section 5).

    ``reuse`` drives the greedy pinning algorithm; ``prefetchable`` plus
    ``stride`` let the cache trigger prefetches on misses to pinned
    atoms.
    """

    reuse: int
    prefetchable: bool
    stride_bytes: int


@dataclass(frozen=True)
class PrefetcherPrimitives:
    """What a prefetcher needs: just the prefetchable pattern."""

    pattern: PatternType
    stride_bytes: int


@dataclass(frozen=True)
class DramPrimitives:
    """What the memory controller / OS placement policy needs (Section 6).

    ``high_rbl`` marks atoms whose accesses hit the same DRAM row
    repeatedly (streaming/strided data); ``intensity`` ranks how hot the
    atom is so bank isolation is only spent on data accessed often
    enough to matter; ``write_heavy`` flags data whose writeback stream
    would fight its own reads inside a small isolated bank set.
    """

    high_rbl: bool
    irregular: bool
    intensity: int
    write_heavy: bool = False


@dataclass(frozen=True)
class CompressionPrimitives:
    """What a memory-compression engine needs (Table 1, row 3)."""

    data_type: DataType
    sparse: bool
    pointer: bool
    approximable: bool


#: Stride (bytes) below which a REGULAR pattern keeps visiting the same
#: DRAM row and therefore exhibits high row-buffer locality.  A DDR3 row
#: is 1-2 KB per chip and 8 KB per rank; any stride well under the row
#: size qualifies.
HIGH_RBL_MAX_STRIDE = 1024


# -- Translation rules -------------------------------------------------


def translate_for_cache(attrs: AtomAttributes) -> CachePrimitives:
    """Reduce atom attributes to the cache's private primitives."""
    pat = attrs.access.pattern
    return CachePrimitives(
        reuse=attrs.reuse,
        prefetchable=pat.is_prefetchable,
        stride_bytes=pat.stride_bytes or 0,
    )


def translate_for_prefetcher(attrs: AtomAttributes) -> PrefetcherPrimitives:
    """Reduce atom attributes to the prefetcher's private primitives."""
    pat = attrs.access.pattern
    return PrefetcherPrimitives(
        pattern=pat.pattern,
        stride_bytes=pat.stride_bytes or 0,
    )


def translate_for_dram(attrs: AtomAttributes) -> DramPrimitives:
    """Reduce atom attributes to the DRAM-placement primitives.

    An atom has high row-buffer locality when its accesses are REGULAR
    with a small stride (consecutive accesses land in the same row).
    IRREGULAR and NON_DET atoms benefit from being spread across banks
    for parallelism instead.
    """
    pat = attrs.access.pattern
    high_rbl = (
        pat.pattern is PatternType.REGULAR
        and (pat.stride_bytes or 0) != 0
        and abs(pat.stride_bytes or 0) <= HIGH_RBL_MAX_STRIDE
    )
    return DramPrimitives(
        high_rbl=high_rbl,
        irregular=pat.pattern is not PatternType.REGULAR,
        intensity=attrs.access_intensity,
        write_heavy=attrs.access.rw in (RWChar.WRITE_HEAVY,
                                        RWChar.WRITE_ONLY),
    )


def translate_for_compression(attrs: AtomAttributes) -> CompressionPrimitives:
    """Reduce atom attributes to the compression engine's primitives."""
    return CompressionPrimitives(
        data_type=attrs.data.data_type,
        sparse=attrs.data.has(DataProperty.SPARSE),
        pointer=attrs.data.has(DataProperty.POINTER),
        approximable=attrs.data.has(DataProperty.APPROXIMABLE),
    )


class PrivateAttributeTable(Generic[T]):
    """One component's private atom-ID -> primitives table.

    Small and hardware-resident; flushed on context switch and refilled
    by the Attribute Translator.
    """

    def __init__(self, component: str) -> None:
        self.component = component
        self._entries: Dict[int, T] = {}

    def install(self, atom_id: int, primitives: T) -> None:
        """Store the translated primitives for one atom."""
        self._entries[atom_id] = primitives

    def lookup(self, atom_id: int) -> Optional[T]:
        """Primitives for ``atom_id``, or None if not translated."""
        return self._entries.get(atom_id)

    def flush(self) -> None:
        """Drop all entries (context switch)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[int, T]]:
        return iter(sorted(self._entries.items()))


class AttributeTranslator:
    """The hardware runtime that fills every PAT from the GAT.

    Invoked by the OS at program-load time and after context switches
    (Section 3.4, "Private Attributes and Attribute Translation").
    """

    #: component name -> translation rule.
    RULES = {
        "cache": translate_for_cache,
        "prefetcher": translate_for_prefetcher,
        "dram": translate_for_dram,
        "compression": translate_for_compression,
    }

    def __init__(self) -> None:
        self.translations_performed = 0

    def translate(self, gat: GlobalAttributeTable,
                  pats: Dict[str, PrivateAttributeTable]) -> None:
        """Flush and refill each PAT with primitives for every GAT atom.

        Unknown component names raise ``KeyError`` eagerly, so a
        misconfigured system fails at load time rather than silently
        leaving a component without semantics.
        """
        for component, pat in pats.items():
            rule = self.RULES[component]
            pat.flush()
            for atom_id, attrs in gat:
                pat.install(atom_id, rule(attrs))
                self.translations_performed += 1


def make_standard_pats() -> Dict[str, PrivateAttributeTable]:
    """The PAT set for the components this reproduction models."""
    return {name: PrivateAttributeTable(name)
            for name in AttributeTranslator.RULES}
