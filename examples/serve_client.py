"""Stdlib-only client for the ``repro serve`` HTTP API.

Covers the whole scenario/run lifecycle against a running server (see
``docs/serve.md``): wait for ``/health``, build content-hashed
scenarios, schedule a run, poll it to completion, and optionally
verify that resubmitting the identical run is fully deduplicated.
CI's ``serve-smoke`` job drives this script and then gates the
server-written documents against a serial ``repro sweep --stats-json``
with ``repro diff``.

Usage::

    python -m repro serve --port 8642 &
    python examples/serve_client.py --base http://127.0.0.1:8642 health
    python examples/serve_client.py --base http://127.0.0.1:8642 \\
        sweep --kernel gemm --n 48 --tiles 12,48 \\
        --out-dir /tmp/served-run --dup-check
    python examples/serve_client.py --base http://127.0.0.1:8642 state
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def request(base: str, method: str, path: str, body=None):
    """One API call; returns ``(status, parsed-JSON document)``."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_health(base: str, timeout: float = 30.0) -> dict:
    """Poll ``/health`` until the server answers 200."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            status, doc = request(base, "GET", "/health")
            if status == 200:
                return doc
        except (urllib.error.URLError, ConnectionError):
            pass
        if time.monotonic() >= deadline:
            raise SystemExit(f"server at {base} not healthy "
                             f"after {timeout}s")
        time.sleep(0.2)


def wait_run(base: str, run_id: str, timeout: float = 600.0) -> dict:
    """Poll one run until terminal (and its out_dir files, if any,
    are flushed)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = request(base, "GET", f"/v1/runs/{run_id}")
        if status != 200:
            raise SystemExit(f"poll {run_id}: HTTP {status}: {doc}")
        if doc["status"] in ("done", "failed", "cancelled") and (
                doc["status"] != "done" or "out_dir" not in doc
                or "written" in doc):
            return doc
        time.sleep(0.25)
    raise SystemExit(f"{run_id} not finished after {timeout}s")


def cmd_health(args) -> int:
    doc = wait_health(args.base)
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def cmd_state(args) -> int:
    status, doc = request(args.base, "GET", "/debug/state")
    if status != 200:
        raise SystemExit(f"/debug/state: HTTP {status}")
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def cmd_sweep(args) -> int:
    """Scenario+run lifecycle for one kernel over a tile sweep."""
    base = args.base
    wait_health(base)
    points = []
    for tile in args.tiles:
        status, doc = request(base, "POST", "/v1/scenarios",
                              {"kernel": args.kernel, "n": args.n,
                               "tile": tile})
        if status not in (200, 201):
            raise SystemExit(f"scenario tile={tile}: "
                             f"HTTP {status}: {doc}")
        print(f"scenario {doc['scenario']} tile={tile} "
              f"created={doc['created']} "
              f"source={doc['trace']['source']}")
        points.append({"scenario": doc["scenario"],
                       "config": {"scale": args.scale}})
    run_body = {"points": points}
    if args.out_dir:
        run_body["out_dir"] = args.out_dir
    status, doc = request(base, "POST", "/v1/runs", run_body)
    if status != 202:
        raise SystemExit(f"run submit: HTTP {status}: {doc}")
    run_id = doc["run"]
    print(f"{run_id}: {doc['points']} point(s), new={doc['new']} "
          f"deduped={doc['deduped']}")
    final = wait_run(base, run_id)
    if final["status"] != "done":
        raise SystemExit(f"{run_id} ended {final['status']}: "
                         f"{final.get('errors')}")
    names = ", ".join(final["names"])
    print(f"{run_id}: done ({names})")
    if args.out_dir:
        print(f"{run_id}: wrote {final['written']} document(s) "
              f"to {final['out_dir']}")

    if args.dup_check:
        # The identical submission must be fully deduplicated: every
        # point is already known, nothing re-executes.
        status, dup = request(base, "POST", "/v1/runs",
                              {"points": points})
        if status != 202:
            raise SystemExit(f"dup submit: HTTP {status}: {dup}")
        if dup["new"] != 0 or dup["deduped"] != len(points):
            raise SystemExit(
                f"dedup failed: new={dup['new']} "
                f"deduped={dup['deduped']} of {len(points)}")
        redo = wait_run(base, dup["run"])
        if redo["documents"] != final["documents"]:
            raise SystemExit("deduplicated run returned "
                             "different documents")
        print(f"{dup['run']}: duplicate fully deduplicated "
              f"({dup['deduped']}/{len(points)} points shared)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter)
    parser.add_argument("--base", default="http://127.0.0.1:8642",
                        help="server base URL")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("health", help="wait for and print /health")
    sub.add_parser("state", help="print /debug/state")
    sw = sub.add_parser("sweep",
                        help="scenario+run lifecycle for a tile sweep")
    sw.add_argument("--kernel", default="gemm")
    sw.add_argument("--n", type=int, default=48)
    sw.add_argument("--tiles", default="12,48",
                    type=lambda s: [int(t) for t in s.split(",")],
                    help="comma-separated tile sizes")
    sw.add_argument("--scale", type=int, default=32)
    sw.add_argument("--out-dir", default=None,
                    help="server-side directory for the documents")
    sw.add_argument("--dup-check", action="store_true",
                    help="resubmit the identical run and require "
                         "full point dedup")
    args = parser.parse_args(argv)
    return {"health": cmd_health, "state": cmd_state,
            "sweep": cmd_sweep}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
