"""Stdlib-only client for the ``repro serve`` HTTP API.

Covers the whole scenario/run lifecycle against a running server (see
``docs/serve.md``): wait for ``/health``, build content-hashed
scenarios, schedule a run, poll it to completion, and optionally
verify that resubmitting the identical run is fully deduplicated.
``watch`` consumes a run incrementally through the ``?since=``
long-poll protocol (one line per completed point, in completion
order); ``fetch`` downloads a terminal run -- including a
workspace-archived one served after a server restart -- and writes its
documents to a directory in the canonical ``repro sweep --stats-json``
byte format, ready for ``repro diff``.  CI's ``serve-smoke`` job
drives this script and then gates the server-written documents against
a serial ``repro sweep --stats-json`` with ``repro diff``.

Usage::

    python -m repro serve --port 8642 &
    python examples/serve_client.py --base http://127.0.0.1:8642 health
    python examples/serve_client.py --base http://127.0.0.1:8642 \\
        sweep --kernel gemm --n 48 --tiles 12,48 \\
        --out-dir /tmp/served-run --dup-check
    python examples/serve_client.py --base http://127.0.0.1:8642 \\
        watch run-000001
    python examples/serve_client.py --base http://127.0.0.1:8642 \\
        fetch run-000001 /tmp/fetched-run
    python examples/serve_client.py --base http://127.0.0.1:8642 state
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path


def request(base: str, method: str, path: str, body=None):
    """One API call; returns ``(status, parsed-JSON document)``."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_health(base: str, timeout: float = 30.0) -> dict:
    """Poll ``/health`` until the server answers 200."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            status, doc = request(base, "GET", "/health")
            if status == 200:
                return doc
        except (urllib.error.URLError, ConnectionError):
            pass
        if time.monotonic() >= deadline:
            raise SystemExit(f"server at {base} not healthy "
                             f"after {timeout}s")
        time.sleep(0.2)


def wait_run(base: str, run_id: str, timeout: float = 600.0) -> dict:
    """Poll one run until terminal (and its out_dir files, if any,
    are flushed)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = request(base, "GET", f"/v1/runs/{run_id}")
        if status != 200:
            raise SystemExit(f"poll {run_id}: HTTP {status}: {doc}")
        if doc["status"] in ("done", "failed", "cancelled") and (
                doc["status"] != "done" or "out_dir" not in doc
                or "written" in doc):
            return doc
        time.sleep(0.25)
    raise SystemExit(f"{run_id} not finished after {timeout}s")


def cmd_health(args) -> int:
    doc = wait_health(args.base)
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def cmd_state(args) -> int:
    status, doc = request(args.base, "GET", "/debug/state")
    if status != 200:
        raise SystemExit(f"/debug/state: HTTP {status}")
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def cmd_sweep(args) -> int:
    """Scenario+run lifecycle for one kernel over a tile sweep."""
    base = args.base
    wait_health(base)
    points = []
    for tile in args.tiles:
        status, doc = request(base, "POST", "/v1/scenarios",
                              {"kernel": args.kernel, "n": args.n,
                               "tile": tile})
        if status not in (200, 201):
            raise SystemExit(f"scenario tile={tile}: "
                             f"HTTP {status}: {doc}")
        print(f"scenario {doc['scenario']} tile={tile} "
              f"created={doc['created']} "
              f"source={doc['trace']['source']}")
        points.append({"scenario": doc["scenario"],
                       "config": {"scale": args.scale}})
    run_body = {"points": points}
    if args.out_dir:
        run_body["out_dir"] = args.out_dir
    status, doc = request(base, "POST", "/v1/runs", run_body)
    if status != 202:
        raise SystemExit(f"run submit: HTTP {status}: {doc}")
    run_id = doc["run"]
    print(f"{run_id}: {doc['points']} point(s), new={doc['new']} "
          f"deduped={doc['deduped']}")
    final = wait_run(base, run_id)
    if final["status"] != "done":
        raise SystemExit(f"{run_id} ended {final['status']}: "
                         f"{final.get('errors')}")
    names = ", ".join(final["names"])
    print(f"{run_id}: done ({names})")
    if args.out_dir:
        print(f"{run_id}: wrote {final['written']} document(s) "
              f"to {final['out_dir']}")

    if args.dup_check:
        # The identical submission must be fully deduplicated: every
        # point is already known, nothing re-executes.
        status, dup = request(base, "POST", "/v1/runs",
                              {"points": points})
        if status != 202:
            raise SystemExit(f"dup submit: HTTP {status}: {dup}")
        if dup["new"] != 0 or dup["deduped"] != len(points):
            raise SystemExit(
                f"dedup failed: new={dup['new']} "
                f"deduped={dup['deduped']} of {len(points)}")
        redo = wait_run(base, dup["run"])
        if redo["documents"] != final["documents"]:
            raise SystemExit("deduplicated run returned "
                             "different documents")
        print(f"{dup['run']}: duplicate fully deduplicated "
              f"({dup['deduped']}/{len(points)} points shared)")
    return 0


def cmd_watch(args) -> int:
    """Consume one run incrementally via the ``?since=`` long-poll.

    Each completed point prints the moment the server reports it --
    no full-document re-polling, no busy loop: the server holds each
    request open (``wait`` seconds, max 60) until it has news.
    """
    base = args.base
    wait_health(base)
    since = 0
    deadline = time.monotonic() + args.timeout
    while True:
        status, doc = request(
            base, "GET",
            f"/v1/runs/{args.run}?since={since}&wait={args.wait}")
        if status != 200:
            raise SystemExit(f"watch {args.run}: HTTP {status}: {doc}")
        if doc.get("archived"):
            # Workspace-served run: there is no live event log, the
            # terminal summary is all there is (and all it needs).
            print(f"{args.run}: {doc['status']} (archived) "
                  f"{doc['points']}")
            return 0
        for event in doc["events"]:
            line = f"{args.run}[{event['seq']}]: {event['name']} " \
                   f"{event['state']}"
            if event["state"] == "done":
                line += f" (wall {event['wall_s']}s)"
            elif event.get("error"):
                line += f" -- {event['error']}"
            print(line, flush=True)
        since = doc["next"]
        if doc["status"] in ("done", "failed", "cancelled"):
            print(f"{args.run}: {doc['status']} {doc['points']}")
            return 0 if doc["status"] == "done" else 1
        if time.monotonic() > deadline:
            raise SystemExit(f"{args.run} still {doc['status']} "
                             f"after {args.timeout}s")


def cmd_fetch(args) -> int:
    """Write a terminal run's documents to a directory, byte-for-byte
    in the ``repro sweep --stats-json`` format (``repro diff`` ready).

    Works on live-retained and workspace-archived runs alike -- the
    restart half of CI's serve-smoke fetches a previous server
    process's run this way and diffs it against a serial sweep.
    """
    status, doc = request(args.base, "GET", f"/v1/runs/{args.run}")
    if status != 200:
        raise SystemExit(f"fetch {args.run}: HTTP {status}: {doc}")
    if doc["status"] not in ("done", "failed", "cancelled"):
        raise SystemExit(f"{args.run} is {doc['status']}; fetch "
                         f"needs a terminal run")
    documents = doc.get("documents") or {}
    if doc["status"] != "done" and not documents:
        raise SystemExit(f"{args.run} ended {doc['status']} with no "
                         f"documents: {doc.get('errors')}")
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for name, document in sorted(documents.items()):
        payload = json.dumps(document, sort_keys=True, indent=2) + "\n"
        (out / name).write_text(payload, encoding="utf-8")
    archived = " (archived)" if doc.get("archived") else ""
    print(f"{args.run}{archived}: wrote {len(documents)} "
          f"document(s) to {out}")
    if doc["status"] != "done":
        print(f"{args.run}: status {doc['status']}, "
              f"errors: {doc.get('errors')}")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter)
    parser.add_argument("--base", default="http://127.0.0.1:8642",
                        help="server base URL")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("health", help="wait for and print /health")
    sub.add_parser("state", help="print /debug/state")
    sw = sub.add_parser("sweep",
                        help="scenario+run lifecycle for a tile sweep")
    sw.add_argument("--kernel", default="gemm")
    sw.add_argument("--n", type=int, default=48)
    sw.add_argument("--tiles", default="12,48",
                    type=lambda s: [int(t) for t in s.split(",")],
                    help="comma-separated tile sizes")
    sw.add_argument("--scale", type=int, default=32)
    sw.add_argument("--out-dir", default=None,
                    help="server-side directory for the documents")
    sw.add_argument("--dup-check", action="store_true",
                    help="resubmit the identical run and require "
                         "full point dedup")
    wt = sub.add_parser("watch",
                        help="stream a run's completions via the "
                             "since= long-poll")
    wt.add_argument("run", help="run id, e.g. run-000001")
    wt.add_argument("--wait", type=float, default=25.0,
                    help="server-side hold per poll, seconds")
    wt.add_argument("--timeout", type=float, default=600.0,
                    help="give up after this many seconds")
    ft = sub.add_parser("fetch",
                        help="write a terminal run's documents to a "
                             "directory (repro diff ready)")
    ft.add_argument("run", help="run id, e.g. run-000001")
    ft.add_argument("out_dir", help="directory to write documents to")
    args = parser.parse_args(argv)
    return {"health": cmd_health, "state": cmd_state,
            "sweep": cmd_sweep, "watch": cmd_watch,
            "fetch": cmd_fetch}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
