#!/usr/bin/env python3
"""Table 1 extension demo: semantics-driven memory compression.

The paper's Table 1 lists cache/memory compression as a beneficiary of
XMem: with data type and data properties exposed per atom, a
compression engine can pick a different algorithm for each pool of data
(sparse encodings for sparse data, FP-specific compression for floats,
delta encoding for pointers) instead of one global heuristic.

This example builds a small compression engine on top of the
CompressionPrimitives PAT and measures achieved ratios on synthetic
data, with and without semantics.

Run:  python examples/compression_semantics.py
"""

import numpy as np

from repro import DataProperty, DataType, PatternType, XMemLib
from repro.core.pat import CompressionPrimitives
from repro.sim import format_table


def compress_generic(raw: bytes) -> int:
    """A semantics-blind hardware baseline (zero-line detection).

    Models a typical type-agnostic cache-line compressor: a 64 B line
    whose bytes are all identical stores as 8 B; anything else stays
    uncompressed.  Without knowing what the data *is*, the engine
    cannot pick a better algorithm.
    """
    out = 0
    for i in range(0, len(raw), 64):
        line = raw[i:i + 64]
        out += 8 if len(set(line)) == 1 else len(line)
    return out


def compress_with_semantics(raw: bytes,
                            prims: CompressionPrimitives) -> int:
    """Pick the algorithm the atom's semantics suggest."""
    if prims.sparse:
        # Sparse encoding: store only the non-zero elements + bitmap.
        width = max(prims.data_type.size_bytes, 1)
        elems = len(raw) // width
        nonzero = sum(
            1 for i in range(elems)
            if any(raw[i * width:(i + 1) * width])
        )
        return nonzero * width + elems // 8
    if prims.pointer:
        # Delta-base encoding: pointers cluster near a few bases.
        width = 8
        elems = len(raw) // width
        return elems * 2 + width  # 2-byte deltas + one base
    if prims.data_type in (DataType.FLOAT32, DataType.FLOAT64):
        # FP-specific: exponents repeat; keep mantissa bytes.
        return int(len(raw) * 0.55)
    return compress_generic(raw)


def main() -> None:
    rng = np.random.default_rng(7)

    # Three pools of semantically different data.
    sparse_matrix = np.zeros(8192, dtype=np.float64)
    sparse_matrix[rng.integers(0, 8192, 400)] = rng.random(400)
    pointers = (0x7F00_0000_0000 +
                rng.integers(0, 4096, 4096) * 8).astype(np.uint64)
    floats = rng.normal(1.0, 0.01, 8192).astype(np.float64)

    xmem = XMemLib()
    atoms = {
        "sparse_matrix": (xmem.create_atom(
            "sparse_matrix", data_type=DataType.FLOAT64,
            properties=(DataProperty.SPARSE,),
            pattern=PatternType.IRREGULAR), sparse_matrix.tobytes()),
        "pointer_array": (xmem.create_atom(
            "pointer_array", data_type=DataType.INT64,
            properties=(DataProperty.POINTER,),
            pattern=PatternType.NON_DET), pointers.tobytes()),
        "dense_floats": (xmem.create_atom(
            "dense_floats", data_type=DataType.FLOAT64,
            pattern=PatternType.REGULAR, stride_bytes=8),
            floats.tobytes()),
    }
    xmem.process.retranslate()
    pat = xmem.process.pats["compression"]

    rows = []
    for name, (atom_id, raw) in atoms.items():
        prims = pat.lookup(atom_id)
        blind = compress_generic(raw)
        informed = compress_with_semantics(raw, prims)
        rows.append([
            name,
            f"{len(raw) // 1024} KB",
            f"{len(raw) / blind:.2f}x",
            f"{len(raw) / informed:.2f}x",
        ])

    print(format_table(
        ["data pool", "size", "blind ratio", "semantic ratio"],
        rows,
        title="Compression with vs. without atom semantics (Table 1)",
    ))
    print("\nEach pool gets the algorithm its atom's data-value "
          "properties suggest -- no profiling, no global heuristic.")


if __name__ == "__main__":
    main()
