#!/usr/bin/env python3
"""Profiling path demo: infer atoms from an unannotated program.

Section 3.5.1 allows atoms to come from "program annotation, static
compiler analysis, or dynamic profiling".  Here a program gives us no
annotations at all:

1. the profiler watches its access stream and classifies each data
   region (pattern + stride, read/write character, relative intensity
   and reuse);
2. the inferred atoms are created/mapped/activated automatically;
3. a semantics-driven DRAM cache immediately benefits: the inferred
   zero-reuse stream bypasses the cache, protecting the hot table.

Run:  python examples/profile_and_optimize.py
"""

import random

from repro import XMemLib
from repro.core.profiler import AccessProfiler
from repro.core.ranges import AddressRange
from repro.mem.dram_cache import DramCache, SemanticDramCachePolicy

HOT = AddressRange(0x0, 256 * 1024)                       # hot table
STREAM = AddressRange.from_size(0x4000_0000, 16 << 20)    # cold scan


def program_trace():
    """An unannotated program: hot-table lookups + a cold scan."""
    rng = random.Random(42)
    hot_lines = HOT.size // 64
    cursor = 0
    for _ in range(60_000):
        if rng.random() < 0.6:
            yield HOT.start + rng.randrange(hot_lines) * 64, False
        else:
            yield STREAM.start + cursor, False
            cursor = (cursor + 64) % STREAM.size


def main() -> None:
    # -- 1. Profile the raw access stream.
    profiler = AccessProfiler(
        regions=[("table", HOT), ("scan", STREAM)]
    )
    accesses = list(program_trace())
    for addr, is_write in accesses:
        profiler.observe(addr, is_write)

    print("inferred attributes:")
    for name, attrs in profiler.infer_attributes().items():
        print(f"  {attrs.describe()}")

    # -- 2. Auto-instrument a fresh XMem process.
    lib = XMemLib()
    atom_ids = profiler.instrument(lib)
    print(f"\ncreated atoms: {atom_ids}")

    # -- 3. Replay through a DRAM cache, with and without semantics.
    def replay(semantic: bool) -> float:
        cache = DramCache(256 * 1024)
        if semantic:
            SemanticDramCachePolicy(cache, lib.process.atom_for_paddr)
        total = sum(cache.access(addr) for addr, _ in accesses)
        label = "semantic" if semantic else "blind   "
        print(f"  {label}: {total / len(accesses):6.1f} cycles/access "
              f"(hit rate {cache.stats.hit_rate:.1%}, "
              f"{cache.stats.bypassed_fills} fills bypassed)")
        return total

    print("\nDRAM-cache replay:")
    blind = replay(semantic=False)
    informed = replay(semantic=True)
    print(f"\nspeedup from inferred semantics: {blind / informed:.2f}x")


if __name__ == "__main__":
    main()
