#!/usr/bin/env python3
"""Use Case 2 demo: OS page placement in DRAM (Section 6).

Runs three workload models -- a multi-stream CFD code (lbm), a mixed
stream+gather kernel (spmv), and a pointer-chasing graph code (mcf) --
on the three systems of Figure 7:

* Baseline: randomized virtual-to-physical mapping;
* XMem:     atom-aware placement (isolate high-RBL streams in
            dedicated banks, spread the rest);
* Ideal:    a perfect row buffer (upper bound).

Run:  python examples/dram_placement.py
"""

import dataclasses

from repro.sim import format_table
from repro.sim.usecase2 import run_figure7
from repro.workloads.suite import BY_NAME

WORKLOADS = ("lbm", "spmv", "mcf")
ACCESSES = 60_000   # trimmed for a quick demo


def main() -> None:
    rows = []
    for name in WORKLOADS:
        workload = dataclasses.replace(BY_NAME[name], accesses=ACCESSES)
        results = run_figure7(workload, pick_mapping=False)
        base = results["baseline"]
        xmem = results["xmem"]
        ideal = results["ideal"]
        rows.append([
            name,
            f"{base.cycles / xmem.cycles:.3f}x",
            f"{base.cycles / ideal.cycles:.3f}x",
            f"{base.record.dram_row_hit_rate:.2f}",
            f"{xmem.record.dram_row_hit_rate:.2f}",
            f"{xmem.record.dram_read_latency / base.record.dram_read_latency - 1:+.1%}",
        ])
        print(f"--- {name}: {BY_NAME[name].description}")
        print(xmem.placement_report, "\n")

    print(format_table(
        ["workload", "xmem speedup", "ideal speedup",
         "base RBL", "xmem RBL", "read-latency change"],
        rows,
        title="Figure 7/8 shape on three representative workloads",
    ))
    print("\nStreaming-heavy lbm gains; random-dominated mcf does not -- "
          "matching the paper's Section 6.4 observations.")


if __name__ == "__main__":
    main()
