#!/usr/bin/env python3
"""Quickstart: express program semantics with atoms and query them back.

This walks the full XMem pipeline on a toy program:

1. CREATE atoms with immutable attributes (XMemLib / Table 2);
2. MAP them to address ranges and ACTIVATE them;
3. query the Atom Management Unit the way a cache or memory controller
   would (ATOM_LOOKUP through the atom lookaside buffer);
4. watch the Attribute Translator reduce high-level attributes into the
   per-component primitives stored in each Private Attribute Table;
5. print the Section 4.4 storage-overhead arithmetic.

Run:  python examples/quickstart.py
"""

from repro import DataProperty, DataType, PatternType, RWChar, XMemLib
from repro.core.overheads import storage_overheads


def main() -> None:
    xmem = XMemLib()

    # -- 1. CREATE: one atom per semantically distinct pool of data.
    matrix = xmem.create_atom(
        "matrix_tile",
        data_type=DataType.FLOAT64,
        pattern=PatternType.REGULAR, stride_bytes=8,
        rw=RWChar.READ_WRITE,
        access_intensity=200,
        reuse=255,
    )
    index = xmem.create_atom(
        "csr_indices",
        data_type=DataType.INT32,
        properties=(DataProperty.INDEX, DataProperty.COMPRESSIBLE),
        pattern=PatternType.IRREGULAR,
        rw=RWChar.READ_ONLY,
        access_intensity=120,
    )

    # -- 2. MAP + ACTIVATE: attach the atoms to (virtual) data ranges.
    xmem.atom_map(matrix, start=0x10_0000, size=256 * 1024)
    xmem.atom_map(index, start=0x20_0000, size=64 * 1024)
    xmem.atom_activate(matrix)
    xmem.atom_activate(index)

    # -- 3. Components query semantics by address (Figure 1, arrow 4).
    process = xmem.process
    for addr in (0x10_0000, 0x20_0000 + 4096, 0x90_0000):
        atom = process.atom_for_paddr(addr)
        what = atom.attributes.describe() if atom else "<no atom>"
        print(f"paddr {addr:#9x} -> {what}")

    # -- 4. The Attribute Translator fills each component's PAT.
    process.retranslate()
    print("\nPer-component primitives:")
    for component, pat in process.pats.items():
        print(f"  {component}:")
        for atom_id, prims in pat:
            name = process.atoms[atom_id].name
            print(f"    {name:<12} {prims}")

    # -- 5. Deactivation hides semantics instantly (Challenge 3).
    xmem.atom_deactivate(matrix)
    assert process.atom_for_paddr(0x10_0000) is None
    print("\nafter DEACTIVATE, matrix_tile is invisible to lookups")

    # -- 6. Section 4.4 overheads for an 8 GB machine.
    ov = storage_overheads(8 << 30)
    print(f"\nstorage overhead on 8 GB: AAM {ov.aam_bytes >> 20} MB "
          f"({ov.aam_fraction:.2%}), AST {ov.ast_bytes} B, "
          f"GAT {ov.gat_bytes} B")
    print(f"XMem instructions executed: {xmem.xmem_instruction_count}")


if __name__ == "__main__":
    main()
