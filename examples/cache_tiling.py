#!/usr/bin/env python3
"""Use Case 1 demo: performance portability of a tiled kernel (Section 5).

A gemm binary tuned for a large cache runs on a machine whose LLC is
half the assumed size -- the working set thrashes.  The same binary with
XMem atoms lets the cache pin part of the tile and prefetch the rest,
recovering much of the loss.

Run:  python examples/cache_tiling.py
"""

from repro.sim import build_baseline, build_xmem, format_table, scaled_config
from repro.workloads.polybench import KERNELS

N = 128          # problem size (scaled)
TILES = (16, 64, 128)


def main() -> None:
    cfg = scaled_config(16)   # 64 KB LLC slice
    kernel = KERNELS["gemm"]
    print(f"gemm, N={N}, LLC={cfg.llc_bytes // 1024} KB "
          f"(tile of {TILES[-1]} has a {TILES[-1]**2 * 8 // 1024} KB "
          f"working set -> thrashes)\n")

    rows = []
    for tile in TILES:
        baseline = build_baseline(cfg)
        b = baseline.run(kernel.build_trace(N, tile))

        xmem = build_xmem(cfg)
        x = xmem.run(kernel.build_trace(N, tile, lib=xmem.xmemlib))

        rows.append([
            tile,
            f"{tile * tile * 8 // 1024} KB",
            f"{b.cycles / 1e6:.2f}M",
            f"{x.cycles / 1e6:.2f}M",
            f"{b.cycles / x.cycles:.2f}x",
            f"{baseline.llc.stats.miss_rate:.1%}",
            f"{xmem.llc.stats.miss_rate:.1%}",
        ])
        if xmem.controller is not None:
            pinned = xmem.controller.pinned_bytes() // 1024
            print(f"tile {tile:3d}: controller pinned {pinned} KB "
                  f"of the active tile "
                  f"({xmem.controller.stats.refreshes} refreshes)")

    print()
    print(format_table(
        ["tile", "tile WS", "baseline", "xmem", "speedup",
         "base LLC miss", "xmem LLC miss"],
        rows,
        title="gemm execution time vs. tile size (cycles)",
    ))
    print("\nThe largest tile thrashes the baseline; XMem pins 75% of "
          "the LLC for the tile and prefetches the remainder.")


if __name__ == "__main__":
    main()
