"""Table 1: the semantics catalogue and its per-component translation.

Table 1 lists nine memory optimizations and the atom semantics each
consumes.  This bench verifies that every semantic named in the table
is expressible through the atom abstraction and translates into the
private primitives of the component that would use it, and measures
the throughput of the hot query path (ATOM_LOOKUP through the ALB)
that all those optimizations share.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_result
from repro.core import (
    DataProperty,
    DataType,
    PatternType,
    RWChar,
    XMemLib,
)
from repro.sim import format_table


def build_catalogue():
    """One atom per Table 1 semantic family."""
    lib = XMemLib()
    rows = []

    def atom(name, **kw):
        atom_id = lib.create_atom(name, **kw)
        lib.atom_map(atom_id, 0x100000 * (atom_id + 1), 64 * 1024)
        lib.atom_activate(atom_id)
        return atom_id

    # Row 1 -- cache management: reuse + working set + distinction.
    rows.append(("cache management",
                 atom("hot_tile", pattern=PatternType.REGULAR,
                      stride_bytes=8, reuse=255)))
    # Row 2 -- DRAM placement: pattern + intensity.
    rows.append(("page placement",
                 atom("stream", pattern=PatternType.REGULAR,
                      stride_bytes=64, access_intensity=200)))
    # Row 3 -- compression: type + properties.
    rows.append(("compression",
                 atom("sparse_fp", data_type=DataType.FLOAT32,
                      properties=(DataProperty.SPARSE,))))
    # Row 4 -- prefetching: pattern + index/pointer properties.
    rows.append(("prefetching",
                 atom("indices", data_type=DataType.INT32,
                      properties=(DataProperty.INDEX,),
                      pattern=PatternType.IRREGULAR)))
    # Row 5 -- DRAM cache: intensity + reuse.
    rows.append(("dram cache",
                 atom("hot_set", pattern=PatternType.REGULAR,
                      stride_bytes=8, access_intensity=180, reuse=100)))
    # Row 6 -- approximation: approximability.
    rows.append(("approximation",
                 atom("lossy", properties=(DataProperty.APPROXIMABLE,))))
    # Row 7 -- NUMA placement: RW characteristics.
    rows.append(("numa placement",
                 atom("ro_replica", rw=RWChar.READ_ONLY)))
    # Row 8 -- hybrid memories: RW + intensity + pattern.
    rows.append(("hybrid memory",
                 atom("nvm_candidate", rw=RWChar.READ_ONLY,
                      pattern=PatternType.REGULAR, stride_bytes=8,
                      access_intensity=30)))
    # Row 9 -- NUCA management: distinction + intensity.
    rows.append(("nuca",
                 atom("shared_pool", access_intensity=90)))
    return lib, rows


def test_table1_catalogue(benchmark, results_dir):
    lib, rows = benchmark.pedantic(build_catalogue, rounds=1, iterations=1)
    lib.process.retranslate()
    out = []
    for use_case, atom_id in rows:
        attrs = lib.process.gat.lookup(atom_id)
        out.append([use_case, attrs.describe()])
    table = format_table(["optimization", "expressed semantics"], out,
                         title="Table 1 -- semantics catalogue")
    print("\n" + table)
    save_result("table1_semantics", table)
    # Every component PAT has an entry for every atom.
    for name, pat in lib.process.pats.items():
        assert len(pat) == len(rows), name


def test_table1_lookup_throughput(benchmark):
    """The shared hot path: address -> active atom, via the ALB."""
    lib, rows = build_catalogue()
    amu = lib.process.amu
    addrs = [0x100000 * (a + 1) + 512 * i
             for _, a in rows for i in range(8)]

    def lookups():
        total = 0
        for addr in addrs:
            if amu.lookup(addr) is not None:
                total += 1
        return total

    found = benchmark(lookups)
    assert found == len(addrs)
    assert amu.alb.stats.hit_rate > 0.9
