"""Table 1, rows 3/5/6/7/8/9: measured wins of the component models.

Each row of Table 1 names an optimization and the semantics XMem feeds
it.  Use Cases 1 and 2 (rows 1-2) get full-system figures; this bench
quantifies the remaining rows on their dedicated subsystem models,
semantics-aware policy vs. the blind baseline each paper row argues
against.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from _bench_utils import save_result
from repro.core import DataProperty, DataType, PatternType, RWChar, XMemLib
from repro.core.attributes import make_attributes
from repro.hybrid import (
    HybridCandidate,
    HybridMemorySystem,
    first_touch_placement,
    layout_addresses,
    plan_hybrid_placement,
)
from repro.mem.approx import ApproxConfig, ApproximateMemory
from repro.mem.compression import SemanticCompressionEngine
from repro.mem.dram_cache import DramCache, SemanticDramCachePolicy
from repro.mem.nuca import (
    NucaCandidate,
    NucaMachine,
    hashed_placement,
    mean_latency,
    plan_nuca_placement,
)
from repro.sim import format_table
from repro.xos.numa import (
    NumaCandidate,
    NumaMachine,
    NumaTrafficModel,
    first_touch_numa,
    plan_numa_placement,
)

MB = 1 << 20


def row_compression():
    """Row 3: semantic vs. blind compression ratios on typed data."""
    rng = np.random.default_rng(5)
    pools = {
        "sparse_f64": (np.where(rng.random(16384) < 0.05,
                                rng.random(16384), 0.0)
                       .astype("<f8").tobytes(),
                       dict(data_type=DataType.FLOAT64,
                            properties=(DataProperty.SPARSE,))),
        "pointers": ((0x7F80_0000_0000
                      + rng.integers(0, 65536, 8192) * 8)
                     .astype("<u8").tobytes(),
                     dict(data_type=DataType.INT64,
                          properties=(DataProperty.POINTER,))),
        "floats": (rng.normal(3.0, 0.05, 16384).astype("<f8").tobytes(),
                   dict(data_type=DataType.FLOAT64,)),
    }
    from repro.core.pat import translate_for_compression
    out = []
    for name, (data, attrs_kw) in pools.items():
        prims = translate_for_compression(make_attributes(name,
                                                          **attrs_kw))
        informed = SemanticCompressionEngine(lambda p: prims)
        blind = SemanticCompressionEngine(lambda p: None)
        informed.compress_region(0, data)
        blind.compress_region(0, data)
        out.append([name, blind.stats.ratio, informed.stats.ratio])
    return out


def row_dram_cache():
    """Row 5: thrash avoidance via working-set/reuse semantics."""
    def run(semantic):
        lib = XMemLib()
        dc = DramCache(256 * 1024)
        if semantic:
            SemanticDramCachePolicy(dc, lib.process.atom_for_paddr)
        hot = lib.create_atom("hot", pattern=PatternType.REGULAR,
                              stride_bytes=64, reuse=255)
        lib.atom_map(hot, 0, 128 * 1024)
        lib.atom_activate(hot)
        stream = lib.create_atom("stream", pattern=PatternType.REGULAR,
                                 stride_bytes=64, reuse=0)
        lib.atom_map(stream, 1 << 24, 8 * MB)
        lib.atom_activate(stream)
        total = 0.0
        n = 0
        for _rep in range(3):
            for i in range(0, 128 * 1024, 64):
                total += dc.access(i)
                n += 1
            for i in range(0, 8 * MB, 64):
                total += dc.access((1 << 24) + i)
                n += 1
        return total / n
    return run(False), run(True)


def row_approx():
    """Row 6: fast path gated on APPROXIMABLE annotations."""
    lib = XMemLib()
    lossy = lib.create_atom("pixels",
                            properties=(DataProperty.APPROXIMABLE,))
    lib.atom_map(lossy, 0, 4 * MB)
    lib.atom_activate(lossy)
    exact = lib.create_atom("weights")
    lib.atom_map(exact, 1 << 24, 4 * MB)
    lib.atom_activate(exact)
    mem = ApproximateMemory(lib.process.atom_for_paddr,
                            ApproxConfig(error_rate=1e-3), seed=1)
    rng = random.Random(2)
    total = 0.0
    for _ in range(20000):
        base = 0 if rng.random() < 0.7 else (1 << 24)
        total += mem.access(base + rng.randrange(4 * MB // 64) * 64)
    return (total / 20000, mem.stats.approx_share,
            mem.stats.injected_errors)


def row_numa():
    machine = NumaMachine(nodes=2)
    cands = [
        NumaCandidate(0, make_attributes("part0"), (900.0, 10.0)),
        NumaCandidate(1, make_attributes("part1"), (10.0, 900.0)),
        NumaCandidate(2, make_attributes("model", rw=RWChar.READ_ONLY),
                      (400.0, 400.0)),
    ]
    model = NumaTrafficModel(machine)
    return (model.mean_latency(cands, first_touch_numa(cands, machine)),
            model.mean_latency(cands, plan_numa_placement(cands,
                                                          machine)))


def row_hybrid():
    cands = [
        HybridCandidate(0, make_attributes("cold_ro",
                                           rw=RWChar.READ_ONLY,
                                           access_intensity=10),
                        4 * MB),
        HybridCandidate(1, make_attributes("hot_rw",
                                           rw=RWChar.WRITE_HEAVY,
                                           access_intensity=240),
                        4 * MB),
    ]
    rng = random.Random(7)
    accesses = [(1 if rng.random() < 0.9 else 0,
                 rng.randrange(4 * MB // 64) * 64,
                 rng.random() < 0.5)
                for _ in range(4000)]

    def run(policy):
        system = HybridMemorySystem(fast_bytes=4 * MB,
                                    slow_bytes=32 * MB)
        bases = layout_addresses(cands, policy(cands, 4 * MB), 4 * MB)
        now = 0.0
        for atom, off, wr in accesses:
            system.access(bases[atom] + off, now, wr and atom == 1)
            now += 25.0
        return system.avg_read_latency

    return run(first_touch_placement), run(plan_hybrid_placement)


def row_nuca():
    machine = NucaMachine(slices=8)
    cands = [
        NucaCandidate(i, make_attributes(f"pool{i}"), 512 * 1024,
                      tuple(1000.0 if c == (i * 3) % 8 else 10.0
                            for c in range(8)))
        for i in range(8)
    ]
    return (mean_latency(cands, hashed_placement(cands, machine),
                         machine),
            mean_latency(cands, plan_nuca_placement(cands, machine),
                         machine))


def test_table1_subsystems(benchmark, results_dir):
    def run_all():
        return {
            "compression": row_compression(),
            "dram_cache": row_dram_cache(),
            "approx": row_approx(),
            "numa": row_numa(),
            "hybrid": row_hybrid(),
            "nuca": row_nuca(),
        }

    res = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, blind, informed in res["compression"]:
        rows.append([f"compression/{name}", f"{blind:.2f}x ratio",
                     f"{informed:.2f}x ratio"])
    blind, informed = res["dram_cache"]
    rows.append(["dram cache", f"{blind:.1f} cyc/access",
                 f"{informed:.1f} cyc/access"])
    lat, share, errors = res["approx"]
    rows.append(["approx memory", "140.0 cyc/access (all reliable)",
                 f"{lat:.1f} cyc/access ({share:.0%} approx, "
                 f"{errors} tolerated errors)"])
    blind, informed = res["numa"]
    rows.append(["numa", f"{blind:.1f} cyc", f"{informed:.1f} cyc"])
    blind, informed = res["hybrid"]
    rows.append(["hybrid DRAM+NVM", f"{blind:.1f} cyc read",
                 f"{informed:.1f} cyc read"])
    blind, informed = res["nuca"]
    rows.append(["nuca", f"{blind:.1f} cyc", f"{informed:.1f} cyc"])

    table = format_table(["row", "blind baseline", "with semantics"],
                         rows,
                         title="Table 1 rows 3/5/6/7/8/9 -- measured")
    print("\n" + table)
    save_result("table1_subsystems", table)

    # Semantics must win every row.
    for name, blind, informed in res["compression"]:
        assert informed >= blind
    assert res["dram_cache"][1] < res["dram_cache"][0]
    assert res["approx"][0] < 140.0
    assert res["numa"][1] < res["numa"][0]
    assert res["hybrid"][1] < res["hybrid"][0]
    assert res["nuca"][1] < res["nuca"][0]
