"""Table 3: the simulated machine configuration.

Asserts the full-size configuration matches the paper's machine row by
row, and benchmarks raw simulator throughput on that configuration so
regressions in the substrate show up here.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_result
from repro.cpu.trace import MemAccess
from repro.sim import build_baseline, format_table, table3_config


def test_table3_matches_paper(benchmark, results_dir):
    cfg = benchmark.pedantic(table3_config, rounds=1, iterations=1)
    l1, l2, l3 = cfg.levels
    rows = [
        ["CPU", "3.6 GHz, 4-wide, windowed OOO model",
         f"{cfg.cpu.ghz} GHz, {cfg.cpu.issue_width}-wide, "
         f"window {cfg.cpu.window}"],
        ["L1", "32KB, 8 ways, 4 cycles, LRU",
         f"{l1.size_bytes // 1024}KB, {l1.ways} ways, {l1.latency} cyc, "
         f"{l1.policy}"],
        ["L2", "128KB, 8 ways, 8 cycles, DRRIP",
         f"{l2.size_bytes // 1024}KB, {l2.ways} ways, {l2.latency} cyc, "
         f"{l2.policy}"],
        ["L3", "1MB/core, 16 ways, 27 cycles, DRRIP",
         f"{l3.size_bytes // 1024}KB, {l3.ways} ways, {l3.latency} cyc, "
         f"{l3.policy}"],
        ["Prefetcher", "multi-stride, 16 streams, at L3",
         f"{cfg.prefetcher.streams} streams, degree "
         f"{cfg.prefetcher.degree}"],
        ["DRAM", "DDR3-1066, 2ch, 1 rank/ch, 8 banks/rank, FR-FCFS, "
         "open row",
         f"{cfg.dram_geometry.channels}ch, "
         f"{cfg.dram_geometry.ranks_per_channel} rank/ch, "
         f"{cfg.dram_geometry.banks_per_rank} banks/rank, open row"],
    ]
    table = format_table(["layer", "paper", "this reproduction"], rows,
                         title="Table 3 -- simulation configuration")
    print("\n" + table)
    save_result("table3_config", table)

    assert (l1.size_bytes, l1.ways, l1.latency, l1.policy) == \
        (32 * 1024, 8, 4, "lru")
    assert (l2.size_bytes, l2.ways, l2.latency, l2.policy) == \
        (128 * 1024, 8, 8, "drrip")
    assert (l3.size_bytes, l3.ways, l3.latency, l3.policy) == \
        (1024 * 1024, 16, 27, "drrip")
    assert cfg.prefetcher.streams == 16
    assert cfg.dram_geometry.channels == 2
    assert cfg.dram_geometry.banks_per_rank == 8


def test_table3_simulator_throughput(benchmark):
    """Events/second through the full-size Table 3 machine."""
    handle = build_baseline(table3_config())
    trace = [MemAccess((i * 64) % (1 << 22), bool(i & 3 == 0), work=2)
             for i in range(20_000)]

    def run():
        return handle.engine.run(trace).mem_accesses

    assert benchmark(run) == 20_000
