"""Section 4.4: the four overhead categories.

1. Storage: AAM 0.2% of physical memory (16 MB on 8 GB), AST 32 B,
   GAT a few KB -- recomputed from the table geometries.
2. Instructions: XMem operations are 0.014% of dynamic instructions on
   average, at most 0.2% -- measured on instrumented Polybench runs.
3. Hardware area: 0.144 mm^2, 0.03% of a Xeon E5-2698 -- the paper's
   CACTI numbers carried as constants, ratio recomputed.
4. Context switch: one register + ALB/PAT flush (~700 ns) on a 3-5 us
   switch -- recomputed.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_result
from repro.core.aam import AAMConfig
from repro.core.overheads import (
    context_switch_overhead_fraction,
    hardware_area_fraction,
    instruction_overhead,
    storage_overheads,
)
from repro.sim import build_xmem, format_table, scaled_config
from repro.workloads.polybench import KERNELS

KERNEL_SET = ("gemm", "syrk", "mvt", "jacobi2d", "fdtd2d")
N = 64


def test_sec44_storage(benchmark, results_dir):
    ov = benchmark.pedantic(storage_overheads, args=(8 << 30,),
                            rounds=1, iterations=1)
    compact = storage_overheads(8 << 30,
                                AAMConfig(chunk_bytes=1024, atom_id_bits=6))
    rows = [
        ["AAM (512B/8b)", f"{ov.aam_bytes >> 20} MB",
         f"{ov.aam_fraction:.3%}", "0.2%"],
        ["AAM (1KB/6b)", f"{compact.aam_bytes >> 20} MB",
         f"{compact.aam_fraction:.3%}", "0.07%"],
        ["AST", f"{ov.ast_bytes} B", "-", "32 B"],
        ["GAT", f"{ov.gat_bytes} B", "-", "a few KB (19 B/atom)"],
    ]
    table = format_table(["table", "size", "fraction", "paper"], rows,
                         title="Section 4.4(1) -- storage overheads, 8 GB")
    print("\n" + table)
    save_result("sec44_storage", table)
    assert ov.aam_fraction == pytest.approx(0.002, rel=0.05)
    assert compact.aam_fraction == pytest.approx(0.0007, rel=0.1)
    assert ov.ast_bytes == 32


def run_instruction_overhead():
    rows = []
    fractions = []
    for name in KERNEL_SET:
        handle = build_xmem(scaled_config(16))
        kernel = KERNELS[name]
        stats = handle.run(kernel.build_trace(N, 16, lib=handle.xmemlib))
        frac = instruction_overhead(stats.xmem_instructions,
                                    stats.instructions)
        fractions.append(frac)
        rows.append([name, stats.instructions, stats.xmem_instructions,
                     f"{frac:.4%}"])
    return rows, fractions


def test_sec44_instructions(benchmark, results_dir):
    rows, fractions = benchmark.pedantic(run_instruction_overhead,
                                         rounds=1, iterations=1)
    table = format_table(
        ["kernel", "instructions", "xmem instrs", "overhead"], rows,
        title=("Section 4.4(2) -- instruction overhead "
               "(paper: 0.014% avg, 0.2% max)"),
    )
    print("\n" + table)
    save_result("sec44_instructions", table)
    # Paper bound: at most 0.2% additional instructions.
    assert max(fractions) <= 0.002


def test_sec44_area_and_context_switch(benchmark, results_dir):
    area = benchmark.pedantic(hardware_area_fraction, rounds=1,
                              iterations=1)
    ctx = context_switch_overhead_fraction()
    rows = [
        ["AMU + translator area", f"{area:.4%}", "0.03%"],
        ["context-switch overhead", f"{ctx:.2%}", "~700ns / 3-5us"],
    ]
    table = format_table(["overhead", "measured", "paper"], rows,
                         title="Section 4.4(3,4) -- area & context switch")
    print("\n" + table)
    save_result("sec44_area_ctx", table)
    assert area < 0.001
    assert ctx < 0.25
