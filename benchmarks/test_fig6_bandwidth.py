"""Figure 6: effect of prefetching vs. cache management under varying
memory bandwidth.

The paper compares, at the largest tile sizes, (i) XMem-Pref -- XMem
used only to drive prefetching (DRRIP manages the cache) -- and (ii)
full XMem (pinning + prefetching), across per-core bandwidths of 2, 1,
and 0.5 GB/s.  Both help; the gap grows as bandwidth shrinks because
pinning *removes* memory traffic while prefetching only hides it.

We sweep bandwidth scales {1.0, 0.5, 0.25} at tile = n on a subset of
kernels that thrash (the regime the figure studies) and report
geomean speedups over Baseline.  Each (kernel, bandwidth) point runs
all three systems off one recorded trace via :mod:`repro.sim.runner`.
"""

from __future__ import annotations

import pytest

from _bench_utils import (
    bench_n,
    collect_stats,
    save_result,
    save_stats_documents,
)
from repro.sim import SimPoint, format_table, geomean, sweep
from repro.workloads.polybench import KERNELS

SCALE_FACTOR = 32
#: Thrash-prone kernels (tile = n exceeds the 32 KB LLC).
KERNEL_SET = ("gemm", "syrk", "trmm", "jacobi2d", "seidel2d", "fdtd2d")
BANDWIDTH_POINTS = (1.0, 0.5, 0.25)


def bandwidth_points(n: int):
    return [
        SimPoint(kernel=k, n=n, tile=n, scale=SCALE_FACTOR,
                 bandwidth=bw,
                 systems=("baseline", "xmem-pref", "xmem"))
        for bw in BANDWIDTH_POINTS for k in KERNEL_SET
    ]


def test_fig6_bandwidth(benchmark, results_dir):
    n = bench_n()

    def run_all():
        raw = sweep(bandwidth_points(n), collect_stats=collect_stats())
        save_stats_documents("fig6_bandwidth", raw)
        results = {r.point: r for r in raw}
        out = {}
        for bw in BANDWIDTH_POINTS:
            speedups = []
            for k in KERNEL_SET:
                r = results[SimPoint(
                    kernel=k, n=n, tile=n, scale=SCALE_FACTOR,
                    bandwidth=bw,
                    systems=("baseline", "xmem-pref", "xmem"))]
                base = r.cycles("baseline")
                speedups.append((base / r.cycles("xmem-pref"),
                                 base / r.cycles("xmem")))
            out[bw] = (
                geomean([s[0] for s in speedups]),
                geomean([s[1] for s in speedups]),
            )
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[f"{bw:.2f}x", pref, full, full / pref]
            for bw, (pref, full) in out.items()]
    table = format_table(
        ["bandwidth", "XMem-Pref speedup", "XMem speedup",
         "XMem / XMem-Pref"],
        rows,
        title=("Figure 6 -- speedup over Baseline at the largest tile "
               f"(geomean of {len(KERNEL_SET)} kernels)"),
    )
    print("\n" + table)
    save_result("fig6_bandwidth", table)

    # Shape: full XMem beats prefetch-only at every bandwidth, and the
    # gap grows as bandwidth shrinks.
    gaps = [out[bw][1] / out[bw][0] for bw in BANDWIDTH_POINTS]
    assert all(g > 1.0 for g in gaps)
    assert gaps[-1] > gaps[0]
