"""Helpers shared by the experiment benchmarks.

Scale knobs (environment variables):

* ``REPRO_BENCH_N``        -- Polybench problem size (default 96)
* ``REPRO_BENCH_ACCESSES`` -- Use-Case-2 trace length (default 100000)
* ``REPRO_JOBS``           -- worker processes for the figure sweeps
  (default: all cores; ``1`` forces serial in-process execution).
  The sweeps fan out over :mod:`repro.sim.runner`, which guarantees
  parallel results are bit-identical to serial ones.
* ``REPRO_TRACE_CACHE``    -- trace-recording cache directory
  (default ``~/.cache/repro/traces``; ``off`` disables it).  Repeat
  bench invocations replay cached kernel traces instead of
  regenerating them.

Each benchmark writes its printed table into ``benchmarks/results/``
so EXPERIMENTS.md can quote the measured rows.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_n() -> int:
    """Polybench problem size for the figure sweeps."""
    return int(os.environ.get("REPRO_BENCH_N", "96"))


def bench_accesses() -> int:
    """Trace length for the Use-Case-2 suite."""
    return int(os.environ.get("REPRO_BENCH_ACCESSES", "100000"))


def save_result(name: str, text: str) -> None:
    """Persist one experiment's printed table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
