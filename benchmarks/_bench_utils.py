"""Helpers shared by the experiment benchmarks.

Scale knobs (environment variables):

* ``REPRO_BENCH_N``        -- Polybench problem size (default 96)
* ``REPRO_BENCH_ACCESSES`` -- Use-Case-2 trace length (default 100000)
* ``REPRO_JOBS``           -- worker processes for the figure sweeps
  (default: all cores; ``1`` forces serial in-process execution).
  The sweeps fan out over :mod:`repro.sim.runner`, which guarantees
  parallel results are bit-identical to serial ones.
* ``REPRO_TRACE_CACHE``    -- trace-recording cache directory
  (default ``~/.cache/repro/traces``; ``off`` disables it).  Repeat
  bench invocations replay cached kernel traces instead of
  regenerating them.
* ``REPRO_STATS_JSON``     -- when set to a directory, the figure
  drivers also dump one manifest+stats JSON document per sweep point
  under ``<dir>/<experiment>/`` (same format as ``repro sweep
  --stats-json``; compare runs with ``repro diff``).  Off by default;
  collection happens after each run, so the printed tables are
  unchanged.

Each benchmark writes its printed table into ``benchmarks/results/``
so EXPERIMENTS.md can quote the measured rows.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_n() -> int:
    """Polybench problem size for the figure sweeps."""
    return int(os.environ.get("REPRO_BENCH_N", "96"))


def bench_accesses() -> int:
    """Trace length for the Use-Case-2 suite."""
    return int(os.environ.get("REPRO_BENCH_ACCESSES", "100000"))


def save_result(name: str, text: str) -> None:
    """Persist one experiment's printed table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def stats_json_dir() -> Optional[pathlib.Path]:
    """Where ``REPRO_STATS_JSON`` points, or None (collection off)."""
    raw = os.environ.get("REPRO_STATS_JSON", "").strip()
    if not raw or raw.lower() in ("0", "off", "none", "false"):
        return None
    return pathlib.Path(raw).expanduser()


def collect_stats() -> bool:
    """Whether the figure drivers should run collecting sweeps."""
    return stats_json_dir() is not None


def save_stats_documents(experiment: str, results) -> None:
    """Dump one document per collecting :class:`PointResult`.

    No-op unless ``REPRO_STATS_JSON`` is set (matching the
    ``collect_stats()`` the driver passed to ``sweep``).
    """
    root = stats_json_dir()
    if root is None:
        return
    from repro.sim.runner import write_point_documents
    write_point_documents(root / experiment, results)


def save_uc2_stats_documents(experiment: str,
                             results: Dict[str, dict]) -> None:
    """Dump one document per collecting Use-Case-2 workload.

    ``results`` maps workload name -> {system: UseCase2Result}; each
    document mirrors the SimPoint form ({"manifest": ..., "stats":
    {system: snapshot}}) so ``repro diff`` consumes both.
    """
    root = stats_json_dir()
    if root is None:
        return
    out = root / experiment
    out.mkdir(parents=True, exist_ok=True)
    for index, name in enumerate(sorted(results)):
        by_system = results[name]
        doc = {
            "manifest": {
                "schema": 1,
                "kind": "uc2",
                "workload": name,
                "mappings": {sys: r.mapping
                             for sys, r in sorted(by_system.items())},
            },
            "stats": {sys: r.stats
                      for sys, r in sorted(by_system.items())},
        }
        path = out / f"{index:03d}_{name}.json"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
