"""Figure 5: performance portability under shrinking cache space.

The paper tunes each kernel's tile for a 2 MB cache, then runs the
same binary on 2 MB, 1 MB, and 512 KB caches, reporting the *maximum*
execution time over the three sizes, normalized to Baseline at 2 MB.
Baseline degrades by 55% on average; XMem by only 6%.

We reproduce the protocol at scale: the tile is tuned for the scaled
"big" LLC (so its working set is ~75% of it), and the same trace runs
on the big, half, and quarter LLC.  All (kernel, LLC) points go
through :mod:`repro.sim.runner` in a single sweep, so the three cache
sizes literally replay one recorded trace per kernel.
"""

from __future__ import annotations

import math

import pytest

from _bench_utils import (
    bench_n,
    collect_stats,
    save_result,
    save_stats_documents,
)
from repro.sim import SimPoint, format_table, geomean, sweep
from repro.workloads.polybench import FIGURE4_KERNELS, KERNELS

#: The "2 MB-analog" machine: LLC = 64 KB (paper machine / 32).
SCALE_FACTOR = 32
BIG_LLC = 1024 * 1024 // 16          # 64 KB
CACHE_POINTS = (BIG_LLC, BIG_LLC // 2, BIG_LLC // 4)

SMALL_N_KERNELS = {"doitgen": 24, "2mm": 80, "3mm": 64, "syr2k": 80}

#: Kernels whose tile parameter is a band height (WS = tile*n*8*arrays)
#: rather than a 2-D block (WS = tile^2*8).
BAND_KERNELS = {"jacobi2d": 2, "seidel2d": 1, "fdtd2d": 3,
                "mvt": 0, "gemver": 0}


def tuned_tile(kernel: str, n: int, llc_bytes: int) -> int:
    """The tile a static optimizer would pick for ``llc_bytes``.

    Sized so the high-reuse working set fills ~75% of the cache,
    clamped to the problem size.
    """
    budget = int(llc_bytes * 0.75)
    if kernel in BAND_KERNELS:
        arrays = BAND_KERNELS[kernel] or 1
        tile = budget // (n * 8 * arrays)
    else:
        tile = int(math.isqrt(budget // 8))
    return max(4, min(n, tile))


def portability_points(n: int):
    """One SimPoint per (kernel, LLC size), tile tuned for the big LLC."""
    points = []
    for name in FIGURE4_KERNELS:
        kn = SMALL_N_KERNELS.get(name, n)
        tile = tuned_tile(name, kn, BIG_LLC)
        for llc in CACHE_POINTS:
            points.append(SimPoint(kernel=name, n=kn, tile=tile,
                                   scale=SCALE_FACTOR, llc_bytes=llc))
    return points


def test_fig5_portability(benchmark, results_dir):
    n = bench_n()

    def run_all():
        points = portability_points(n)
        out = sweep(points, collect_stats=collect_stats())
        save_stats_documents("fig5_portability", out)
        results = {r.point: r for r in out}
        rows = []
        for name in FIGURE4_KERNELS:
            kernel_pts = [p for p in points if p.kernel == name]
            ref = results[kernel_pts[0]].cycles("baseline")
            base_worst = max(
                results[p].cycles("baseline") for p in kernel_pts) / ref
            xmem_worst = max(
                results[p].cycles("xmem") for p in kernel_pts) / ref
            rows.append([name, kernel_pts[0].tile, base_worst,
                         xmem_worst])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    base_mean = geomean([r[2] for r in rows])
    xmem_mean = geomean([r[3] for r in rows])
    rows.append(["geomean", "-", base_mean, xmem_mean])
    table = format_table(
        ["kernel", "tuned tile", "baseline worst (norm)",
         "xmem worst (norm)"],
        rows,
        title=("Figure 5 -- max slowdown over {64,32,16} KB LLC, "
               "tile tuned for 64 KB"),
    )
    print("\n" + table)
    save_result("fig5_portability", table)

    # Shape: both degrade when the cache shrinks, XMem degrades less.
    assert base_mean > 1.0
    assert xmem_mean < base_mean
