"""Co-running interference (the Section 5.1 scenario, an extension).

The paper motivates Use Case 1 with cache space changing "in the
presence of co-running applications".  This bench quantifies it on the
multi-core model: a victim whose working set fits half the shared LLC
co-runs with a streaming hog, with and without XMem protection.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_result
from repro.core.attributes import PatternType
from repro.cpu.trace import MemAccess, XMemOp
from repro.sim import format_table
from repro.sim.config import scaled_config
from repro.sim.corun import CorunSystem


def stream(lines, passes, base=0, work=2):
    for _ in range(passes):
        for i in range(lines):
            yield MemAccess(base + i * 64, False, work=work)


def run_corun_experiment():
    cfg = scaled_config(16)
    llc_lines = cfg.llc_bytes // 64
    ws = int(llc_lines * 0.75)

    def victim():
        return stream(ws, passes=10, work=4)

    def victim_xmem(atom):
        yield XMemOp("atom_map", atom, 0, ws * 64)
        yield XMemOp("atom_activate", atom)
        yield from stream(ws, passes=10, work=4)

    def hog():
        # A compute-throttled scanner: steals capacity, not just
        # bandwidth, so the cache effect is what dominates.
        return stream(3 * llc_lines, passes=3, base=1 << 30, work=24)

    # Victim alone.
    (solo,) = CorunSystem(cfg, 1).run([victim()])
    # Victim + hog, no semantics.
    plain, _ = CorunSystem(cfg, 2).run([victim(), hog()])
    # Victim + hog, XMem pins the victim's working set.
    prot_sys = CorunSystem(cfg, 2, xmem_cores=(0,))
    lib = prot_sys.cores[0].xmemlib
    atom = lib.create_atom("ws", pattern=PatternType.REGULAR,
                           stride_bytes=64, reuse=255)
    prot, _ = prot_sys.run([victim_xmem(atom), hog()])
    return solo, plain, prot


def test_corun_interference(benchmark, results_dir):
    solo, plain, prot = benchmark.pedantic(run_corun_experiment,
                                           rounds=1, iterations=1)
    rows = [
        ["victim alone", f"{solo.cycles:.0f}", 1.0, solo.llc_misses],
        ["+ hog (baseline)", f"{plain.cycles:.0f}",
         plain.cycles / solo.cycles, plain.llc_misses],
        ["+ hog (XMem pinned)", f"{prot.cycles:.0f}",
         prot.cycles / solo.cycles, prot.llc_misses],
    ]
    table = format_table(
        ["configuration", "victim cycles", "vs. alone", "LLC misses"],
        rows, title="Co-run interference on the shared LLC (Sec. 5.1)",
    )
    print("\n" + table)
    save_result("corun_interference", table)

    # Shape: the hog hurts the victim; XMem recovers most of it.
    assert plain.cycles > solo.cycles
    assert prot.llc_misses < plain.llc_misses
    recovered = (plain.cycles - prot.cycles) / \
        max(plain.cycles - solo.cycles, 1.0)
    assert recovered > 0.3
