"""Interference matrix: suite-catalog tenant mixes on the shared LLC.

The Section 5.1 argument at sweep scale: every (victim, aggressor)
pair of a six-workload slice of the Use-Case-2 suite co-runs on the
two-core shared-LLC model, baseline versus XMem (the victim's atoms
registered with the global pin controller).  Cells are the victim's
slowdown against its solo-baseline run, so the two matrices answer
the datacenter question directly: which tenants can share a socket,
and how much of the damage does pinning recover?  A sampled set of
three-tenant mixes checks that the protection survives a second
aggressor.

Footprints use the co-run scaling discipline (``footprint_div=256``,
see :func:`repro.sim.runner.record_suite_trace`): the suite's
structures are sized for the DRAM-placement studies, so LLC-contention
studies shrink them by the same factor family ``scaled_config``
applies to the caches -- working sets then wrap within the trace and
the shared LLC has temporal reuse worth protecting.

The mixes fan out over ``REPRO_JOBS`` workers via
:func:`repro.sim.runner.corun_sweep`; parallel runs are bit-identical
to serial ones, so the committed tables regenerate byte-identical
regardless of the worker count.
"""

from __future__ import annotations

import os

import pytest

from _bench_utils import save_result
from repro.sim import (
    CorunPoint,
    amean,
    corun_sweep,
    format_matrix,
    format_table,
)

#: The matrix slice: two pointer/graph victims (mcf, omnetpp), a
#: tree-walker (xalancbmk), a hot-vector workload (libquantum), and
#: two streaming aggressors (lbm, sc).
MATRIX_WORKLOADS = ("mcf", "omnetpp", "xalancbmk", "libquantum",
                    "lbm", "sc")

#: Sampled three-tenant mixes (victim first; it carries the atoms).
TRIPLES = (
    ("mcf", "lbm", "sc"),
    ("omnetpp", "lbm", "libquantum"),
    ("xalancbmk", "sc", "lbm"),
    ("libquantum", "mcf", "omnetpp"),
)

FOOTPRINT_DIV = 256
SCALE = 32


def matrix_accesses() -> int:
    """Dense events per tenant (``REPRO_BENCH_CORUN_ACCESSES``)."""
    return int(os.environ.get("REPRO_BENCH_CORUN_ACCESSES", "6000"))


def run_matrix():
    """All solo/pair/triple mixes, fanned over the process pool."""
    accesses = matrix_accesses()

    def point(tenants, modes=("baseline", "xmem")):
        return CorunPoint(tenants=tenants, accesses=accesses,
                          scale=SCALE, footprint_div=FOOTPRINT_DIV,
                          modes=modes)

    solo_points = [point((name,), modes=("baseline",))
                   for name in MATRIX_WORKLOADS]
    pair_points = [point((victim, aggressor))
                   for victim in MATRIX_WORKLOADS
                   for aggressor in MATRIX_WORKLOADS
                   if victim != aggressor]
    triple_points = [point(mix) for mix in TRIPLES]
    results = corun_sweep(solo_points + pair_points + triple_points)

    solo = {r.point.tenants[0]: r.cycles("baseline")
            for r in results[:len(solo_points)]}
    pairs = {r.point.tenants: r
             for r in results[len(solo_points):
                              len(solo_points) + len(pair_points)]}
    triples = results[len(solo_points) + len(pair_points):]
    return solo, pairs, triples


def test_corun_matrix(benchmark, results_dir):
    solo, pairs, triples = benchmark.pedantic(run_matrix, rounds=1,
                                              iterations=1)

    def cell(mode):
        def value(victim, aggressor):
            if victim == aggressor:
                return None
            r = pairs[(victim, aggressor)]
            return f"{r.cycles(mode) / solo[victim]:.3f}"
        return value

    accesses = matrix_accesses()
    header = (f"victim slowdown vs. solo baseline "
              f"(accesses={accesses}, scale={SCALE}, "
              f"footprint_div={FOOTPRINT_DIV})")
    base_tbl = format_matrix(
        MATRIX_WORKLOADS, MATRIX_WORKLOADS, cell("baseline"),
        corner="victim \\ aggressor",
        title=f"Baseline -- {header}")
    xmem_tbl = format_matrix(
        MATRIX_WORKLOADS, MATRIX_WORKLOADS, cell("xmem"),
        corner="victim \\ aggressor",
        title=f"XMem-pinned victim -- {header}")

    triple_rows = []
    for r in triples:
        victim = r.point.tenants[0]
        triple_rows.append([
            " + ".join(r.point.tenants),
            f"{r.cycles('baseline') / solo[victim]:.3f}",
            f"{r.cycles('xmem') / solo[victim]:.3f}",
        ])
    triple_tbl = format_table(
        ["mix (victim first)", "baseline slowdown", "xmem slowdown"],
        triple_rows, title="Sampled triples -- victim slowdown vs. "
                           "solo baseline")

    table = "\n\n".join([base_tbl, xmem_tbl, triple_tbl])
    print("\n" + table)
    save_result("corun_matrix", table)

    # Shape: co-running always costs the victim something, and the
    # pin controller recovers a large share of it on average.  One
    # pairing is a known regression (mcf's NON_DET structure pins
    # partially and trades away shared capacity against sc), so the
    # claims are aggregate, not per-cell.
    base_cells = [pairs[(v, a)].cycles("baseline") / solo[v]
                  for v in MATRIX_WORKLOADS for a in MATRIX_WORKLOADS
                  if v != a]
    xmem_cells = [pairs[(v, a)].cycles("xmem") / solo[v]
                  for v in MATRIX_WORKLOADS for a in MATRIX_WORKLOADS
                  if v != a]
    assert all(s > 1.0 for s in base_cells)
    assert amean(xmem_cells) < 0.75 * amean(base_cells)
    protected = sum(1 for b, x in zip(base_cells, xmem_cells) if x < b)
    assert protected >= 0.8 * len(base_cells)
    for r in triples:
        victim = r.point.tenants[0]
        assert r.cycles("xmem") < r.cycles("baseline")
