"""Figure 4: execution time vs. tile size, Baseline vs. XMem.

The paper compiles each of 12 Polybench kernels at a range of tile
sizes and shows (i) small tiles lose reuse, (ii) tiles larger than the
available cache thrash the baseline badly, and (iii) XMem recovers a
large part of the thrashing loss via pinning + semantic prefetching.

This bench sweeps tile = n/8 .. n for every kernel on the scaled
machine and prints, per kernel, execution time normalized to the
kernel's best baseline tile.

The sweep runs on :mod:`repro.sim.runner`: the per-tile points fan out
over ``REPRO_JOBS`` worker processes, and Baseline/XMem replay one
shared trace recording per tile (cached on disk across invocations).
"""

from __future__ import annotations

import pytest

from _bench_utils import (
    bench_n,
    collect_stats,
    save_result,
    save_stats_documents,
)
from repro.sim import SimPoint, format_table, scaled_config, sweep
from repro.workloads.polybench import FIGURE4_KERNELS, KERNELS

#: Machine: 32 KB LLC slice so tile = n thrashes (n^2 * 8 B >> LLC).
SCALE_FACTOR = 32

#: Heavier kernels run at reduced sizes (doitgen is O(n^4); the matmul
#: chains and syr2k emit 2-3x the events of gemm).
SMALL_N_KERNELS = {"doitgen": 24, "2mm": 80, "3mm": 64, "syr2k": 80}


def tile_points(n: int):
    return [max(4, n // 8), n // 4, n // 2, n]


def run_kernel(name: str, n: int):
    points = [SimPoint(kernel=name, n=n, tile=tile, scale=SCALE_FACTOR)
              for tile in tile_points(n)]
    results = sweep(points, collect_stats=collect_stats())
    save_stats_documents(f"fig4_{name}", results)
    base_times = {r.point.tile: r.cycles("baseline") for r in results}
    xmem_times = {r.point.tile: r.cycles("xmem") for r in results}
    best = min(base_times.values())
    rows = [[name, tile, base_times[tile] / best, xmem_times[tile] / best]
            for tile in tile_points(n)]
    return rows, base_times, xmem_times


@pytest.mark.parametrize("kernel", FIGURE4_KERNELS)
def test_fig4_kernel(kernel, benchmark, results_dir):
    n = SMALL_N_KERNELS.get(kernel, bench_n())

    rows, base_times, xmem_times = benchmark.pedantic(
        run_kernel, args=(kernel, n), rounds=1, iterations=1,
    )

    table = format_table(
        ["kernel", "tile", "baseline (norm)", "xmem (norm)"],
        rows, title=f"Figure 4 -- {kernel} (N={n})",
    )
    print("\n" + table)
    save_result(f"fig4_{kernel}", table)

    largest = tile_points(n)[-1]
    best = min(base_times.values())
    # Shape assertions: when the largest tile's working set exceeds the
    # LLC it must hurt the baseline and XMem must not make it worse;
    # kernels whose largest tile still fits (doitgen's coefficient
    # matrix is tiny by construction) just need to stay at parity.
    cfg = scaled_config(SCALE_FACTOR)
    tile_ws = largest * largest * 8
    if tile_ws > cfg.llc_bytes:
        assert base_times[largest] > best
    assert xmem_times[largest] <= base_times[largest] * 1.02
