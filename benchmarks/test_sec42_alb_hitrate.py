"""Section 4.2: the 256-entry ALB covers ~98.9% of ATOM_LOOKUP requests.

Reproduced by running an XMem-instrumented tiled kernel and reading the
atom-lookaside-buffer hit rate off the AMU.  Every LLC fill consults
the AMU (the pin predicate), so the lookup stream is exactly the one
the paper's components generate.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_result
from repro.sim import build_xmem, format_table, scaled_config
from repro.workloads.polybench import KERNELS

KERNEL_SET = ("gemm", "syrk", "jacobi2d")
N = 64


def run_alb_experiment():
    rows = []
    for name in KERNEL_SET:
        handle = build_xmem(scaled_config(16))
        kernel = KERNELS[name]
        handle.run(kernel.build_trace(N, N // 2, lib=handle.xmemlib))
        stats = handle.xmemlib.process.amu.alb.stats
        rows.append([name, stats.lookups, f"{stats.hit_rate:.3%}"])
    return rows


def test_sec42_alb_hit_rate(benchmark, results_dir):
    rows = benchmark.pedantic(run_alb_experiment, rounds=1, iterations=1)
    table = format_table(
        ["kernel", "ATOM_LOOKUPs", "ALB hit rate"], rows,
        title="Section 4.2 -- 256-entry ALB coverage (paper: 98.9%)",
    )
    print("\n" + table)
    save_result("sec42_alb_hitrate", table)
    for name, lookups, rate in rows:
        assert lookups > 0
        assert float(rate.rstrip("%")) / 100 > 0.95, name
