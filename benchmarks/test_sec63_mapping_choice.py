"""Section 6.3: strengthening the baseline's DRAM address mapping.

The paper's Use-Case-2 baseline uses "the best-performing physical
DRAM mapping among all the seven mapping schemes in DRAMSim2 and the
two proposed in [106, 107]".  This bench sweeps all nine schemes on
three representative workloads (streaming, mixed, random) and reports
cycles per scheme, confirming the scheme the Figure 7 bench adopts is
competitive across classes.
"""

from __future__ import annotations

import dataclasses

import pytest

from _bench_utils import save_result
from repro.dram.mapping import ALL_SCHEMES
from repro.sim import format_table
from repro.sim.usecase2 import run_system
from repro.workloads.suite import BY_NAME

WORKLOADS = ("GemsFDTD", "spmv", "mcf")
ACCESSES = 20_000


def sweep_schemes():
    results = {}
    for wname in WORKLOADS:
        w = dataclasses.replace(BY_NAME[wname], accesses=ACCESSES)
        results[wname] = {
            scheme: run_system(w, "baseline", mapping=scheme).cycles
            for scheme in ALL_SCHEMES
        }
    return results


def test_sec63_mapping_choice(benchmark, results_dir):
    results = benchmark.pedantic(sweep_schemes, rounds=1, iterations=1)

    rows = []
    for scheme in ALL_SCHEMES:
        row = [scheme]
        for wname in WORKLOADS:
            best = min(results[wname].values())
            row.append(results[wname][scheme] / best)
        rows.append(row)
    table = format_table(
        ["scheme"] + [f"{w} (norm)" for w in WORKLOADS], rows,
        title="Section 6.3 -- baseline mapping-scheme sweep",
    )
    print("\n" + table)
    save_result("sec63_mapping_choice", table)

    # The strengthened baseline's candidate set must contain a scheme
    # within 5% of the global best for every workload class.
    from repro.sim.usecase2 import BASELINE_MAPPING_CANDIDATES
    for wname in WORKLOADS:
        best = min(results[wname].values())
        cand_best = min(results[wname][c]
                        for c in BASELINE_MAPPING_CANDIDATES)
        assert cand_best <= best * 1.05, wname
    # And the single-core finding this sweep documents: under
    # channel-interleaved schemes (scheme5/6) streams run much faster
    # than under the row-interleaved scheme -- the mapping-sensitivity
    # context for the Figure 7 methodology note in EXPERIMENTS.md.
    assert results["GemsFDTD"]["scheme5"] < \
        results["GemsFDTD"]["scheme2"]
