"""Figures 7 and 8: Use Case 2 -- OS page placement in DRAM.

Figure 7: speedup of XMem placement and of an Ideal (perfect row
buffer) system over the strengthened baseline, for 27 memory-intensive
workloads.  The paper reports XMem at +8.5% on average (up to +31.9%)
against an Ideal bound of +24.4%, with 5 workloads gaining little
(sc/histo: no headroom; mcf/xalancbmk/bfsRod: random-dominated).

Figure 8: the same runs, reported as normalized memory *read* latency
(paper: -12.6% average, up to -31.4%; writes -6.2%).

One experiment produces both figures; the two test functions check the
two shapes.
"""

from __future__ import annotations

import pytest

from _bench_utils import (
    bench_accesses,
    collect_stats,
    save_result,
    save_uc2_stats_documents,
)
from repro.sim import UC2Point, amean, format_table, uc2_sweep
from repro.workloads.suite import (
    LOW_HEADROOM,
    RANDOM_DOMINATED,
    SUITE,
)

_cache = {}


def run_suite():
    """Run all 27 workloads x 3 systems once; memoized.

    The per-workload points fan out over ``REPRO_JOBS`` worker
    processes via :mod:`repro.sim.runner`.
    """
    if "results" in _cache:
        return _cache["results"]
    accesses = bench_accesses()
    points = [UC2Point(workload=w.name, accesses=accesses,
                       collect_stats=collect_stats())
              for w in SUITE]
    out = uc2_sweep(points)
    results = {p.workload: r for p, r in zip(points, out)}
    save_uc2_stats_documents("fig7_fig8", results)
    _cache["results"] = results
    return results


def test_fig7_speedup(benchmark, results_dir):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    rows = []
    xmem_speedups = {}
    ideal_speedups = {}
    for name, res in results.items():
        base, xmem, ideal = (res["baseline"], res["xmem"], res["ideal"])
        xs = base.cycles / xmem.cycles
        xi = base.cycles / ideal.cycles
        xmem_speedups[name] = xs
        ideal_speedups[name] = xi
        rows.append([name, xs, xi,
                     f"{base.record.dram_row_hit_rate:.2f}",
                     f"{xmem.record.dram_row_hit_rate:.2f}"])
    rows.sort(key=lambda r: r[1], reverse=True)
    rows.append(["amean", amean(xmem_speedups.values()),
                 amean(ideal_speedups.values()), "-", "-"])
    table = format_table(
        ["workload", "XMem speedup", "Ideal speedup",
         "base RBL", "xmem RBL"],
        rows, title="Figure 7 -- speedup over Baseline (27 workloads)",
    )
    print("\n" + table)
    save_result("fig7_speedup", table)

    mean_xmem = amean(xmem_speedups.values())
    mean_ideal = amean(ideal_speedups.values())
    # Shape: XMem gains on average; Ideal gains more on average; the
    # special-case workloads gain little.
    assert mean_xmem > 1.0
    assert mean_ideal > mean_xmem * 0.98
    best = max(xmem_speedups.values())
    assert best > mean_xmem
    for name in LOW_HEADROOM + RANDOM_DOMINATED:
        assert xmem_speedups[name] < mean_xmem + 0.02, name


def test_fig8_read_latency(benchmark, results_dir):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    rows = []
    read_norm = {}
    write_norm = {}
    for name, res in results.items():
        base = res["baseline"].record
        xmem = res["xmem"].record
        rn = xmem.dram_read_latency / base.dram_read_latency
        wn = (xmem.dram_write_latency / base.dram_write_latency
              if base.dram_write_latency else 1.0)
        read_norm[name] = rn
        write_norm[name] = wn
        rows.append([name, rn, wn])
    rows.sort(key=lambda r: r[1])
    rows.append(["amean", amean(read_norm.values()),
                 amean(write_norm.values())])
    table = format_table(
        ["workload", "read latency (norm)", "write latency (norm)"],
        rows, title="Figure 8 -- memory latency normalized to Baseline",
    )
    print("\n" + table)
    save_result("fig8_latency", table)

    # Shape: XMem reduces average read latency; the biggest reduction
    # is substantially larger than the mean.
    mean_read = amean(read_norm.values())
    assert mean_read < 1.0
    assert min(read_norm.values()) < mean_read
