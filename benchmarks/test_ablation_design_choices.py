"""Ablations of the key design choices DESIGN.md calls out.

Not figures from the paper, but the sensitivity studies a reviewer
would ask for:

* **ALB size** -- the paper picks 256 entries for 98.9% coverage; we
  sweep 16..512 and show the knee.
* **AAM chunk granularity** -- the paper defaults to 512 B and argues
  1 KB/6-bit IDs as the compact point; we sweep granularity and report
  the Use-Case-1 speedup retained (coarser chunks blur tile edges).
* **Pin fraction** -- the paper pins at most 75% of the cache "so the
  cache still has space to handle other data"; we sweep 25..95%.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_result
from repro.core.aam import AAMConfig
from repro.core.xmemlib import XMemProcess
from repro.sim import (
    build_baseline,
    build_xmem,
    format_table,
    scaled_config,
)
from repro.workloads.polybench import KERNELS

N = 96
KERNEL = "gemm"
SCALE_FACTOR = 32


def run_alb_sweep():
    rows = []
    for entries in (16, 64, 256, 512):
        cfg = scaled_config(16)
        process = XMemProcess(alb_entries=entries)
        handle = build_xmem(cfg, process=process)
        handle.run(KERNELS[KERNEL].build_trace(64, 32,
                                               lib=handle.xmemlib))
        stats = handle.xmemlib.process.amu.alb.stats
        rows.append([entries, stats.lookups, f"{stats.hit_rate:.3%}"])
    return rows


def test_ablation_alb_size(benchmark, results_dir):
    rows = benchmark.pedantic(run_alb_sweep, rounds=1, iterations=1)
    table = format_table(["ALB entries", "lookups", "hit rate"], rows,
                         title="Ablation -- ALB size (paper: 256)")
    print("\n" + table)
    save_result("ablation_alb_size", table)
    rates = [float(r[2].rstrip("%")) for r in rows]
    assert rates == sorted(rates)  # monotone in size
    assert rates[2] > 95.0         # 256 entries is past the knee


def run_chunk_sweep():
    kernel = KERNELS[KERNEL]
    cfg = scaled_config(SCALE_FACTOR)
    base = build_baseline(cfg).run(kernel.build_trace(N, N)).cycles
    rows = []
    for chunk in (512, 1024, 4096):
        process = XMemProcess(aam_config=AAMConfig(chunk_bytes=chunk))
        handle = build_xmem(cfg, process=process)
        cycles = handle.run(
            kernel.build_trace(N, N, lib=handle.xmemlib)
        ).cycles
        rows.append([f"{chunk} B", base / cycles])
    return rows


def test_ablation_aam_granularity(benchmark, results_dir):
    rows = benchmark.pedantic(run_chunk_sweep, rounds=1, iterations=1)
    table = format_table(
        ["AAM chunk", "XMem speedup over baseline"], rows,
        title="Ablation -- AAM granularity at the largest gemm tile",
    )
    print("\n" + table)
    save_result("ablation_aam_granularity", table)
    # Hints stay useful at every granularity (never a big slowdown).
    assert all(r[1] > 0.95 for r in rows)


def run_pin_fraction_sweep():
    kernel = KERNELS[KERNEL]
    cfg = scaled_config(SCALE_FACTOR)
    base = build_baseline(cfg).run(kernel.build_trace(N, N)).cycles
    rows = []
    for fraction in (0.25, 0.5, 0.75, 0.95):
        handle = build_xmem(cfg)
        handle.controller.pin_fraction = fraction
        cycles = handle.run(
            kernel.build_trace(N, N, lib=handle.xmemlib)
        ).cycles
        rows.append([f"{fraction:.0%}", base / cycles])
    return rows


def test_ablation_pin_fraction(benchmark, results_dir):
    rows = benchmark.pedantic(run_pin_fraction_sweep, rounds=1,
                              iterations=1)
    table = format_table(
        ["pin budget", "XMem speedup over baseline"], rows,
        title="Ablation -- pinning budget (paper: 75%)",
    )
    print("\n" + table)
    save_result("ablation_pin_fraction", table)
    # Pinning helps across the range in the thrashing regime.
    speedups = [r[1] for r in rows]
    assert max(speedups) > 1.05
    # The default is within 10% of the best point.
    assert speedups[2] > max(speedups) * 0.9
