"""Serve executor throughput: thread vs. process pool.

One CPU-bound batch -- eight gemm kernel points (distinct tile sizes,
so no dedup) -- submitted as a single run against two in-process
servers: ``--executor thread`` (the pre-pool in-process execution,
where the GIL serializes simulation) and ``--executor process``
(import-warm worker children, truly parallel).  Both servers share
one disk trace cache, so scenario builds replay recordings and the
measured window is run submission -> terminal state: pure point
execution through each data plane.

The served documents are also held to each other: both batches are
written server-side and gated with ``repro diff`` (stats-identical
across executors), so the speedup is not bought with drift.

Scale knobs: ``REPRO_BENCH_SERVE_N`` (default 64),
``REPRO_BENCH_SERVE_WORKERS`` (default 4).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import urllib.request

from _bench_utils import save_result

TILES = (4, 8, 12, 16, 24, 32, 48, 64)


def _call(port: int, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=600) as resp:
        return resp.status, json.loads(resp.read())


def _run_batch(executor: str, workers: int, n: int, cache_dir: str,
               out_dir: str) -> float:
    """Submit the 8-point batch on a fresh server; seconds to done."""
    from repro.serve.app import serve

    server = serve(port=0, workers=workers, executor=executor,
                   cache_dir=cache_dir)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        points = []
        for tile in TILES:
            _, doc = _call(port, "POST", "/v1/scenarios",
                           {"kernel": "gemm", "n": n, "tile": tile})
            points.append({"scenario": doc["scenario"], "config": {}})
        t0 = time.perf_counter()
        status, doc = _call(port, "POST", "/v1/runs",
                            {"points": points, "out_dir": out_dir})
        assert status == 202, doc
        run_id = doc["run"]
        while True:
            _, doc = _call(port, "GET", f"/v1/runs/{run_id}")
            if doc["status"] in ("done", "failed", "cancelled") and (
                    "written" in doc or doc["status"] != "done"):
                break
            time.sleep(0.05)
        wall = time.perf_counter() - t0
        assert doc["status"] == "done", doc.get("errors")
        assert doc["written"] == len(TILES), doc
        return wall
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


def test_serve_throughput(tmp_path, results_dir):
    n = int(os.environ.get("REPRO_BENCH_SERVE_N", "64"))
    workers = int(os.environ.get("REPRO_BENCH_SERVE_WORKERS", "4"))
    cache = str(tmp_path / "traces")
    dirs = {ex: str(tmp_path / f"served-{ex}")
            for ex in ("thread", "process")}

    # Warm the shared trace cache so neither timed batch records.
    _run_batch("thread", workers, n, cache, str(tmp_path / "warm"))

    walls = {ex: _run_batch(ex, workers, n, cache, dirs[ex])
             for ex in ("thread", "process")}

    diff = subprocess.run(
        [sys.executable, "-m", "repro", "diff",
         dirs["thread"], dirs["process"]],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": "src"})
    assert diff.returncode == 0, diff.stdout + diff.stderr

    speedup = walls["thread"] / walls["process"]
    lines = [
        "Serve executor throughput -- 8-point CPU-bound batch",
        "====================================================",
        "",
        f"Workload: one run of {len(TILES)} gemm kernel points "
        f"(N={n}, tiles {','.join(map(str, TILES))}),",
        f"workers={workers}, shared warm trace cache, wall-clock "
        f"from run submission",
        "to terminal state.  Documents written server-side; "
        "`repro diff` across",
        "the two executors: zero deltas.",
        "",
        "executor                      wall-clock",
        "----------------------------  ----------",
        f"thread (in-process, GIL)      {walls['thread']:8.1f} s",
        f"process pool                  {walls['process']:8.1f} s",
        "",
        f"process-pool speedup: {speedup:.2f}x "
        f"(host: {os.cpu_count()} CPU(s))",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    save_result("serve_throughput_measured", text)
