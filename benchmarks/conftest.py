"""Fixtures for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper and
prints the rows it produces, so ``pytest benchmarks/ --benchmark-only``
doubles as the experiment log.  See ``_bench_utils`` for scale knobs.
"""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _bench_utils import RESULTS_DIR  # noqa: E402


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """The directory benchmark tables are persisted into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
