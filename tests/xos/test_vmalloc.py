"""Unit tests for the atom-aware heap allocator (Section 4.1.2)."""

import pytest

from repro.core.errors import AllocationError
from repro.xos.vmalloc import HEAP_BASE, HeapAllocator

PAGE = 4096


class RecordingBackPage:
    """Captures the (vpage, atom_id) calls the OS hook would receive."""

    def __init__(self):
        self.calls = []

    def __call__(self, vpage, atom_id):
        self.calls.append((vpage, atom_id))


@pytest.fixture
def backing():
    return RecordingBackPage()


@pytest.fixture
def heap(backing):
    return HeapAllocator(backing, page_bytes=PAGE)


class TestMalloc:
    def test_first_allocation_at_heap_base(self, heap):
        assert heap.malloc(100) == HEAP_BASE

    def test_bump_is_page_rounded(self, heap):
        a = heap.malloc(1)           # rounds to one page
        b = heap.malloc(PAGE + 1)    # rounds to two pages
        c = heap.malloc(PAGE)        # exact page is not over-rounded
        assert b == a + PAGE
        assert c == b + 2 * PAGE

    def test_zero_and_negative_sizes_rejected(self, heap):
        with pytest.raises(AllocationError):
            heap.malloc(0)
        with pytest.raises(AllocationError):
            heap.malloc(-8)

    def test_every_fresh_page_backed_with_atom(self, heap, backing):
        base = heap.malloc(3 * PAGE, atom_id=7)
        assert backing.calls == [
            (base // PAGE + i, 7) for i in range(3)
        ]

    def test_atomless_allocation_backs_with_none(self, heap, backing):
        heap.malloc(PAGE)
        assert backing.calls == [(HEAP_BASE // PAGE, None)]

    def test_live_bytes_tracks_rounded_sizes(self, heap):
        heap.malloc(1)
        heap.malloc(PAGE + 1)
        assert heap.live_bytes == 3 * PAGE


class TestFree:
    def test_free_returns_the_allocation(self, heap):
        base = heap.malloc(PAGE, atom_id=3)
        alloc = heap.free(base)
        assert alloc.start == base
        assert alloc.atom_id == 3
        assert heap.live_bytes == 0

    def test_double_free_rejected(self, heap):
        base = heap.malloc(PAGE)
        heap.free(base)
        with pytest.raises(AllocationError):
            heap.free(base)

    def test_free_of_interior_address_rejected(self, heap):
        base = heap.malloc(2 * PAGE)
        with pytest.raises(AllocationError):
            heap.free(base + PAGE)

    def test_va_not_reused_after_free(self, heap):
        base = heap.malloc(PAGE)
        heap.free(base)
        assert heap.malloc(PAGE) == base + PAGE


class TestAtomQueries:
    def test_allocation_at_covers_whole_range(self, heap):
        base = heap.malloc(2 * PAGE, atom_id=5)
        assert heap.allocation_at(base).atom_id == 5
        assert heap.allocation_at(base + 2 * PAGE - 1).atom_id == 5
        assert heap.allocation_at(base + 2 * PAGE) is None

    def test_atom_of_range(self, heap):
        a = heap.malloc(PAGE, atom_id=1)
        b = heap.malloc(PAGE)
        assert heap.atom_of_range(a) == 1
        assert heap.atom_of_range(b) is None
        assert heap.atom_of_range(b + PAGE) is None

    def test_static_atom_map_records_atom_allocs_only(self, heap):
        heap.malloc(PAGE)                      # anonymous: not recorded
        a = heap.malloc(PAGE, atom_id=2)
        b = heap.malloc(PAGE, atom_id=9)
        recorded = [(al.start, al.atom_id) for al in heap.static_atom_map]
        assert recorded == [(a, 2), (b, 9)]

    def test_static_map_survives_free(self, heap):
        """The static VA->atom record is load-time state, not liveness."""
        base = heap.malloc(PAGE, atom_id=4)
        heap.free(base)
        assert [a.atom_id for a in heap.static_atom_map] == [4]
        assert heap.atom_of_range(base) is None  # live query, though
