"""Tests for NUMA placement (repro.xos.numa)."""

import pytest

from repro.core.attributes import RWChar, make_attributes
from repro.core.errors import ConfigurationError
from repro.xos.numa import (
    NumaCandidate,
    NumaMachine,
    NumaTrafficModel,
    REPLICATED,
    first_touch_numa,
    plan_numa_placement,
)


def cand(atom_id, shares, rw=RWChar.READ_WRITE, name="x"):
    return NumaCandidate(atom_id, make_attributes(name, rw=rw), shares)


class TestMachine:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NumaMachine(nodes=0)
        with pytest.raises(ConfigurationError):
            NumaMachine(local_latency=100, remote_latency=50)


class TestCandidates:
    def test_dominant_node(self):
        assert cand(0, (10.0, 90.0)).dominant_node == 1

    def test_shared_detection(self):
        assert cand(0, (50.0, 50.0)).shared
        assert not cand(0, (90.0, 10.0)).shared

    def test_bad_distribution(self):
        with pytest.raises(ConfigurationError):
            cand(0, ())
        with pytest.raises(ConfigurationError):
            cand(0, (-1.0, 2.0))


class TestPlacement:
    M = NumaMachine(nodes=2)

    def test_private_data_colocated(self):
        c = cand(0, (5.0, 95.0))
        assert plan_numa_placement([c], self.M)[0] == 1

    def test_shared_read_only_replicated(self):
        c = cand(0, (50.0, 50.0), rw=RWChar.READ_ONLY)
        assert plan_numa_placement([c], self.M)[0] == REPLICATED

    def test_shared_writable_not_replicated(self):
        c = cand(0, (50.0, 50.0), rw=RWChar.READ_WRITE)
        assert plan_numa_placement([c], self.M)[0] in (0, 1)

    def test_private_read_only_not_replicated(self):
        # Replication buys nothing if only one node reads the data.
        c = cand(0, (100.0, 0.0), rw=RWChar.READ_ONLY)
        assert plan_numa_placement([c], self.M)[0] == 0

    def test_node_count_validated(self):
        c = cand(0, (1.0, 1.0, 1.0))
        with pytest.raises(ConfigurationError):
            plan_numa_placement([c], self.M)

    def test_first_touch_puts_everything_on_one_node(self):
        cands = [cand(0, (0.0, 100.0)), cand(1, (100.0, 0.0), name="b")]
        placement = first_touch_numa(cands, self.M)
        assert set(placement.values()) == {0}


class TestTrafficModel:
    M = NumaMachine(nodes=2, local_latency=100, remote_latency=300)

    def test_local_placement_latency(self):
        model = NumaTrafficModel(self.M)
        c = cand(0, (100.0, 0.0))
        assert model.atom_latency(c, 0) == 100
        assert model.atom_latency(c, 1) == 300

    def test_replicated_always_local(self):
        model = NumaTrafficModel(self.M)
        c = cand(0, (50.0, 50.0), rw=RWChar.READ_ONLY)
        assert model.atom_latency(c, REPLICATED) == 100

    def test_semantic_beats_first_touch(self):
        """The Table 1 row-7 claim on a partitioned + shared-RO mix."""
        cands = [
            cand(0, (100.0, 0.0), name="node0_part"),
            cand(1, (0.0, 100.0), name="node1_part"),
            cand(2, (50.0, 50.0), rw=RWChar.READ_ONLY, name="model"),
        ]
        model = NumaTrafficModel(self.M)
        semantic = model.mean_latency(
            cands, plan_numa_placement(cands, self.M))
        baseline = model.mean_latency(
            cands, first_touch_numa(cands, self.M))
        assert semantic == pytest.approx(100.0)   # everything local
        assert baseline > semantic

    def test_empty(self):
        assert NumaTrafficModel(self.M).mean_latency([], {}) == 0.0
