"""Unit tests for the OS process/loader layer (Section 3.5.2)."""

import pytest

from repro.core.attributes import PatternType, make_attributes
from repro.core.errors import ConfigurationError
from repro.core.segment import AtomSegment, summarize
from repro.xos.loader import OperatingSystem


def make_segment(count=2):
    return summarize([
        (i, make_attributes(name=f"a{i}", pattern=PatternType.REGULAR,
                            stride_bytes=8, reuse=100 + i))
        for i in range(count)
    ])


class TestOperatingSystem:
    def test_unknown_allocator_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown allocator"):
            OperatingSystem(allocator="bogus")

    def test_pids_are_consecutive_and_registered(self):
        os = OperatingSystem()
        a = os.create_process()
        b = os.create_process()
        assert (a.pid, b.pid) == (1, 2)
        assert os.processes == {1: a, 2: b}
        assert a.os is os and b.os is os

    def test_processes_get_private_address_spaces(self):
        os = OperatingSystem()
        a = os.create_process()
        b = os.create_process()
        va_a = a.malloc(os.page_bytes)
        va_b = b.malloc(os.page_bytes)
        assert va_a == va_b                      # same heap base...
        assert a.translate(va_a) != b.translate(va_b)  # ...own frames


class TestProcessMalloc:
    def test_malloc_backs_every_page(self):
        proc = OperatingSystem().create_process()
        page = proc.heap.page_bytes
        base = proc.malloc(3 * page)
        frames = {proc.translate(base + i * page) // page
                  for i in range(3)}
        assert len(frames) == 3                  # three distinct frames

    def test_translate_preserves_page_offset(self):
        proc = OperatingSystem().create_process()
        base = proc.malloc(proc.heap.page_bytes)
        assert proc.translate(base + 123) == proc.translate(base) + 123

    def test_malloc_records_atom(self):
        proc = OperatingSystem().create_process()
        va = proc.malloc(64, atom_id=3)
        assert proc.heap.atom_of_range(va) == 3

    def test_malloc_mapped_maps_and_activates(self):
        proc = OperatingSystem().create_process()
        atom = proc.xmemlib.create_atom(
            "tile", pattern=PatternType.REGULAR, stride_bytes=8,
            reuse=200)
        size = 2 * proc.heap.page_bytes
        va = proc.malloc_mapped(size, atom)
        assert proc.heap.atom_of_range(va) == atom
        # The mapped range answers atom lookups through the XMem view
        # (the AMU is physically indexed: translate first).
        found = proc.xmem.atom_for_paddr(proc.translate(va))
        assert found is not None and found.atom_id == atom
        assert [a.atom_id for a in proc.xmem.active_atoms()] == [atom]


class TestLoadProgram:
    def test_fills_gat_and_counts(self):
        os = OperatingSystem()
        proc = os.create_process()
        assert os.load_program(proc, make_segment(2)) == 2
        loaded = {atom_id for atom_id, _ in proc.xmem.gat}
        assert loaded == {0, 1}

    def test_unknown_version_ignored(self):
        os = OperatingSystem()
        proc = os.create_process()
        segment = AtomSegment(version=99,
                              entries=make_segment(2).entries)
        assert os.load_program(proc, segment) == 0

    def test_placement_armed_for_bank_target(self):
        os = OperatingSystem(allocator="bank_target")
        proc = os.create_process()
        assert proc.placement is None
        os.load_program(proc, make_segment(3))
        assert proc.placement is not None

    def test_randomized_allocator_skips_placement(self):
        os = OperatingSystem(allocator="randomized")
        proc = os.create_process()
        os.load_program(proc, make_segment(2))
        assert proc.placement is None

    def test_apply_placement_requires_bank_target(self):
        os = OperatingSystem(allocator="randomized")
        proc = os.create_process()
        with pytest.raises(ConfigurationError, match="bank_target"):
            os.apply_placement(proc)
