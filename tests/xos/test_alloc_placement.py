"""Tests for frame allocators, placement, heap, and the OS loader."""

import pytest

from repro.core.attributes import PatternType, make_attributes
from repro.core.errors import AllocationError, ConfigurationError
from repro.dram.mapping import DramGeometry, make_mapping
from repro.xos.allocator import (
    BankTargetAllocator,
    RandomizedAllocator,
    SequentialAllocator,
)
from repro.xos.loader import OperatingSystem
from repro.xos.phys import FramePool
from repro.xos.placement import plan_placement
from repro.xos.vmalloc import HEAP_BASE, HeapAllocator


def pool(capacity=1 << 24, mapping="scheme2", seed=0):
    g = DramGeometry(capacity_bytes=capacity)
    return FramePool(g, make_mapping(mapping, g), seed=seed)


def streaming(intensity=100, name="s"):
    return make_attributes(name, pattern=PatternType.REGULAR,
                           stride_bytes=8, access_intensity=intensity)


def irregular(intensity=100, name="g"):
    return make_attributes(name, pattern=PatternType.IRREGULAR,
                           access_intensity=intensity)


class TestAllocators:
    def test_sequential_is_contiguous(self):
        a = SequentialAllocator(pool())
        assert [a.allocate() for _ in range(4)] == [0, 1, 2, 3]

    def test_randomized_spreads(self):
        a = RandomizedAllocator(pool(seed=11))
        frames = [a.allocate() for _ in range(50)]
        assert frames != sorted(frames)

    def test_bank_target_honours_assignment(self):
        p = pool()
        target = p.all_banks[5]
        a = BankTargetAllocator(p, {7: [target]})
        for _ in range(8):
            frame = a.allocate(atom_id=7)
            assert p.frame_banks(frame) == frozenset({target})

    def test_bank_target_fallback_for_unassigned(self):
        p = pool()
        a = BankTargetAllocator(p, {})
        frame = a.allocate(atom_id=None)
        assert frame is not None
        assert a.fallbacks == 1

    def test_bank_target_fallback_when_banks_exhausted(self):
        g = DramGeometry(capacity_bytes=1 << 17)  # 32 frames, 16 banks
        p = FramePool(g, make_mapping("scheme2", g))
        target = p.all_banks[0]
        a = BankTargetAllocator(p, {1: [target]})
        frames = [a.allocate(atom_id=1) for _ in range(6)]
        assert len(set(frames)) == 6  # kept allocating past exhaustion


class TestPlacement:
    BANKS = [(c, 0, b) for c in range(2) for b in range(8)]

    def test_hot_streaming_structure_isolated(self):
        atoms = {
            0: (streaming(intensity=200), 1 << 20),
            1: (irregular(intensity=100), 1 << 20),
        }
        d = plan_placement(atoms, self.BANKS)
        assert 0 in d.isolated
        assert 1 not in d.isolated
        assert d.isolated[0]
        assert set(d.isolated[0]).isdisjoint(d.spread_banks)

    def test_cold_streaming_structure_not_isolated(self):
        # The MLP guard: isolating a barely touched structure wastes a
        # bank.
        atoms = {
            0: (streaming(intensity=2), 1 << 20),
            1: (irregular(intensity=250), 1 << 20),
        }
        d = plan_placement(atoms, self.BANKS)
        assert d.isolated == {}
        assert set(d.spread_banks) == set(self.BANKS)

    def test_irregular_never_isolated(self):
        atoms = {0: (irregular(intensity=255), 1 << 20)}
        d = plan_placement(atoms, self.BANKS)
        assert d.isolated == {}

    def test_isolation_budget_respected(self):
        atoms = {
            i: (streaming(intensity=200, name=f"s{i}"), 1 << 20)
            for i in range(6)
        }
        d = plan_placement(atoms, self.BANKS)
        iso_banks = sum(len(v) for v in d.isolated.values())
        assert iso_banks <= len(self.BANKS) // 2
        assert d.spread_banks  # MLP pool never empty

    def test_hotter_gets_more_banks(self):
        atoms = {
            0: (streaming(intensity=240, name="hot"), 1 << 20),
            1: (streaming(intensity=60, name="warm"), 1 << 20),
        }
        d = plan_placement(atoms, self.BANKS)
        warm_banks = len(d.isolated.get(1, []))
        assert len(d.isolated[0]) >= max(warm_banks, 1)

    def test_bank_share_proportional_to_total_intensity(self):
        # A lukewarm stream next to a very hot irregular structure must
        # not soak up the whole isolation budget.
        atoms = {
            0: (streaming(intensity=40, name="warm"), 1 << 20),
            1: (irregular(intensity=230, name="hot_table"), 1 << 20),
        }
        d = plan_placement(atoms, self.BANKS)
        assert len(d.isolated[0]) <= 3
        assert len(d.spread_banks) >= len(self.BANKS) - 3

    def test_spread_banks_alternate_channels(self):
        atoms = {0: (irregular(), 1 << 20)}
        d = plan_placement(atoms, self.BANKS)
        channels = [b[0] for b in d.spread_banks[:2]]
        assert channels == [0, 1]

    def test_banks_for(self):
        atoms = {
            0: (streaming(intensity=200), 1 << 20),
            1: (irregular(intensity=50), 1 << 20),
        }
        d = plan_placement(atoms, self.BANKS)
        assert d.banks_for(0) == d.isolated[0]
        assert d.banks_for(1) == d.spread_banks
        assert d.banks_for(None) == d.spread_banks

    def test_empty_atoms(self):
        d = plan_placement({}, self.BANKS)
        assert d.isolated == {}
        assert set(d.spread_banks) == set(self.BANKS)


class TestHeap:
    @staticmethod
    def make_heap():
        pages = []
        heap = HeapAllocator(lambda vp, aid: pages.append((vp, aid)))
        return heap, pages

    def test_malloc_page_aligned(self):
        heap, pages = self.make_heap()
        va = heap.malloc(100)
        assert va == HEAP_BASE
        assert va % 4096 == 0
        assert len(pages) == 1

    def test_malloc_backs_every_page(self):
        heap, pages = self.make_heap()
        heap.malloc(3 * 4096 + 1, atom_id=4)
        assert len(pages) == 4
        assert all(aid == 4 for _, aid in pages)

    def test_malloc_zero_rejected(self):
        heap, _ = self.make_heap()
        with pytest.raises(AllocationError):
            heap.malloc(0)

    def test_static_atom_map_recorded(self):
        heap, _ = self.make_heap()
        va = heap.malloc(4096, atom_id=9)
        heap.malloc(4096)  # no atom: not recorded
        assert len(heap.static_atom_map) == 1
        assert heap.atom_of_range(va + 5) == 9

    def test_free(self):
        heap, _ = self.make_heap()
        va = heap.malloc(4096)
        alloc = heap.free(va)
        assert alloc.size == 4096
        with pytest.raises(AllocationError):
            heap.free(va)

    def test_live_bytes(self):
        heap, _ = self.make_heap()
        heap.malloc(4096)
        va = heap.malloc(8192)
        assert heap.live_bytes == 12288
        heap.free(va)
        assert heap.live_bytes == 4096


class TestOperatingSystem:
    def test_process_translate_through_heap(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 24))
        proc = osys.create_process()
        va = proc.malloc(8192)
        pa0 = proc.translate(va)
        pa1 = proc.translate(va + 4096)
        assert pa0 % 4096 == 0
        assert pa0 != pa1

    def test_unknown_allocator(self):
        with pytest.raises(ConfigurationError):
            OperatingSystem(allocator="telepathic")

    def test_atom_map_translates_via_mmu(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 24))
        proc = osys.create_process()
        lib = proc.xmemlib
        aid = lib.create_atom("x", reuse=5)
        va = proc.malloc_mapped(8192, aid)
        pa = proc.translate(va)
        assert proc.xmem.amu.lookup(pa) == aid
        # The VA itself is NOT in the (PA-indexed) AAM unless it
        # happens to coincide.
        assert proc.xmem.atoms[aid].covers(va)

    def test_load_program_fills_gat(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 24))
        proc = osys.create_process()
        lib = proc.xmemlib
        lib.create_atom("a", reuse=3)
        seg = lib.compile_segment()
        fresh = osys.create_process()
        assert osys.load_program(fresh, seg) == 1
        assert fresh.xmem.gat.lookup(0).reuse == 3
        assert fresh.xmem.pats["cache"].lookup(0).reuse == 3

    def test_placement_requires_bank_allocator(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 24))
        proc = osys.create_process()
        with pytest.raises(ConfigurationError):
            osys.apply_placement(proc)

    def test_end_to_end_placement(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 24),
                               allocator="bank_target")
        proc = osys.create_process()
        lib = proc.xmemlib
        hot = lib.create_atom("stream", pattern=PatternType.REGULAR,
                              stride_bytes=8, access_intensity=200)
        cold = lib.create_atom("graph", pattern=PatternType.IRREGULAR,
                               access_intensity=100)
        osys.load_program(proc, lib.compile_segment())
        assert proc.placement is not None
        assert hot in proc.placement.isolated
        # Pages of the hot atom land only in its isolated banks.
        va = proc.malloc(4 * 4096, atom_id=hot)
        iso = set(proc.placement.isolated[hot])
        for i in range(4):
            frame = proc.page_table.frame_of((va // 4096) + i)
            assert osys.pool.frame_banks(frame) <= iso
        # Pages of the cold atom avoid the isolated banks.
        va2 = proc.malloc(4 * 4096, atom_id=cold)
        for i in range(4):
            frame = proc.page_table.frame_of((va2 // 4096) + i)
            assert osys.pool.frame_banks(frame).isdisjoint(iso)

    def test_two_processes_share_pool(self):
        osys = OperatingSystem(DramGeometry(capacity_bytes=1 << 20))
        p1 = osys.create_process()
        p2 = osys.create_process()
        va1 = p1.malloc(4096)
        va2 = p2.malloc(4096)
        assert p1.translate(va1) != p2.translate(va2)


class TestGroupedPlacement:
    BANKS = [(c, 0, b) for c in range(2) for b in range(8)]
    GROUPS = [frozenset({(0, 0, b), (1, 0, b)}) for b in range(8)]

    def test_isolated_atoms_get_whole_groups(self):
        atoms = {
            0: (streaming(intensity=200), 1 << 20),
            1: (irregular(intensity=100), 1 << 20),
        }
        d = plan_placement(atoms, self.BANKS, groups=self.GROUPS)
        chosen = d.isolated[0]
        # Whole cross-channel pairs, never half a group.
        bank_idx = {b[2] for b in chosen}
        assert len(chosen) == 2 * len(bank_idx)
        assert {b[0] for b in chosen} == {0, 1}

    def test_spread_keeps_remaining_groups(self):
        atoms = {0: (streaming(intensity=200), 1 << 20)}
        d = plan_placement(atoms, self.BANKS, groups=self.GROUPS)
        taken = set(d.isolated[0])
        assert set(d.spread_banks) == set(self.BANKS) - taken
