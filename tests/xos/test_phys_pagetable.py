"""Tests for the frame pool and page table."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import (
    AllocationError,
    ConfigurationError,
    TranslationError,
)
from repro.core.ranges import AddressRange
from repro.dram.mapping import DramGeometry, make_mapping
from repro.xos.page_table import PageTable
from repro.xos.phys import FramePool


def small_pool(mapping="scheme2", capacity=1 << 24, seed=0):
    g = DramGeometry(capacity_bytes=capacity)
    return FramePool(g, make_mapping(mapping, g), seed=seed)


class TestFramePool:
    def test_frame_count(self):
        pool = small_pool()
        assert pool.num_frames == (1 << 24) // 4096
        assert pool.free_frames == pool.num_frames

    def test_bad_page_size(self):
        g = DramGeometry()
        with pytest.raises(ConfigurationError):
            FramePool(g, make_mapping("scheme2", g), page_bytes=100)

    def test_alloc_sequential(self):
        pool = small_pool()
        assert pool.alloc_any() == 0
        assert pool.alloc_any() == 1
        assert pool.free_frames == pool.num_frames - 2

    def test_alloc_random_unique(self):
        pool = small_pool(seed=7)
        frames = {pool.alloc_any(randomize=True) for _ in range(100)}
        assert len(frames) == 100

    def test_free_and_realloc(self):
        pool = small_pool()
        f = pool.alloc_any()
        pool.free(f)
        assert pool.alloc_any() == f

    def test_double_free_rejected(self):
        pool = small_pool()
        f = pool.alloc_any()
        pool.free(f)
        with pytest.raises(AllocationError):
            pool.free(f)

    def test_bogus_free_rejected(self):
        pool = small_pool()
        with pytest.raises(AllocationError):
            pool.free(10**9)

    def test_exhaustion(self):
        g = DramGeometry(capacity_bytes=1 << 17)  # 32 frames
        pool = FramePool(g, make_mapping("scheme2", g))
        for _ in range(pool.num_frames):
            pool.alloc_any()
        with pytest.raises(AllocationError):
            pool.alloc_any()

    def test_scheme2_frames_single_bank(self):
        # Under the row-interleaved scheme a 4KB page sits in one bank.
        pool = small_pool("scheme2")
        for frame in range(32):
            assert len(pool.frame_banks(frame)) == 1

    def test_scheme5_frames_span_channels(self):
        pool = small_pool("scheme5")
        banks = pool.frame_banks(0)
        assert len({b[0] for b in banks}) == 2  # both channels

    def test_alloc_in_banks_confines(self):
        pool = small_pool("scheme2")
        target = pool.all_banks[3]
        for _ in range(10):
            frame = pool.alloc_in_banks([target])
            assert frame is not None
            assert pool.frame_banks(frame) == frozenset({target})

    def test_alloc_in_banks_disjoint_from_other_allocs(self):
        pool = small_pool("scheme2")
        a = pool.alloc_in_banks([pool.all_banks[0]])
        b = pool.alloc_in_banks([pool.all_banks[1]])
        assert a != b
        assert pool.frame_banks(a) != pool.frame_banks(b)

    def test_all_banks_complete(self):
        pool = small_pool()
        g = pool.geometry
        assert len(pool.all_banks) == g.total_banks
        assert len(set(pool.all_banks)) == g.total_banks

    def test_randomized_bank_alloc_stays_in_banks(self):
        pool = small_pool("scheme2", seed=3)
        targets = pool.all_banks[:2]
        for _ in range(20):
            frame = pool.alloc_in_banks(targets, randomize=True)
            assert pool.frame_banks(frame) <= set(targets)


class TestPageTable:
    def test_translate(self):
        pt = PageTable()
        pt.map_page(5, 99)
        assert pt.translate(5 * 4096 + 123) == 99 * 4096 + 123

    def test_unmapped_raises(self):
        pt = PageTable()
        with pytest.raises(TranslationError):
            pt.translate(0)

    def test_is_mapped_and_frame_of(self):
        pt = PageTable()
        pt.map_page(2, 7)
        assert pt.is_mapped(2 * 4096)
        assert not pt.is_mapped(3 * 4096)
        assert pt.frame_of(2) == 7
        assert pt.frame_of(3) is None

    def test_unmap(self):
        pt = PageTable()
        pt.map_page(1, 3)
        assert pt.unmap_page(1) == 3
        assert pt.unmap_page(1) is None
        assert not pt.is_mapped(4096)

    def test_translate_range_contiguous_frames_coalesce(self):
        pt = PageTable()
        pt.map_page(0, 10)
        pt.map_page(1, 11)
        ranges = pt.translate_range(AddressRange(0, 8192))
        assert ranges == (AddressRange(10 * 4096, 12 * 4096),)

    def test_translate_range_scattered_frames_split(self):
        pt = PageTable()
        pt.map_page(0, 10)
        pt.map_page(1, 50)
        ranges = pt.translate_range(AddressRange(0, 8192))
        assert len(ranges) == 2
        assert ranges[0] == AddressRange(10 * 4096, 11 * 4096)
        assert ranges[1] == AddressRange(50 * 4096, 51 * 4096)

    def test_translate_range_partial_pages(self):
        pt = PageTable()
        pt.map_page(0, 10)
        ranges = pt.translate_range(AddressRange(100, 300))
        assert ranges == (AddressRange(10 * 4096 + 100, 10 * 4096 + 300),)

    def test_translate_range_empty(self):
        pt = PageTable()
        assert pt.translate_range(AddressRange(0, 0)) == ()

    def test_translate_range_unmapped_raises(self):
        pt = PageTable()
        pt.map_page(0, 10)
        with pytest.raises(TranslationError):
            pt.translate_range(AddressRange(0, 3 * 4096))

    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 1023)),
                    min_size=1, max_size=30))
    def test_translate_matches_per_byte(self, mappings):
        pt = PageTable()
        table = {}
        for vpage, pframe in mappings:
            pt.map_page(vpage, pframe)
            table[vpage] = pframe
        for vpage, pframe in table.items():
            for off in (0, 1, 4095):
                assert pt.translate(vpage * 4096 + off) == \
                    pframe * 4096 + off

    @given(st.integers(0, 60), st.integers(1, 5 * 4096))
    def test_translate_range_covers_exact_bytes(self, start_page, size):
        pt = PageTable()
        for vp in range(70):
            pt.map_page(vp, 1000 + vp * 3)  # scattered frames
        rng = AddressRange.from_size(start_page * 4096 + 17, size)
        ranges = pt.translate_range(rng)
        assert sum(r.size for r in ranges) == size
        # First byte translates consistently.
        assert ranges[0].start == pt.translate(rng.start)


class TestBankGroups:
    def test_scheme2_groups_are_singleton_banks(self):
        pool = small_pool("scheme2")
        groups = pool.bank_groups()
        assert len(groups) == pool.geometry.total_banks
        assert all(len(g) == 1 for g in groups)

    def test_xmem_interleaved_groups_are_channel_pairs(self):
        pool = small_pool("xmem_interleaved")
        groups = pool.bank_groups()
        assert len(groups) == pool.geometry.banks_per_rank
        for g in groups:
            assert len(g) == 2
            channels = {b[0] for b in g}
            banks = {b[2] for b in g}
            assert channels == {0, 1}
            assert len(banks) == 1

    def test_groups_cover_all_banks(self):
        pool = small_pool("scheme5")
        groups = pool.bank_groups()
        covered = {b for g in groups for b in g}
        assert covered == set(pool.all_banks)
