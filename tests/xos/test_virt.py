"""Tests for XMem under virtualization (Section 4.3)."""

import pytest

from repro.core.errors import AllocationError
from repro.xos.virt import Hypervisor


def vm_with_process(host_frames=256):
    hyp = Hypervisor(host_frames)
    vm = hyp.create_vm()
    return hyp, vm, vm.create_guest_process()


class TestTwoStageTranslation:
    def test_composed_walk(self):
        hyp, vm, proc = vm_with_process()
        gva = proc.malloc(8192)
        hpa0 = proc.translate(gva)
        hpa1 = proc.translate(gva + 4096)
        assert hpa0 % 4096 == 0
        assert hpa0 != hpa1

    def test_translation_stable(self):
        hyp, vm, proc = vm_with_process()
        gva = proc.malloc(4096)
        assert proc.translate(gva + 5) == proc.translate(gva) + 5
        assert proc.translate(gva) == proc.translate(gva)

    def test_vms_get_disjoint_host_frames(self):
        hyp = Hypervisor(256)
        p1 = hyp.create_vm().create_guest_process()
        p2 = hyp.create_vm().create_guest_process()
        h1 = {proc_t // 4096 for proc_t in
              (p1.translate(p1.malloc(4096)),)}
        h2 = {p2.translate(p2.malloc(4096)) // 4096}
        assert h1.isdisjoint(h2)

    def test_host_frame_exhaustion(self):
        hyp, vm, proc = vm_with_process(host_frames=2)
        gva = proc.malloc(3 * 4096)
        proc.translate(gva)
        proc.translate(gva + 4096)
        with pytest.raises(AllocationError):
            proc.translate(gva + 2 * 4096)

    def test_bad_malloc(self):
        hyp, vm, proc = vm_with_process()
        with pytest.raises(AllocationError):
            proc.malloc(0)


class TestXMemUnchangedUnderVirtualization:
    """The Section 4.3 claim: the XMem components work as-is."""

    def test_aam_indexed_by_host_pa(self):
        hyp, vm, proc = vm_with_process()
        lib = proc.xmemlib
        atom = lib.create_atom("gdata", reuse=7)
        gva = proc.malloc(8192)
        lib.atom_map(atom, gva, 8192)
        lib.atom_activate(atom)
        # Lookups by HOST physical address resolve the atom.
        for off in (0, 4096, 8191):
            hpa = proc.translate(gva + off)
            assert proc.xmem.amu.lookup(hpa) == atom
        # The guest-virtual address itself is not an AAM key.
        assert proc.xmem.amu.lookup_raw(gva) != atom or \
            proc.translate(gva) == gva

    def test_two_vm_processes_isolated(self):
        hyp = Hypervisor(512)
        p1 = hyp.create_vm().create_guest_process()
        p2 = hyp.create_vm().create_guest_process()
        a1 = p1.xmemlib.create_atom("vm1", reuse=1)
        g1 = p1.malloc(4096)
        p1.xmemlib.atom_map(a1, g1, 4096)
        p1.xmemlib.atom_activate(a1)
        a2 = p2.xmemlib.create_atom("vm2", reuse=2)
        g2 = p2.malloc(4096)
        p2.xmemlib.atom_map(a2, g2, 4096)
        p2.xmemlib.atom_activate(a2)
        # Each VM's XMem view resolves only its own host frames.
        assert p1.xmem.amu.lookup(p1.translate(g1)) == a1
        assert p1.xmem.amu.lookup(p2.translate(g2)) is None

    def test_guest_gat_and_pats_fill_normally(self):
        hyp, vm, proc = vm_with_process()
        lib = proc.xmemlib
        lib.create_atom("x", reuse=3, access_intensity=9)
        proc.xmem.retranslate()
        assert proc.xmem.pats["cache"].lookup(0).reuse == 3
        assert proc.xmem.pats["dram"].lookup(0).intensity == 9

    def test_remap_inside_vm(self):
        hyp, vm, proc = vm_with_process()
        lib = proc.xmemlib
        atom = lib.create_atom("slide", reuse=5)
        gva1 = proc.malloc(4096)
        gva2 = proc.malloc(4096)
        lib.atom_map(atom, gva1, 4096)
        lib.atom_activate(atom)
        lib.atom_remap(atom, gva2, 4096)
        assert proc.xmem.amu.lookup(proc.translate(gva2)) == atom
        assert proc.xmem.amu.lookup(proc.translate(gva1)) is None
