"""Tests for the Polybench trace generators."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.xmemlib import XMemLib
from repro.cpu.trace import MemAccess, XMemOp, count_events
from repro.workloads.polybench import (
    FIGURE4_KERNELS,
    KERNELS,
    Layout,
    common,
)
from repro.workloads.polybench.common import (
    Array,
    row_segment,
    tiles,
)


class TestCommon:
    def test_layout_no_overlap(self):
        lay = Layout()
        a = lay.array("a", 16, 16)
        b = lay.array("b", 16, 16)
        assert a.base + a.bytes <= b.base

    def test_layout_guard_gap(self):
        # Arrays never share a 512B AAM chunk.
        lay = Layout()
        a = lay.array("a", 3, 3)
        b = lay.array("b", 3, 3)
        assert b.base - (a.base + a.bytes) >= 512

    def test_array_addr(self):
        arr = Array("x", 0x1000, 4, 8)
        assert arr.addr(0, 0) == 0x1000
        assert arr.addr(1, 2) == 0x1000 + (8 + 2) * 8

    def test_row_segment_line_granular(self):
        arr = Array("x", 0, 8, 64)
        evs = list(row_segment(arr, 0, 0, 64))
        # 64 elements * 8B = 512B = 8 lines.
        assert len(evs) == 8
        assert all(isinstance(e, MemAccess) for e in evs)
        # Work accounts for every elided element.
        assert sum(e.work for e in evs) == 64 * common.WORK_PER_ELEM

    def test_row_segment_unaligned(self):
        arr = Array("x", 0, 8, 64)
        evs = list(row_segment(arr, 0, 3, 10))
        assert sum(e.work for e in evs) == 10 * common.WORK_PER_ELEM

    def test_tiles_cover_exactly(self):
        covered = []
        for rng in tiles(100, 32):
            covered.extend(rng)
        assert covered == list(range(100))

    def test_check_params(self):
        k = KERNELS["gemm"]
        with pytest.raises(ConfigurationError):
            list(k.build_trace(0, 1))
        with pytest.raises(ConfigurationError):
            list(k.build_trace(16, 32))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            common.register(KERNELS["gemm"])


class TestKernelRegistry:
    def test_all_twelve_registered(self):
        assert set(FIGURE4_KERNELS) <= set(KERNELS)
        assert len(FIGURE4_KERNELS) == 12

    @pytest.mark.parametrize("name", FIGURE4_KERNELS)
    def test_footprints_positive(self, name):
        assert KERNELS[name].footprint(16) > 0

    @pytest.mark.parametrize("name", FIGURE4_KERNELS)
    def test_baseline_trace_has_no_xmem_ops(self, name):
        trace = KERNELS[name].build_trace(16, 8)
        assert all(not isinstance(ev, XMemOp) for ev in trace)

    @pytest.mark.parametrize("name", FIGURE4_KERNELS)
    def test_xmem_trace_has_ops_and_same_accesses(self, name):
        k = KERNELS[name]
        base_mem, base_work, _ = count_events(k.build_trace(16, 8))
        lib = XMemLib()
        mem, work, xmem = count_events(k.build_trace(16, 8, lib=lib))
        # Hints are supplemental: the memory access stream is identical.
        assert (mem, work) == (base_mem, base_work)
        assert xmem > 0

    @pytest.mark.parametrize("name", FIGURE4_KERNELS)
    def test_total_work_independent_of_tile(self, name):
        """The paper "ensures the total work is always the same"
        across tile sizes; our traces must too (trmm and the stencil
        boundary rows may differ in *memory events*, never in work)."""
        k = KERNELS[name]
        _, work8, _ = count_events(k.build_trace(16, 8))
        _, work16, _ = count_events(k.build_trace(16, 16))
        assert work8 == work16

    @pytest.mark.parametrize("name", FIGURE4_KERNELS)
    def test_addresses_within_footprint(self, name):
        k = KERNELS[name]
        bound = 0x10_0000 + 4 * k.footprint(16) + (1 << 20)
        for ev in k.build_trace(16, 8):
            if isinstance(ev, MemAccess):
                assert 0x10_0000 <= ev.vaddr < bound

    def test_xmem_ops_replayable_through_lib(self):
        """Every XMemOp a kernel emits must execute cleanly."""
        k = KERNELS["gemm"]
        lib = XMemLib()
        for ev in k.build_trace(16, 8, lib=lib):
            if isinstance(ev, XMemOp):
                getattr(lib, ev.method)(*ev.args)
        assert lib.xmem_instruction_count > 0

    def test_gemm_trace_deterministic(self):
        k = KERNELS["gemm"]
        a = [(e.vaddr, e.is_write) for e in k.build_trace(16, 8)
             if isinstance(e, MemAccess)]
        b = [(e.vaddr, e.is_write) for e in k.build_trace(16, 8)
             if isinstance(e, MemAccess)]
        assert a == b

    def test_gemm_has_writes(self):
        k = KERNELS["gemm"]
        assert any(e.is_write for e in k.build_trace(16, 8)
                   if isinstance(e, MemAccess))

    def test_tile_reduces_unique_line_span_per_phase(self):
        """Smaller tiles touch fewer distinct lines between remaps."""
        k = KERNELS["gemm"]
        lib = XMemLib()
        spans = []
        current = set()
        for ev in k.build_trace(32, 8, lib=XMemLib()):
            if isinstance(ev, XMemOp) and ev.method.startswith("atom_remap"):
                if current:
                    spans.append(len(current))
                current = set()
            elif isinstance(ev, MemAccess):
                current.add(ev.vaddr // 64)
        assert spans
        assert max(spans) < 32 * 32  # bounded by the block, not N^2
